"""Hotspot geometry: where on the video frame an object can be triggered.

§2.1: "Buttons and objects on the video frame can be triggered to change
the play sequence of a video."  A hotspot is the clickable region of an
interactive object.  Three shapes cover the authoring tool's palette —
rectangles (buttons, images), circles (round props) and polygons (traced
outlines of irregular objects in the footage).

Hit-testing must be fast because the runtime probes every object's
hotspot on each mouse event, topmost-first; the polygon test is the
standard even-odd ray cast, vectorised over edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "CircleHotspot",
    "Hotspot",
    "HotspotError",
    "PolygonHotspot",
    "RectHotspot",
    "hotspot_from_dict",
]


class HotspotError(ValueError):
    """Raised on invalid hotspot geometry."""


class Hotspot:
    """Abstract clickable region on the video frame."""

    kind: str = ""

    def contains(self, x: float, y: float) -> bool:
        """True if point (x, y) is inside the region."""
        raise NotImplementedError

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Axis-aligned ``(x0, y0, x1, y1)`` bounds (used by the editor's
        snap/overlap checks and by the compositor's dirty-rect path)."""
        raise NotImplementedError

    def translated(self, dx: float, dy: float) -> "Hotspot":
        """A copy moved by (dx, dy) — the drag gesture's geometry update."""
        raise NotImplementedError

    def area(self) -> float:
        """Region area in square pixels."""
        raise NotImplementedError

    def center(self) -> Tuple[float, float]:
        """Centroid of the bounding box (anchor for popups/labels)."""
        x0, y0, x1, y1 = self.bounding_box()
        return (x0 + x1) / 2.0, (y0 + y1) / 2.0

    def to_dict(self) -> Dict:
        """JSON-serialisable form (inverse: :func:`hotspot_from_dict`)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class RectHotspot(Hotspot):
    """Axis-aligned rectangle ``[x, x+w) x [y, y+h)``."""

    x: float
    y: float
    w: float
    h: float
    kind = "rect"

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise HotspotError(f"rect hotspot must have positive size, got {self.w}x{self.h}")

    def contains(self, x: float, y: float) -> bool:
        return self.x <= x < self.x + self.w and self.y <= y < self.y + self.h

    def bounding_box(self) -> Tuple[float, float, float, float]:
        return (self.x, self.y, self.x + self.w, self.y + self.h)

    def translated(self, dx: float, dy: float) -> "RectHotspot":
        return RectHotspot(self.x + dx, self.y + dy, self.w, self.h)

    def area(self) -> float:
        return self.w * self.h

    def to_dict(self) -> Dict:
        return {"kind": "rect", "x": self.x, "y": self.y, "w": self.w, "h": self.h}


@dataclass(frozen=True, slots=True)
class CircleHotspot(Hotspot):
    """Disc of ``radius`` centred at (cx, cy)."""

    cx: float
    cy: float
    radius: float
    kind = "circle"

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise HotspotError("circle hotspot radius must be positive")

    def contains(self, x: float, y: float) -> bool:
        return (x - self.cx) ** 2 + (y - self.cy) ** 2 <= self.radius**2

    def bounding_box(self) -> Tuple[float, float, float, float]:
        r = self.radius
        return (self.cx - r, self.cy - r, self.cx + r, self.cy + r)

    def translated(self, dx: float, dy: float) -> "CircleHotspot":
        return CircleHotspot(self.cx + dx, self.cy + dy, self.radius)

    def area(self) -> float:
        return float(np.pi * self.radius**2)

    def to_dict(self) -> Dict:
        return {"kind": "circle", "cx": self.cx, "cy": self.cy, "radius": self.radius}


class PolygonHotspot(Hotspot):
    """Simple polygon given as a vertex list (≥ 3 vertices).

    Containment uses the even-odd rule with a vectorised edge test;
    vertices are stored as an immutable ``(n, 2) float64`` array.
    """

    kind = "polygon"
    __slots__ = ("_verts",)

    def __init__(self, vertices: Sequence[Tuple[float, float]]) -> None:
        verts = np.asarray(vertices, dtype=np.float64)
        if verts.ndim != 2 or verts.shape[1] != 2 or verts.shape[0] < 3:
            raise HotspotError("polygon needs at least 3 (x, y) vertices")
        if self._signed_area(verts) == 0.0:
            raise HotspotError("polygon is degenerate (zero area)")
        verts.setflags(write=False)
        self._verts = verts

    @staticmethod
    def _signed_area(verts: np.ndarray) -> float:
        x, y = verts[:, 0], verts[:, 1]
        return float(
            0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
        )

    @property
    def vertices(self) -> np.ndarray:
        """Read-only ``(n, 2)`` vertex array."""
        return self._verts

    def contains(self, x: float, y: float) -> bool:
        vx, vy = self._verts[:, 0], self._verts[:, 1]
        vx2, vy2 = np.roll(vx, -1), np.roll(vy, -1)
        # Edges straddling the horizontal line through y:
        straddle = (vy > y) != (vy2 > y)
        if not straddle.any():
            return False
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (y - vy) / (vy2 - vy)
            xint = vx + t * (vx2 - vx)
        crossings = np.count_nonzero(straddle & (x < xint))
        return bool(crossings % 2 == 1)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        mins = self._verts.min(axis=0)
        maxs = self._verts.max(axis=0)
        return (float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    def translated(self, dx: float, dy: float) -> "PolygonHotspot":
        return PolygonHotspot(self._verts + np.asarray([dx, dy]))

    def area(self) -> float:
        return abs(self._signed_area(self._verts))

    def to_dict(self) -> Dict:
        return {"kind": "polygon", "vertices": self._verts.tolist()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolygonHotspot):
            return NotImplemented
        return self._verts.shape == other._verts.shape and bool(
            np.array_equal(self._verts, other._verts)
        )

    def __hash__(self) -> int:
        return hash(self._verts.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PolygonHotspot({self._verts.tolist()!r})"


def hotspot_from_dict(d: Dict) -> Hotspot:
    """Deserialise a hotspot produced by ``to_dict`` (project files)."""
    kind = d.get("kind")
    if kind == "rect":
        return RectHotspot(d["x"], d["y"], d["w"], d["h"])
    if kind == "circle":
        return CircleHotspot(d["cx"], d["cy"], d["radius"])
    if kind == "polygon":
        return PolygonHotspot([tuple(v) for v in d["vertices"]])
    raise HotspotError(f"unknown hotspot kind {kind!r}")
