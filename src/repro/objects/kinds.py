"""Concrete interactive-object kinds from the paper's palette.

The authoring tool of §4 lets designers insert "objects like buttons and
images"; the runtime of §4.3 shows "an image object with white background
… mounted on the video frame", buttons that "switch to other video
segments or get information from websites", NPCs giving "fixed
conversation", collectable items for the backpack and special reward
objects (§3.3).  Each of those is a class here.

Appearance: every kind can render itself to an RGB sprite + alpha mask
via :meth:`render_sprite`, which is what the runtime compositor mounts
onto the video frame.  Image objects support *white-keying* — pixels at
(or near) pure white become transparent, reproducing the paper's
"image object with white background" treatment of Fig. 2.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Type

import numpy as np

from .base import InteractiveObject, ObjectError

__all__ = [
    "ButtonObject",
    "ImageObject",
    "ItemObject",
    "NPCObject",
    "RewardObject",
    "TextObject",
    "WebLinkObject",
    "object_from_dict",
    "register_object_kind",
]


def _checker_pixels(w: int, h: int, a: Tuple[int, int, int], b: Tuple[int, int, int], cell: int = 4) -> np.ndarray:
    """Deterministic placeholder pixels for procedurally-defined images."""
    ys = (np.arange(h) // cell)[:, None]
    xs = (np.arange(w) // cell)[None, :]
    mask = ((ys + xs) % 2).astype(bool)
    out = np.empty((h, w, 3), dtype=np.uint8)
    out[...] = np.asarray(a, dtype=np.uint8)
    out[mask] = np.asarray(b, dtype=np.uint8)
    return out


class ImageObject(InteractiveObject):
    """A bitmap mounted on the video frame (the Fig. 2 umbrella).

    Parameters
    ----------
    pixels:
        ``(h, w, 3) uint8`` sprite pixels.  When omitted, a deterministic
        checker placeholder matching the hotspot's bounding box is used
        (the authoring tool's stand-in before the designer imports art).
    white_key:
        When True, pixels within ``white_key_tolerance`` of pure white are
        rendered fully transparent — the paper's white-background images.
    """

    kind = "image"

    def __init__(
        self,
        *,
        pixels: Optional[np.ndarray] = None,
        white_key: bool = True,
        white_key_tolerance: int = 8,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if pixels is None:
            x0, y0, x1, y1 = self.hotspot.bounding_box()
            w, h = max(1, int(x1 - x0)), max(1, int(y1 - y0))
            pixels = _checker_pixels(w, h, (200, 200, 200), (255, 255, 255))
        arr = np.asarray(pixels)
        if arr.ndim != 3 or arr.shape[2] != 3 or arr.dtype != np.uint8:
            raise ObjectError("image pixels must be (h, w, 3) uint8")
        if not 0 <= white_key_tolerance <= 255:
            raise ObjectError("white_key_tolerance must be in [0, 255]")
        self.pixels = np.ascontiguousarray(arr)
        self.white_key = bool(white_key)
        self.white_key_tolerance = int(white_key_tolerance)

    def render_sprite(self) -> Tuple[np.ndarray, np.ndarray]:
        """RGB pixels plus float32 alpha in [0, 1] (white keyed out)."""
        if not self.white_key:
            return self.pixels, np.ones(self.pixels.shape[:2], dtype=np.float32)
        near_white = (self.pixels >= 255 - self.white_key_tolerance).all(axis=2)
        alpha = np.where(near_white, 0.0, 1.0).astype(np.float32)
        return self.pixels, alpha

    def _extra_dict(self) -> Dict[str, Any]:
        return {
            "pixels": self.pixels.tolist(),
            "white_key": self.white_key,
            "white_key_tolerance": self.white_key_tolerance,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ImageObject":
        return cls(
            pixels=np.asarray(d["pixels"], dtype=np.uint8),
            white_key=d.get("white_key", True),
            white_key_tolerance=d.get("white_key_tolerance", 8),
            **cls._base_kwargs(d),
        )


class ButtonObject(InteractiveObject):
    """A labelled button; §4.3: buttons "switch to other video segments
    or get information from websites".  The switching/website behaviour is
    authored as events; the button itself is label + colours."""

    kind = "button"

    def __init__(
        self,
        *,
        label: str,
        face_color: Tuple[int, int, int] = (70, 90, 160),
        text_color: Tuple[int, int, int] = (255, 255, 255),
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if not label:
            raise ObjectError("button label must be non-empty")
        self.label = label
        self.face_color = tuple(int(c) for c in face_color)
        self.text_color = tuple(int(c) for c in text_color)

    def render_sprite(self) -> Tuple[np.ndarray, np.ndarray]:
        """A flat rounded-feel face with a darker border; fully opaque."""
        x0, y0, x1, y1 = self.hotspot.bounding_box()
        w, h = max(4, int(x1 - x0)), max(4, int(y1 - y0))
        rgb = np.empty((h, w, 3), dtype=np.uint8)
        rgb[...] = np.asarray(self.face_color, dtype=np.uint8)
        border = (np.asarray(self.face_color, dtype=np.int16) * 6 // 10).astype(np.uint8)
        rgb[0, :] = border
        rgb[-1, :] = border
        rgb[:, 0] = border
        rgb[:, -1] = border
        # A simple label strip (text itself is drawn by the TUI renderer).
        strip_y = h // 2
        rgb[strip_y, 2 : w - 2] = np.asarray(self.text_color, dtype=np.uint8)
        return rgb, np.ones((h, w), dtype=np.float32)

    def _extra_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "face_color": list(self.face_color),
            "text_color": list(self.text_color),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ButtonObject":
        return cls(
            label=d["label"],
            face_color=tuple(d.get("face_color", (70, 90, 160))),
            text_color=tuple(d.get("text_color", (255, 255, 255))),
            **cls._base_kwargs(d),
        )


class TextObject(InteractiveObject):
    """A text message popped up / pinned on the frame (§2.1: "text
    messages, images and webpage are also popped up")."""

    kind = "text"

    def __init__(self, *, text: str, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if not text:
            raise ObjectError("text object requires text")
        self.text = text

    def render_sprite(self) -> Tuple[np.ndarray, np.ndarray]:
        """A translucent dark panel sized to the hotspot."""
        x0, y0, x1, y1 = self.hotspot.bounding_box()
        w, h = max(4, int(x1 - x0)), max(4, int(y1 - y0))
        rgb = np.full((h, w, 3), 24, dtype=np.uint8)
        return rgb, np.full((h, w), 0.75, dtype=np.float32)

    def _extra_dict(self) -> Dict[str, Any]:
        return {"text": self.text}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TextObject":
        return cls(text=d["text"], **cls._base_kwargs(d))


class WebLinkObject(InteractiveObject):
    """A link that opens a web page ("get information from websites").

    The runtime does not fetch anything; triggering records a
    ``web_visit`` in the session log and surfaces the URL to the host
    shell — exactly the observable behaviour the paper describes.
    """

    kind = "weblink"

    def __init__(self, *, url: str, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if not url or "://" not in url:
            raise ObjectError(f"weblink needs an absolute URL, got {url!r}")
        self.url = url

    def render_sprite(self) -> Tuple[np.ndarray, np.ndarray]:
        x0, y0, x1, y1 = self.hotspot.bounding_box()
        w, h = max(4, int(x1 - x0)), max(4, int(y1 - y0))
        rgb = np.full((h, w, 3), (30, 60, 140), dtype=np.uint8)
        rgb[h - 2 :, :] = (200, 220, 255)  # underline
        return rgb, np.ones((h, w), dtype=np.float32)

    def _extra_dict(self) -> Dict[str, Any]:
        return {"url": self.url}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WebLinkObject":
        return cls(url=d["url"], **cls._base_kwargs(d))


class ItemObject(ImageObject):
    """A portable prop the player can collect into the backpack (§3.1)
    and later *use on* another object ("use them in an adequate scene to
    trigger events")."""

    kind = "item"

    def __init__(self, **kwargs: Any) -> None:
        kwargs.setdefault("portable", True)
        kwargs.setdefault("draggable", True)
        super().__init__(**kwargs)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ItemObject":
        return cls(
            pixels=np.asarray(d["pixels"], dtype=np.uint8),
            white_key=d.get("white_key", True),
            white_key_tolerance=d.get("white_key_tolerance", 8),
            **cls._base_kwargs(d),
        )


class RewardObject(ItemObject):
    """A special achievement object (§3.3): "If players complete some
    requests or missions, they can get special objects in the inventory
    windows … they represent the achievements which players have."

    ``bonus`` is the score awarded when granted.
    """

    kind = "reward"

    def __init__(self, *, bonus: int = 10, **kwargs: Any) -> None:
        kwargs.setdefault("visible", False)  # rewards appear only when granted
        super().__init__(**kwargs)
        if bonus < 0:
            raise ObjectError("reward bonus must be non-negative")
        self.bonus = int(bonus)

    def _extra_dict(self) -> Dict[str, Any]:
        d = super()._extra_dict()
        d["bonus"] = self.bonus
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RewardObject":
        return cls(
            bonus=d.get("bonus", 10),
            pixels=np.asarray(d["pixels"], dtype=np.uint8),
            white_key=d.get("white_key", True),
            white_key_tolerance=d.get("white_key_tolerance", 8),
            **cls._base_kwargs(d),
        )


class NPCObject(InteractiveObject):
    """A non-player character giving "fixed conversation to guide
    players" (§3.1).  ``dialogue_id`` names a conversation tree in the
    project's dialogue table."""

    kind = "npc"

    def __init__(self, *, dialogue_id: str, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if not dialogue_id:
            raise ObjectError("npc requires a dialogue_id")
        self.dialogue_id = dialogue_id

    def render_sprite(self) -> Tuple[np.ndarray, np.ndarray]:
        """A simple silhouette: head disc over a body block, keyed edges."""
        x0, y0, x1, y1 = self.hotspot.bounding_box()
        w, h = max(8, int(x1 - x0)), max(12, int(y1 - y0))
        rgb = np.full((h, w, 3), 255, dtype=np.uint8)
        body_color = np.asarray((90, 70, 50), dtype=np.uint8)
        head_r = max(2, w // 4)
        cy, cx = head_r + 1, w // 2
        ys = np.arange(h)[:, None]
        xs = np.arange(w)[None, :]
        head = (xs - cx) ** 2 + (ys - cy) ** 2 <= head_r**2
        body = (ys > 2 * head_r) & (np.abs(xs - cx) <= w // 3)
        rgb[head | body] = body_color
        alpha = np.where(head | body, 1.0, 0.0).astype(np.float32)
        return rgb, alpha

    def _extra_dict(self) -> Dict[str, Any]:
        return {"dialogue_id": self.dialogue_id}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "NPCObject":
        return cls(dialogue_id=d["dialogue_id"], **cls._base_kwargs(d))


# ----------------------------------------------------------------------
# Serialisation registry
# ----------------------------------------------------------------------

_KIND_REGISTRY: Dict[str, Type[InteractiveObject]] = {}


def register_object_kind(cls: Type[InteractiveObject]) -> Type[InteractiveObject]:
    """Register an object class for ``object_from_dict`` dispatch."""
    if not cls.kind:
        raise ObjectError("object class must define a kind")
    _KIND_REGISTRY[cls.kind] = cls
    return cls


for _cls in (
    ImageObject,
    ButtonObject,
    TextObject,
    WebLinkObject,
    ItemObject,
    RewardObject,
    NPCObject,
):
    register_object_kind(_cls)


def object_from_dict(d: Dict[str, Any]) -> InteractiveObject:
    """Deserialise any registered object kind (project file loading)."""
    kind = d.get("kind")
    cls = _KIND_REGISTRY.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ObjectError(f"unknown object kind {kind!r}")
    return cls.from_dict(d)  # type: ignore[attr-defined]
