"""Interactive object model: the things mounted on video scenarios.

§4.2: "Image objects are mounted on a video scenario.  The interactive
object plays an important role … Users can set the properties and events
of objects in video and produce adequate feedback when users trigger
them."

An :class:`InteractiveObject` couples

* identity (stable id + editor-visible name),
* geometry (a :class:`~repro.objects.hotspot.Hotspot` + z-order),
* behavioural flags (visible / draggable / portable),
* an *examine* description (§3.1: "Users can get descriptions when they
  try to examine these items"), and
* a :class:`PropertyBag` of typed, author-defined properties.

Event *bindings* (what happens on click/drag/use) live in the scenario's
event table (:mod:`repro.events`), not on the object — the object editor
writes both, but the runtime looks events up by (object id, trigger).
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Dict, Iterator, Optional, Tuple

from .hotspot import Hotspot, hotspot_from_dict

__all__ = ["InteractiveObject", "ObjectError", "PropertyBag", "new_object_id"]

_ID_RE = re.compile(r"^[a-z0-9][a-z0-9_\-]*$")
_id_counter = itertools.count(1)


class ObjectError(ValueError):
    """Raised on invalid object definitions or property access."""


def new_object_id(prefix: str = "obj") -> str:
    """Generate a fresh object id (``prefix-N``), unique per process."""
    return f"{prefix}-{next(_id_counter)}"


_ALLOWED_PROP_TYPES = (bool, int, float, str)


class PropertyBag:
    """Typed key/value properties with first-write type locking.

    The object editor exposes free-form properties to course designers
    ("color", "is_broken", "price" …).  To keep authored games debuggable,
    the type of a property is fixed by its first assignment; later writes
    must match (``bool`` is not accepted where ``int`` was set, despite
    being a subclass).
    """

    __slots__ = ("_data",)

    def __init__(self, initial: Optional[Dict[str, Any]] = None) -> None:
        self._data: Dict[str, Any] = {}
        for k, v in (initial or {}).items():
            self.set(k, v)

    def set(self, key: str, value: Any) -> None:
        """Set a property, enforcing name and type rules."""
        if not key or not isinstance(key, str):
            raise ObjectError("property name must be a non-empty string")
        if type(value) not in _ALLOWED_PROP_TYPES:
            raise ObjectError(
                f"property {key!r}: type {type(value).__name__} not allowed "
                "(bool/int/float/str only)"
            )
        if key in self._data and type(self._data[key]) is not type(value):
            raise ObjectError(
                f"property {key!r} is {type(self._data[key]).__name__}, "
                f"cannot assign {type(value).__name__}"
            )
        self._data[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def require(self, key: str) -> Any:
        """Get a property that must exist."""
        try:
            return self._data[key]
        except KeyError:
            raise ObjectError(f"missing required property {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[Tuple[str, Any]]:
        return iter(sorted(self._data.items()))

    def to_dict(self) -> Dict[str, Any]:
        return dict(self._data)

    def copy(self) -> "PropertyBag":
        return PropertyBag(self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyBag):
            return NotImplemented
        return self._data == other._data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PropertyBag({self._data!r})"


class InteractiveObject:
    """Base class for everything mountable on a scenario.

    Subclasses (in :mod:`repro.objects.kinds`) set :attr:`kind` and add
    appearance; the base class owns identity, geometry and flags.

    Parameters
    ----------
    object_id:
        Stable id, lowercase slug; auto-generated when omitted.
    name:
        Editor-visible label.
    hotspot:
        Clickable region on the frame.
    z_order:
        Stacking order; higher is closer to the viewer.  Hit-testing
        probes in descending z.
    visible / draggable / portable:
        Runtime behaviour flags.  ``portable`` marks items the player can
        drag into the backpack (§3.1).
    description:
        Examine text shown on the examine interaction.
    """

    kind: str = "object"

    def __init__(
        self,
        *,
        object_id: Optional[str] = None,
        name: str,
        hotspot: Hotspot,
        z_order: int = 0,
        visible: bool = True,
        draggable: bool = False,
        portable: bool = False,
        description: str = "",
        properties: Optional[Dict[str, Any]] = None,
    ) -> None:
        oid = object_id or new_object_id(self.kind)
        if not _ID_RE.match(oid):
            raise ObjectError(
                f"object id {oid!r} must be a lowercase slug ([a-z0-9_-])"
            )
        if not name:
            raise ObjectError("object name must be non-empty")
        if not isinstance(hotspot, Hotspot):
            raise ObjectError("hotspot must be a Hotspot instance")
        self.object_id = oid
        self.name = name
        self.hotspot = hotspot
        self.z_order = int(z_order)
        self.visible = bool(visible)
        self.draggable = bool(draggable)
        self.portable = bool(portable)
        self.description = description
        self.properties = PropertyBag(properties)

    # ------------------------------------------------------------------
    def hit(self, x: float, y: float) -> bool:
        """True if a visible object's hotspot contains (x, y)."""
        return self.visible and self.hotspot.contains(x, y)

    def move_to(self, x: float, y: float) -> None:
        """Move the hotspot so its bounding-box top-left lands at (x, y)."""
        x0, y0, _, _ = self.hotspot.bounding_box()
        self.hotspot = self.hotspot.translated(x - x0, y - y0)

    def move_by(self, dx: float, dy: float) -> None:
        """Translate the hotspot by (dx, dy) — the drag gesture."""
        self.hotspot = self.hotspot.translated(dx, dy)

    # ------------------------------------------------------------------
    def _base_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "object_id": self.object_id,
            "name": self.name,
            "hotspot": self.hotspot.to_dict(),
            "z_order": self.z_order,
            "visible": self.visible,
            "draggable": self.draggable,
            "portable": self.portable,
            "description": self.description,
            "properties": self.properties.to_dict(),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form; subclasses extend ``_extra_dict``."""
        d = self._base_dict()
        d.update(self._extra_dict())
        return d

    def _extra_dict(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def _base_kwargs(cls, d: Dict[str, Any]) -> Dict[str, Any]:
        """Extract base-class constructor kwargs from a serialised dict."""
        return {
            "object_id": d["object_id"],
            "name": d["name"],
            "hotspot": hotspot_from_dict(d["hotspot"]),
            "z_order": d.get("z_order", 0),
            "visible": d.get("visible", True),
            "draggable": d.get("draggable", False),
            "portable": d.get("portable", False),
            "description": d.get("description", ""),
            "properties": d.get("properties") or {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.object_id!r} {self.name!r}>"
