"""Interactive objects: hotspot geometry, the object base model and the
concrete kinds (images, buttons, text, web links, items, rewards, NPCs)
that the object editor mounts on video scenarios."""

from .base import InteractiveObject, ObjectError, PropertyBag, new_object_id
from .hotspot import (
    CircleHotspot,
    Hotspot,
    HotspotError,
    PolygonHotspot,
    RectHotspot,
    hotspot_from_dict,
)
from .kinds import (
    ButtonObject,
    ImageObject,
    ItemObject,
    NPCObject,
    RewardObject,
    TextObject,
    WebLinkObject,
    object_from_dict,
    register_object_kind,
)

__all__ = [
    "ButtonObject",
    "CircleHotspot",
    "Hotspot",
    "HotspotError",
    "ImageObject",
    "InteractiveObject",
    "ItemObject",
    "NPCObject",
    "ObjectError",
    "PolygonHotspot",
    "PropertyBag",
    "RectHotspot",
    "RewardObject",
    "TextObject",
    "WebLinkObject",
    "hotspot_from_dict",
    "new_object_id",
    "object_from_dict",
    "register_object_kind",
]
