"""repro — Interactive Video Game-Based Learning (VGBL) platform.

A from-scratch reproduction of Chang, Hsu & Shih, *Using Interactive
Video Technology for the Development of Game-Based Learning* (ICPP
Workshops 2007): an authoring tool that turns video footage into
adventure-style educational games, the runtime gaming platform that
plays them, and every substrate they rest on (synthetic video stack,
scenario graph, event system, streaming delivery, simulated-student
evaluation harness).

Quick tour::

    from repro.core import GameWizard
    from repro.core.templates import scene_footage
    from repro.video import FrameSize

    size = FrameSize(160, 120)
    game = (
        GameWizard("Fix the Computer")
        .scene("classroom", "Classroom", scene_footage(size, 1))
        .scene("market", "Market", scene_footage(size, 2))
        .helper("classroom", "teacher", "Teacher", at=(5, 20, 14, 30),
                lines=["The computer is broken.",
                       "Find a part at the market!"])
        .prop("classroom", "computer", "Computer", at=(60, 40, 30, 30),
              description="It will not boot.",
              properties={"state": "broken"})
        .item("market", "ram", "RAM module", at=(70, 70, 10, 10))
        .connect("classroom", "market", "To market", "Back to class")
        .fetch_quest(item="ram", target="computer",
                     success_text="The computer boots!",
                     bonus=20, reward_name="Repair badge", win=True)
        .build()
    )
    engine = game.new_engine()
    engine.start()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
