"""WAL record payloads: the logical content of the durability log.

The physical framing (length + CRC32) lives in :mod:`repro.persist.wal`;
this module defines what goes *inside* a frame and how to get it back
out.  Three durable record types describe one served session's life:

``start``
    The session exists: player id, pacing ``dt`` and the full scripted
    op list.  Carrying the script in the log makes recovery
    self-contained — a rebuilt session knows both where it was *and*
    what it still has to do, without consulting the load generator.
``input``
    One scripted op was applied (and the engine ticked ``dt``).  Replay
    of the input records after a snapshot reproduces the session state
    bit-for-bit, because the engine is deterministic under a simulated
    clock.
``end``
    The session finished (script exhausted or game over) with an
    outcome; its earlier records are dead weight for compaction.

Ops are either abstract solver :class:`~repro.core.solver.Move`\\ s or
raw input events (:class:`~repro.runtime.inputs.MouseClick` /
:class:`~repro.runtime.inputs.MouseDrag` /
:class:`~repro.runtime.inputs.KeyPress`); both directions of the codec
are total over exactly that set.  :func:`apply_scripted_op` is the
single definition of step semantics shared by the serving layer and
recovery replay — if one changes, the other cannot drift.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence

from ..core.solver import Move, _apply
from ..runtime.inputs import KeyPress, MouseClick, MouseDrag
from ..runtime.state import GameState

__all__ = [
    "PersistError",
    "REC_END",
    "REC_FENCE",
    "REC_INPUT",
    "REC_START",
    "WalLayoutError",
    "apply_scripted_op",
    "end_record",
    "fence_record",
    "input_record",
    "op_from_dict",
    "op_to_dict",
    "ops_from_dicts",
    "ops_to_dicts",
    "start_record",
    "state_digest",
]

REC_START = "start"
REC_INPUT = "input"
REC_END = "end"
#: epoch fence: everything after this record belongs to a new primary
#: (appended by replication failover; carries no session id on purpose)
REC_FENCE = "fence"


class PersistError(RuntimeError):
    """Raised on invalid persistence operations or unreadable journals."""


class WalLayoutError(PersistError):
    """A directory offered as a WAL is not one.

    Raised *before* any scan or replay when a journal directory exists
    but holds a foreign or empty layout (no ``wal-*.log`` segments, or a
    persistence root with no ``shard-*`` directories) — the caller
    almost certainly pointed recovery at the wrong path, and a clear
    error beats failing deep inside the record fold."""


# ----------------------------------------------------------------------
# Op codec
# ----------------------------------------------------------------------

def op_to_dict(op: Any) -> Dict[str, Any]:
    """Serialise one scripted op to a JSON-safe dict."""
    if isinstance(op, Move):
        return {
            "k": "move",
            "kind": op.kind,
            "object_id": op.object_id,
            "item_id": op.item_id,
            "path": list(op.dialogue_path),
        }
    if isinstance(op, MouseClick):
        return {"k": "click", "x": op.x, "y": op.y, "button": op.button}
    if isinstance(op, MouseDrag):
        return {"k": "drag", "x0": op.x0, "y0": op.y0, "x1": op.x1, "y1": op.y1}
    if isinstance(op, KeyPress):
        return {"k": "key", "key": op.key}
    raise PersistError(f"unloggable script op {type(op).__name__}")


def op_from_dict(d: Dict[str, Any]) -> Any:
    """Inverse of :func:`op_to_dict`."""
    k = d.get("k")
    if k == "move":
        return Move(
            kind=d["kind"],
            object_id=d.get("object_id"),
            item_id=d.get("item_id"),
            dialogue_path=tuple(d.get("path", ())),
        )
    if k == "click":
        return MouseClick(d["x"], d["y"], button=d.get("button", "left"))
    if k == "drag":
        return MouseDrag(d["x0"], d["y0"], d["x1"], d["y1"])
    if k == "key":
        return KeyPress(d["key"])
    raise PersistError(f"unknown op kind {k!r}")


def ops_to_dicts(ops: Sequence[Any]) -> List[Dict[str, Any]]:
    return [op_to_dict(op) for op in ops]


def ops_from_dicts(dicts: Sequence[Dict[str, Any]]) -> List[Any]:
    return [op_from_dict(d) for d in dicts]


# ----------------------------------------------------------------------
# Record constructors (the ``lsn`` field is stamped by the journal)
# ----------------------------------------------------------------------

def start_record(player_id: str, dt: float, ops: Sequence[Any]) -> Dict[str, Any]:
    return {"t": REC_START, "sid": player_id, "dt": dt, "ops": ops_to_dicts(ops)}


def input_record(player_id: str, op: Any) -> Dict[str, Any]:
    return {"t": REC_INPUT, "sid": player_id, "op": op_to_dict(op)}


def end_record(player_id: str, outcome: Optional[str]) -> Dict[str, Any]:
    return {"t": REC_END, "sid": player_id, "out": outcome}


def fence_record(epoch: int) -> Dict[str, Any]:
    """Epoch fence appended at promotion: records after it were written
    by the new primary; an old primary at a lower epoch is rejected."""
    if epoch < 1:
        raise PersistError("epoch must be >= 1")
    return {"t": REC_FENCE, "epoch": int(epoch)}


# ----------------------------------------------------------------------
# Shared step semantics + state digest
# ----------------------------------------------------------------------

def apply_scripted_op(engine: Any, op: Any, dt: float) -> None:
    """Apply one scripted op to an engine and tick ``dt``.

    Ops the real UI would have prevented (using an item never picked
    up, clicking a hidden object) change nothing — matching the
    forgiving semantics of the cohort player.  An op that raises also
    skips its tick, exactly as :class:`~repro.serve.session.ServedSession`
    does; recovery replay uses this same function so the two cannot
    diverge.
    """
    try:
        if isinstance(op, Move):
            _apply(engine, op)
        else:
            engine.handle_input(op)
        engine.tick(dt)
    except Exception:
        pass


def state_digest(state: "GameState | Dict[str, Any]") -> str:
    """Canonical SHA-256 over a game state (bit-identical-recovery check)."""
    d = state.to_dict() if isinstance(state, GameState) else state
    payload = json.dumps(d, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
