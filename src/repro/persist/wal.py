"""Append-only write-ahead log with group commit and segment rotation.

The durability contract of the serving layer: every session mutation is
appended here *before* it is considered committed, so a crash loses at
most the records not yet fsynced (bounded by the group-commit window).

**Physical format.**  A journal is a directory of segment files
(``wal-00000001.log``, ``wal-00000002.log``, …).  Every record is a
length- and CRC32-framed JSON payload::

    +----------+----------+------------------+
    | u32 len  | u32 crc  |  payload (JSON)  |   little-endian header
    +----------+----------+------------------+

The first record of every segment is a header frame carrying the
segment sequence number and the LSN of the first data record it will
hold — that makes compaction (dropping whole segment files) a
header-only decision and keeps LSNs recoverable after a prefix of the
log has been deleted.  A torn tail (partial frame, CRC mismatch,
unparseable payload) ends the readable log; readers report the valid
byte length so recovery can truncate exactly there.

**Group commit.**  ``append()`` assigns an LSN and enqueues the frame;
a flusher thread batches everything enqueued across sessions — waiting
at most ``group_window_s`` to let a batch build — writes it with one
``write``/``fsync`` pair and then advances the durable watermark.  The
window is the maximum extra latency any record pays for amortising the
fsync; throughput under load scales with the batch size (benchmarked
against per-record fsync in ``benchmarks/bench_persist.py``).
``sync_each=True`` switches to the naive fsync-per-append baseline.

The journal is intentionally single-writer: one serve shard owns one
journal, so appends never contend across shards.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from time import monotonic, perf_counter, sleep
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .. import faultline as _fl
from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs.tracing import span as _span
from .records import PersistError

__all__ = [
    "Journal",
    "PersistenceConfig",
    "encode_frame",
    "list_segments",
    "read_segment",
    "segment_first_lsn",
    "segment_path",
]

_FRAME = struct.Struct("<II")
#: sanity bound: no legitimate record is this large
MAX_RECORD_BYTES = 16 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")

_M_COMMIT = _obs.histogram(
    "repro_persist_commit_seconds",
    "Enqueue-to-durable latency of a group commit (oldest record in batch)",
)
_M_GROUP = _obs.histogram(
    "repro_persist_group_size",
    "Records made durable per fsync (group-commit batch size)",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
)
_M_RECORDS = _obs.counter(
    "repro_persist_records_total",
    "WAL records appended, by shard journal",
)
_M_BYTES = _obs.counter(
    "repro_persist_bytes_total",
    "WAL bytes written (frames, including segment headers)",
)
_M_FSYNC = _obs.counter(
    "repro_persist_fsyncs_total",
    "fsync calls issued by journals",
)
_M_ROTATED = _obs.counter(
    "repro_persist_segments_rotated_total",
    "WAL segments sealed because they reached segment_max_bytes",
)
_M_FAILURES = _obs.counter(
    "repro_persist_journal_failures_total",
    "Journals that died on a write/fsync error",
)
#: shared with recovery: incremented wherever a torn tail is truncated
_M_TORN = _obs.counter(
    "repro_persist_torn_records_total",
    "Torn/corrupt WAL tail frames detected (and truncated at recovery)",
)
_M_QUORUM_WAIT = _obs.histogram(
    "repro_quorum_wait_seconds",
    "Extra wait for standby quorum after local durability, per record",
)
_M_QUORUM_TIMEOUT = _obs.counter(
    "repro_quorum_timeouts_total",
    "wait_durable calls that were locally durable but never reached "
    "standby quorum, by shard journal",
)

_LOG = _obslog.get_logger("persist")

#: opens a segment file for appending; injectable for fault tests
FileFactory = Callable[[Path], Any]


@dataclass(frozen=True, slots=True)
class PersistenceConfig:
    """Knobs of the durability subsystem (per shard journal)."""

    #: root directory; each serve shard journals under ``shard-NN/``
    directory: Union[str, Path]
    #: seal the active segment and start a new one past this size
    segment_max_bytes: int = 1 << 20
    #: max extra latency the group-commit flusher waits to build a batch
    group_window_s: float = 0.002
    #: fsync on every append instead of group commit (baseline mode)
    sync_each: bool = False
    #: snapshot a session every N logged input records (0 = never)
    snapshot_every: int = 64
    #: drop WAL segments fully covered by snapshots after each snapshot
    compact: bool = True
    #: opt-in quorum commit: ``wait_durable`` resolves only once this
    #: many subscribed standbys have mirrored (fsynced) the COMMIT
    #: watermark for the LSN.  0 keeps durability primary-local.  The
    #: replication source installs the actual barrier at attach time
    #: (:meth:`Journal.set_quorum`); without one the knob is inert.
    quorum_standbys: int = 0
    #: extra time ``wait_durable`` grants the quorum barrier on top of
    #: local durability before declaring a quorum timeout
    quorum_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.segment_max_bytes < 4096:
            raise ValueError("segment_max_bytes must be >= 4096")
        if self.group_window_s < 0:
            raise ValueError("group_window_s must be >= 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.quorum_standbys < 0:
            raise ValueError("quorum_standbys must be >= 0")
        if self.quorum_timeout_s <= 0:
            raise ValueError("quorum_timeout_s must be positive")

    def shard_dir(self, shard_index: int) -> Path:
        """Where shard ``shard_index`` keeps its journal + snapshots."""
        return Path(self.directory) / f"shard-{shard_index:02d}"


# ----------------------------------------------------------------------
# Frame codec + segment readers (shared with recovery / inspection)
# ----------------------------------------------------------------------

def encode_frame(record: Dict[str, Any]) -> bytes:
    """Frame one JSON record: ``u32 len | u32 crc32 | payload``."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def segment_path(directory: Path, seq: int) -> Path:
    return Path(directory) / f"wal-{seq:08d}.log"


def list_segments(directory: Union[str, Path]) -> List[Tuple[int, Path]]:
    """(seq, path) pairs of all segments in a journal dir, in order."""
    out: List[Tuple[int, Path]] = []
    directory = Path(directory)
    if not directory.is_dir():
        return out
    for path in directory.iterdir():
        m = _SEGMENT_RE.match(path.name)
        if m:
            out.append((int(m.group(1)), path))
    out.sort()
    return out


def read_segment(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Parse one segment file.

    Returns ``(records, valid_bytes, torn)`` where ``records`` includes
    the segment-header record, ``valid_bytes`` is the byte offset of the
    first invalid frame (== file size when clean) and ``torn`` is True
    when the file ends in a partial/corrupt frame.  Reading never
    raises on corruption — a torn tail is data, not an error.
    """
    data = Path(path).read_bytes()
    records: List[Dict[str, Any]] = []
    off = 0
    n = len(data)
    while off + _FRAME.size <= n:
        length, crc = _FRAME.unpack_from(data, off)
        end = off + _FRAME.size + length
        if length == 0 or length > MAX_RECORD_BYTES or end > n:
            return records, off, True
        payload = data[off + _FRAME.size : end]
        if zlib.crc32(payload) != crc:
            return records, off, True
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return records, off, True
        if not isinstance(record, dict):
            return records, off, True
        records.append(record)
        off = end
    if off != n:
        return records, off, True  # trailing partial header
    return records, off, False


def segment_first_lsn(path: Union[str, Path]) -> Optional[int]:
    """First data LSN a segment holds, from its header frame (or None)."""
    try:
        with open(path, "rb") as fh:
            head = fh.read(_FRAME.size)
            if len(head) < _FRAME.size:
                return None
            length, crc = _FRAME.unpack(head)
            if length == 0 or length > MAX_RECORD_BYTES:
                return None
            payload = fh.read(length)
    except OSError:
        return None
    if len(payload) < length or zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(record, dict) or record.get("t") != "h":
        return None
    return int(record.get("first", 0)) or None


def _default_open(path: Path) -> Any:
    return open(path, "ab")


def _fsync_file(fh: Any, label: str = "0") -> None:
    """fsync a file object; honours an injected ``fsync`` hook."""
    fh.flush()
    if _fl.ACTIVE:
        action = _fl.fire("wal.fsync", shard=label)
        if action is not None:
            if action.seconds > 0:
                # a stalling device: the data lands, late
                sleep(action.seconds)
            if action.kind == "error":
                raise OSError("faultline: injected fsync failure")
    fsync = getattr(fh, "fsync", None)
    if fsync is not None:
        fsync()
    else:
        os.fsync(fh.fileno())


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------

class Journal:
    """One shard's append-only log; single logical writer, group commit.

    ``append()`` may be called from any thread (it only enqueues); the
    flusher thread owns all file IO.  With ``sync_each=True`` there is
    no flusher and appends write + fsync inline — the deliberately slow
    baseline the persistence benchmark compares against.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        config: Optional[PersistenceConfig] = None,
        label: str = "0",
        file_factory: Optional[FileFactory] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config or PersistenceConfig(directory=self.directory)
        self.label = label
        self._open_file = file_factory or _default_open
        self._cond = threading.Condition()
        self._pending: List[Tuple[int, bytes, float]] = []
        self._durable = 0
        self._next_lsn = 1
        self._stop = False
        self._closed = False
        self._failed: Optional[BaseException] = None
        self._fh: Any = None
        self._seq = 0
        self._size = 0
        self._segment_has_data = False
        #: ``(require, wait_fn)`` — quorum-commit barrier consulted by
        #: :meth:`wait_durable` after local durability (see
        #: :meth:`set_quorum`); None keeps durability primary-local
        self._quorum: Optional[
            Tuple[int, Callable[[int, Optional[float]], bool]]
        ] = None
        self._attach_tip()
        self._flusher: Optional[threading.Thread] = None
        if not self.config.sync_each:
            self._flusher = threading.Thread(
                target=self._flush_loop,
                name=f"repro-persist-flusher-{label}",
                daemon=True,
            )
            self._flusher.start()

    # -- startup: continue an existing log, truncating any torn tail ----
    def _attach_tip(self) -> None:
        segments = list_segments(self.directory)
        if not segments:
            self._open_segment(seq=1, first_lsn=1)
            return
        seq, path = segments[-1]
        records, valid, torn = read_segment(path)
        if torn:
            os.truncate(path, valid)
            _M_TORN.inc(shard=self.label)
            _LOG.warning("persist.torn_tail_truncated", shard=self.label,
                         segment=path.name, valid_bytes=valid)
        next_lsn = None
        has_data = False
        for record in records:
            if record.get("t") == "h":
                next_lsn = int(record.get("first", 1))
            elif "n" in record:
                next_lsn = int(record["n"]) + 1
                has_data = True
        self._next_lsn = next_lsn if next_lsn is not None else 1
        self._durable = self._next_lsn - 1
        self._seq = seq
        self._size = valid
        self._segment_has_data = has_data
        self._fh = self._open_file(path)

    def _open_segment(self, seq: int, first_lsn: int) -> None:
        path = segment_path(self.directory, seq)
        self._fh = self._open_file(path)
        self._seq = seq
        self._size = 0
        self._segment_has_data = False
        header = encode_frame({"t": "h", "seg": seq, "first": first_lsn})
        self._fh.write(header)
        _fsync_file(self._fh, self.label)
        self._size = len(header)
        if _obs.enabled():
            _M_BYTES.inc(len(header), shard=self.label)
            _M_FSYNC.inc(shard=self.label)

    # -- public API ------------------------------------------------------
    @property
    def durable_lsn(self) -> int:
        """Highest LSN guaranteed on disk."""
        return self._durable

    @property
    def last_assigned_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def failed(self) -> bool:
        return self._failed is not None

    def append(self, record: Dict[str, Any]) -> int:
        """Stamp an LSN onto ``record`` and enqueue it; returns the LSN.

        Group-commit mode returns immediately (use :meth:`wait_durable`
        or :meth:`sync` for durability); ``sync_each`` mode returns
        only after the record is fsynced.
        """
        with self._cond:
            if self._closed:
                raise PersistError("journal is closed")
            if self._failed is not None:
                raise PersistError(f"journal failed: {self._failed!r}")
            lsn = self._next_lsn
            self._next_lsn += 1
            stamped = dict(record)
            stamped["n"] = lsn
            frame = encode_frame(stamped)
            if self.config.sync_each:
                t0 = perf_counter()
                try:
                    self._write_batch([(lsn, frame)])
                    _fsync_file(self._fh, self.label)
                except Exception as exc:
                    self._mark_failed(exc)
                    raise PersistError(f"journal failed: {exc!r}") from exc
                self._durable = lsn
                if _obs.enabled():
                    _M_FSYNC.inc(shard=self.label)
                    _M_COMMIT.observe(perf_counter() - t0, shard=self.label)
                    _M_GROUP.observe(1, shard=self.label)
            else:
                self._pending.append((lsn, frame, monotonic()))
                self._cond.notify_all()
        return lsn

    def set_quorum(
        self,
        require: int,
        wait: Callable[[int, Optional[float]], bool],
    ) -> None:
        """Arm quorum commit: ``wait(lsn, timeout)`` must return True
        once ``require`` subscribed standbys have durably mirrored the
        COMMIT watermark for ``lsn``.

        Installed by the replication source when
        ``PersistenceConfig.quorum_standbys`` is set; after this,
        :meth:`wait_durable` resolves only when the record is durable
        locally *and* on the quorum.  ``require <= 0`` or ``wait=None``
        disarms.
        """
        if require <= 0 or wait is None:
            self._quorum = None
        else:
            self._quorum = (require, wait)

    def wait_durable(self, lsn: int, timeout: Optional[float] = None) -> bool:
        """Block until ``lsn`` is fsynced; False on timeout or failure.

        With quorum commit armed (:meth:`set_quorum`), local durability
        is only half the contract: the call then also waits for the
        standby quorum to mirror ``lsn`` and returns False on a quorum
        timeout — an ack the caller never sees is an ack the cluster
        never gave.
        """
        deadline = None if timeout is None else monotonic() + timeout
        if not self._wait_local_durable(lsn, deadline):
            return False
        with self._cond:
            quorum = self._quorum
        if quorum is None:
            return True
        require, wait = quorum
        budget = self.config.quorum_timeout_s
        if deadline is not None:
            budget = min(budget, max(0.0, deadline - monotonic()))
        t0 = perf_counter()
        try:
            acked = bool(wait(lsn, budget))
        except Exception:
            acked = False
        if _obs.enabled():
            _M_QUORUM_WAIT.observe(perf_counter() - t0)
        if not acked:
            _M_QUORUM_TIMEOUT.inc(shard=self.label)
            _LOG.warning("persist.quorum_timeout", shard=self.label,
                         lsn=lsn, require=require, waited_s=budget)
        return acked

    def _wait_local_durable(
        self, lsn: int, deadline: Optional[float]
    ) -> bool:
        """Block until ``lsn`` is fsynced *here*; no quorum involved."""
        with self._cond:
            while self._durable < lsn:
                if self._failed is not None or self._closed:
                    return self._durable >= lsn
                if deadline is None:
                    self._cond.wait(0.1)
                else:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
        return True

    def sync(self, timeout: Optional[float] = None) -> bool:
        """Flush everything appended so far; True when all durable.

        Deliberately local-only even with quorum commit armed: quorum
        is a property of client-visible acks (a traced END's
        ``wait_durable``), not of shutdown flushes — by the time a
        journal syncs for close, the shipping link may already be
        severed, and that must not read as a quorum timeout.
        """
        with self._cond:
            target = self._next_lsn - 1
        deadline = None if timeout is None else monotonic() + timeout
        return self._wait_local_durable(target, deadline)

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Flush pending records, fsync and close (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._stop = True
            self._cond.notify_all()
        if self._flusher is not None:
            self._flusher.join(timeout=timeout)
        with self._cond:
            leftovers = self._pending
            self._pending = []
            self._closed = True
            self._cond.notify_all()
        if self._fh is not None:
            if leftovers and self._failed is None:
                # The flusher died without draining (join timeout);
                # write the tail ourselves rather than lose it.
                try:
                    self._write_batch([(lsn, fr) for lsn, fr, _ in leftovers])
                    _fsync_file(self._fh, self.label)
                    with self._cond:
                        self._durable = leftovers[-1][0]
                except Exception as exc:  # pragma: no cover - disk death
                    self._mark_failed(exc)
            try:
                self._fh.close()
            except Exception:  # pragma: no cover - disk death
                pass
            self._fh = None

    # -- internals --------------------------------------------------------
    def _mark_failed(self, exc: BaseException) -> None:
        self._failed = exc
        _M_FAILURES.inc(shard=self.label)
        _LOG.error("persist.journal_failed", shard=self.label, error=repr(exc))

    def _fault_write(self, frame: bytes) -> None:
        """Faultline's ``wal.write`` hook: tear the tail, then die.

        A torn write leaves a prefix of the frame on disk (flushed so
        it is really there for recovery to find) and raises — the
        journal fails exactly like it does on device death, and the
        disorderly tail is what recovery must truncate and count.
        """
        action = _fl.fire("wal.write", shard=self.label)
        if action is None:
            return
        if action.kind in ("torn_write", "short_write"):
            if action.kind == "short_write":
                cut = _FRAME.size  # header only, payload lost
            else:
                cut = max(_FRAME.size + 1, int(len(frame) * action.fraction))
            cut = min(cut, len(frame) - 1)
            self._fh.write(frame[:cut])
            self._fh.flush()
            raise OSError(
                f"faultline: injected {action.kind} "
                f"({cut}/{len(frame)} bytes reached the disk)"
            )
        raise OSError("faultline: injected write failure")

    def _write_batch(self, batch: List[Tuple[int, bytes]]) -> None:
        """Write frames, rotating segments by size; no fsync here."""
        for lsn, frame in batch:
            if (
                self._segment_has_data
                and self._size + len(frame) > self.config.segment_max_bytes
            ):
                _fsync_file(self._fh, self.label)
                self._fh.close()
                self._open_segment(self._seq + 1, first_lsn=lsn)
                if _obs.enabled():
                    _M_ROTATED.inc(shard=self.label)
                    _M_FSYNC.inc(shard=self.label)
            if _fl.ACTIVE:
                self._fault_write(frame)
            self._fh.write(frame)
            self._size += len(frame)
            self._segment_has_data = True
        if _obs.enabled():
            _M_RECORDS.inc(len(batch), shard=self.label)
            _M_BYTES.inc(sum(len(fr) for _, fr in batch), shard=self.label)

    def _flush_loop(self) -> None:
        window = self.config.group_window_s
        while True:
            with self._cond:
                while not self._pending and not self._stop:
                    self._cond.wait(0.05)
                if not self._pending and self._stop:
                    return
                if window > 0 and not self._stop:
                    # Let the batch build: wait out the window so many
                    # sessions' records share one fsync.
                    deadline = monotonic() + window
                    while not self._stop:
                        remaining = deadline - monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch = self._pending
                self._pending = []
            try:
                # One span per fsync batch: request traces attribute
                # their fsync_wait to this window, and the span ties a
                # slow commit to its batch size/shard in the flight
                # recorder.
                with _span("wal.group_commit", shard=self.label,
                           batch=len(batch)):
                    self._write_batch([(lsn, fr) for lsn, fr, _ in batch])
                    _fsync_file(self._fh, self.label)
            except Exception as exc:
                with self._cond:
                    self._mark_failed(exc)
                    self._cond.notify_all()
                return
            done_at = monotonic()
            with self._cond:
                self._durable = batch[-1][0]
                self._cond.notify_all()
            if _obs.enabled():
                _M_FSYNC.inc(shard=self.label)
                _M_GROUP.observe(len(batch), shard=self.label)
                _M_COMMIT.observe(done_at - batch[0][2], shard=self.label)
