"""Crash recovery: rebuild served sessions from snapshots + WAL replay.

Recovery of one shard journal is a pure function of what is on disk:

1. **Scan** the segment files in order, stopping at the first torn or
   corrupt frame.  With ``truncate=True`` the tail is cut back to the
   last valid record (and any later, now-unreachable segments are
   removed) so the journal can be appended to again; every detected
   tear is counted and exported.
2. **Load snapshots**; a snapshot whose digest does not verify is
   ignored (the log has the same information, just slower).
3. **Fold the records**: ``start`` registers a session (unless a
   snapshot already covers it), ``input`` records past a session's
   snapshot LSN queue for replay, ``end`` retires it.
4. **Rebuild engines**: fresh engine per live session, snapshot state
   installed under a simulated clock rewound to the saved play time,
   then the queued input records replayed through the *same* step
   function the serving layer uses — so the rebuilt state is
   bit-identical to what the crashed process had committed (asserted
   via state digests in the fault-injection tests).

Sessions that had already ended are counted, not rebuilt.  After a
successful rebuild each live session gets a fresh snapshot at the log
tip, which both documents the recovery and lets compaction drop the
entire replayed prefix.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..runtime.state import GameState
from ..video.player import SimulatedClock
from .records import (
    REC_END,
    REC_FENCE,
    REC_INPUT,
    REC_START,
    WalLayoutError,
    apply_scripted_op,
    op_from_dict,
    ops_from_dicts,
    state_digest,
)
from .snapshot import SNAPSHOT_DIRNAME, SnapshotStore, snapshot_dir_for
from .wal import _M_TORN, list_segments, read_segment

__all__ = [
    "RecoveredSession",
    "ScanReport",
    "ShardRecovery",
    "ensure_wal_layout",
    "rebuild_engine",
    "recover_shard",
    "scan_journal",
]

_M_RECOVERY = _obs.histogram(
    "repro_persist_recovery_seconds",
    "Wall time to recover one shard journal (scan + snapshot + replay)",
)
_M_REPLAYED = _obs.counter(
    "repro_persist_replayed_records_total",
    "Input records replayed through engines during recovery",
)
_M_RECOVERED = _obs.counter(
    "repro_persist_recovered_sessions_total",
    "Live sessions rebuilt by recovery",
)

_LOG = _obslog.get_logger("persist")

#: non-segment entries a healthy shard journal directory may contain
_KNOWN_SIDECARS = frozenset({SNAPSHOT_DIRNAME, "EPOCH"})


def ensure_wal_layout(directory: Union[str, Path]) -> None:
    """Fail fast when ``directory`` exists but is not a shard journal.

    A real shard journal always holds at least one ``wal-*.log``
    segment (the journal writes segment 1 the moment it opens, and
    compaction never deletes the active segment).  A directory that
    exists with no segments is therefore either empty (wrong path,
    nothing was ever journalled there) or foreign (somebody else's
    files) — both raise :class:`WalLayoutError` with the offending
    entries named, instead of an empty-looking recovery or a failure
    deep inside the record fold.  A directory that does not exist is
    fine: that is the fresh-start case recovery already handles.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return
    if list_segments(directory):
        return
    foreign = sorted(
        entry.name for entry in directory.iterdir()
        if entry.name not in _KNOWN_SIDECARS
    )
    if foreign:
        raise WalLayoutError(
            f"{directory} is not a WAL directory: no wal-*.log segments, "
            f"found foreign entries {foreign[:5]}"
        )
    raise WalLayoutError(
        f"{directory} exists but holds no WAL segments (empty layout); "
        "refusing to recover from the wrong directory"
    )


@dataclass(slots=True)
class ScanReport:
    """What a journal scan found on disk."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    segments: int = 0
    torn_records: int = 0
    discarded_bytes: int = 0
    tip_lsn: int = 0


def scan_journal(
    directory: Union[str, Path], truncate: bool = False
) -> ScanReport:
    """Read every valid record of a journal, in LSN order.

    The logical log ends at the first invalid frame: records past a
    mid-log tear can no longer be ordered trustworthily, so they are
    discarded (and counted as bytes).  ``truncate=True`` additionally
    cuts the torn segment back to its last valid record and unlinks any
    later segments, restoring the append invariant.
    """
    report = ScanReport()
    segments = list_segments(directory)
    report.segments = len(segments)
    for idx, (seq, path) in enumerate(segments):
        records, valid, torn = read_segment(path)
        for record in records:
            if record.get("t") == "h":
                continue
            report.records.append(record)
            lsn = int(record.get("n", 0))
            if lsn > report.tip_lsn:
                report.tip_lsn = lsn
        if torn:
            report.torn_records += 1
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover
                size = valid
            report.discarded_bytes += size - valid
            if truncate:
                os.truncate(path, valid)
                _M_TORN.inc()
                _LOG.warning("persist.torn_tail_truncated",
                             segment=path.name, valid_bytes=valid)
            for _seq2, path2 in segments[idx + 1 :]:
                try:
                    report.discarded_bytes += path2.stat().st_size
                except OSError:  # pragma: no cover
                    pass
                if truncate:
                    path2.unlink(missing_ok=True)
            break
    return report


@dataclass(slots=True)
class RecoveredSession:
    """One live session rebuilt to its last committed state."""

    player_id: str
    dt: float
    ops: List[Any]
    cursor: int  #: ops already applied (snapshot cursor + replayed records)
    engine: Any
    digest: str  #: SHA-256 of the rebuilt state (bit-identity check)
    replayed: int  #: input records replayed beyond the snapshot

    @property
    def remaining_ops(self) -> int:
        return max(0, len(self.ops) - self.cursor)


@dataclass(slots=True)
class ShardRecovery:
    """Everything recovery did for one shard journal."""

    directory: Path
    sessions: List[RecoveredSession] = field(default_factory=list)
    ended_sessions: int = 0
    torn_records: int = 0
    discarded_bytes: int = 0
    snapshots_used: int = 0
    snapshots_rejected: int = 0
    orphan_records: int = 0
    replayed_records: int = 0
    tip_lsn: int = 0
    duration_s: float = 0.0

    def digests(self) -> Dict[str, str]:
        return {s.player_id: s.digest for s in self.sessions}


@dataclass(slots=True)
class _Rebuild:
    dt: float = 0.25
    ops: List[Dict[str, Any]] = field(default_factory=list)
    cursor: int = 0
    state: Optional[Dict[str, Any]] = None
    covered_lsn: int = 0
    replay: List[Dict[str, Any]] = field(default_factory=list)
    ended: bool = False
    from_snapshot: bool = False


def _fold_records(
    records: List[Dict[str, Any]],
    snapshots: Dict[str, Dict[str, Any]],
) -> Tuple[Dict[str, _Rebuild], int]:
    """Fold log records over the snapshot table; returns (table, orphans)."""
    table: Dict[str, _Rebuild] = {}
    for sid, snap in snapshots.items():
        table[sid] = _Rebuild(
            dt=float(snap.get("dt", 0.25)),
            ops=list(snap.get("ops", [])),
            cursor=int(snap.get("cursor", 0)),
            state=snap["state"],
            covered_lsn=int(snap.get("lsn", 0)),
            from_snapshot=True,
        )
    orphans = 0
    for record in records:
        kind = record.get("t")
        if kind == REC_FENCE:
            # an epoch fence from replication failover: shard-wide
            # metadata, deliberately session-less — not an orphan
            continue
        sid = record.get("sid")
        lsn = int(record.get("n", 0))
        if sid is None:
            orphans += 1
            continue
        entry = table.get(sid)
        if kind == REC_START:
            if entry is None:
                table[sid] = _Rebuild(
                    dt=float(record.get("dt", 0.25)),
                    ops=list(record.get("ops", [])),
                    covered_lsn=lsn,  # the start record itself is absorbed
                )
            # else: a snapshot already carries dt/ops/state
        elif kind == REC_INPUT:
            if entry is None:
                orphans += 1
                continue
            if lsn <= entry.covered_lsn:
                continue  # the snapshot already includes this op
            entry.replay.append(record.get("op", {}))
        elif kind == REC_END:
            if entry is None:
                orphans += 1
                continue
            entry.ended = True
        else:
            orphans += 1
    return table, orphans


def rebuild_engine(
    game: Any,
    state: Optional[Dict[str, Any]] = None,
    replay: Sequence[Dict[str, Any]] = (),
    dt: float = 0.25,
    with_video: bool = False,
) -> Any:
    """Fresh engine restored to ``state``, ``replay`` op dicts on top.

    This is the single definition of "rebuild a session from durable
    parts" shared by crash recovery and the replication applier: a
    simulated clock rewound to the saved play time, snapshot state
    installed, then each serialised op pushed through
    :func:`apply_scripted_op` — so any rebuilt engine is bit-identical
    to the primary that wrote the log.
    """
    gs = GameState.from_dict(state) if state is not None else None
    clock = SimulatedClock(start=gs.play_time if gs is not None else 0.0)
    engine = game.new_engine(clock=clock, with_video=with_video)
    engine.start()
    if gs is not None:
        engine.state = gs
        if engine.player is not None:
            sc = engine.scenarios[gs.current_scenario]
            engine.player.loop_segment = sc.loop
            engine.player.play(sc.segment_ref)
        engine.compositor.invalidate()
    for op_dict in replay:
        apply_scripted_op(engine, op_from_dict(op_dict), dt)
    return engine


def _rebuild_engine(game: Any, entry: _Rebuild, with_video: bool) -> Any:
    """Fresh engine restored to the snapshot state, log replayed on top."""
    return rebuild_engine(
        game, state=entry.state, replay=entry.replay,
        dt=entry.dt, with_video=with_video,
    )


def recover_shard(
    directory: Union[str, Path],
    game: Any,
    with_video: bool = False,
    truncate: bool = True,
    write_snapshots: bool = True,
) -> ShardRecovery:
    """Rebuild every committed session of one shard journal.

    ``game`` is the :class:`~repro.core.project.CompiledGame` the
    sessions were playing — engines are minted from it exactly as the
    serving layer does.  Returns a :class:`ShardRecovery` whose
    ``sessions`` are live (resumable) sessions; already-ended sessions
    are only counted.
    """
    t0 = perf_counter()
    directory = Path(directory)
    ensure_wal_layout(directory)
    scan = scan_journal(directory, truncate=truncate)
    store = SnapshotStore(snapshot_dir_for(directory))
    snapshots, rejected = store.load_all()
    table, orphans = _fold_records(scan.records, snapshots)

    report = ShardRecovery(
        directory=directory,
        torn_records=scan.torn_records,
        discarded_bytes=scan.discarded_bytes,
        snapshots_rejected=rejected,
        orphan_records=orphans,
        tip_lsn=scan.tip_lsn,
    )
    for sid, entry in sorted(table.items()):
        if entry.ended:
            report.ended_sessions += 1
            if truncate:
                store.remove(sid)
            continue
        engine = _rebuild_engine(game, entry, with_video)
        cursor = min(entry.cursor + len(entry.replay), len(entry.ops))
        session = RecoveredSession(
            player_id=sid,
            dt=entry.dt,
            ops=ops_from_dicts(entry.ops),
            cursor=cursor,
            engine=engine,
            digest=state_digest(engine.state),
            replayed=len(entry.replay),
        )
        report.sessions.append(session)
        report.replayed_records += len(entry.replay)
        if entry.from_snapshot:
            report.snapshots_used += 1
        if write_snapshots:
            store.write(
                sid, entry.dt, entry.ops, cursor,
                engine.state.to_dict(), lsn=scan.tip_lsn,
            )
    report.duration_s = perf_counter() - t0
    if _obs.enabled():
        _M_RECOVERY.observe(report.duration_s)
        _M_REPLAYED.inc(report.replayed_records)
        _M_RECOVERED.inc(len(report.sessions))
        # Materialise the torn counter even on clean recoveries so the
        # "torn == 0" SLO rule sees a real series, not a missing metric.
        _M_TORN.inc(0 if truncate else scan.torn_records)
        _LOG.info(
            "persist.recovered", dir=str(directory),
            live=len(report.sessions), ended=report.ended_sessions,
            replayed=report.replayed_records, torn=report.torn_records,
            duration_ms=round(report.duration_s * 1e3, 3),
        )
    return report
