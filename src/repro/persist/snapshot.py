"""Per-session snapshots and WAL compaction.

A snapshot is a self-contained resume point for one served session:
its full :class:`~repro.runtime.state.GameState` dict, the script op
list, the cursor (ops already applied), and the WAL LSN the state
covers.  Snapshots are written atomically (temp file + fsync +
``os.replace``) with an embedded state digest, so a crash mid-snapshot
leaves the previous snapshot intact and a corrupted file is detected
and ignored at load — recovery then simply replays more of the log.

Compaction follows from the snapshot watermark: a *sealed* WAL segment
whose last LSN is at or below the oldest LSN any live session still
needs (its latest snapshot LSN; one less than its start-record LSN if
it has none) contains only bytes every possible recovery would skip,
so the file is deleted outright.  The check is header-only — segment
``i`` ends where segment ``i+1``'s header says it begins — and only a
contiguous prefix is ever dropped, keeping the surviving log dense.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Sequence, Tuple, Union

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from .records import ops_to_dicts, state_digest
from .wal import list_segments, segment_first_lsn

__all__ = [
    "SnapshotStore",
    "compact_segments",
    "compaction_watermark",
    "snapshot_dir_for",
]

SNAPSHOT_DIRNAME = "snapshots"

_M_SNAPSHOTS = _obs.counter(
    "repro_persist_snapshots_total",
    "Session snapshots written, by shard journal",
)
_M_SNAPSHOT_REJECTS = _obs.counter(
    "repro_persist_snapshot_rejects_total",
    "Snapshot files ignored at load (digest mismatch / unparseable)",
)
_M_COMPACTED = _obs.counter(
    "repro_persist_segments_compacted_total",
    "WAL segments deleted because snapshots fully cover them",
)

_LOG = _obslog.get_logger("persist")


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-to-temp + fsync + rename: all-or-nothing on crash."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class SnapshotStore:
    """Atomic per-session snapshot files under one shard's journal dir."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, player_id: str) -> Path:
        # Player ids are arbitrary strings ("load-3#12"); hash for a
        # filesystem-safe, collision-resistant name.  The id itself is
        # stored inside the document.
        digest = hashlib.sha1(player_id.encode("utf-8")).hexdigest()[:24]
        return self.directory / f"snap-{digest}.json"

    # ------------------------------------------------------------------
    def write(
        self,
        player_id: str,
        dt: float,
        ops: Sequence[Any],
        cursor: int,
        state: Mapping[str, Any],
        lsn: int,
    ) -> Path:
        """Snapshot one session's state as of WAL position ``lsn``.

        ``ops`` may be live op objects or already-serialised dicts
        (recovery re-snapshots from its own decoded table).
        """
        op_dicts = [
            op if isinstance(op, dict) else None for op in ops
        ]
        if any(d is None for d in op_dicts):
            op_dicts = ops_to_dicts(ops)
        state_dict = dict(state)
        doc = {
            "sid": player_id,
            "dt": dt,
            "cursor": int(cursor),
            "lsn": int(lsn),
            "ops": op_dicts,
            "state": state_dict,
            "digest": state_digest(state_dict),
        }
        path = self._path(player_id)
        _atomic_write_bytes(path, json.dumps(doc, sort_keys=True).encode("utf-8"))
        _M_SNAPSHOTS.inc()
        return path

    def load_all(self) -> Tuple[Dict[str, Dict[str, Any]], int]:
        """All valid snapshots by player id, plus a rejected-file count.

        A snapshot whose payload does not match its embedded digest (a
        hand-edited or bit-rotted file — atomic writes rule out tears)
        is skipped: recovery falls back to replaying the log instead.
        """
        out: Dict[str, Dict[str, Any]] = {}
        rejected = 0
        for path in sorted(self.directory.glob("snap-*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                rejected += 1
                continue
            if (
                not isinstance(doc, dict)
                or "sid" not in doc
                or "state" not in doc
                or state_digest(doc["state"]) != doc.get("digest")
            ):
                rejected += 1
                _LOG.warning("persist.snapshot_rejected", file=path.name)
                continue
            out[doc["sid"]] = doc
        if rejected:
            _M_SNAPSHOT_REJECTS.inc(rejected)
        return out, rejected

    def remove(self, player_id: str) -> bool:
        path = self._path(player_id)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def count(self) -> int:
        return sum(1 for _ in self.directory.glob("snap-*.json"))


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------

def compaction_watermark(covered_lsns: Iterable[int], tip_lsn: int) -> int:
    """Highest LSN no live session will ever re-read.

    ``covered_lsns`` holds, per live session, the newest LSN its
    snapshot covers (``start_lsn - 1`` when it has none).  With no live
    sessions everything up to the durable tip is dead.
    """
    values = list(covered_lsns)
    return min(values) if values else tip_lsn


def compact_segments(directory: Union[str, Path], watermark: int) -> int:
    """Delete sealed segments fully at or below ``watermark``.

    Only a contiguous prefix is dropped (stopping at the first segment
    still needed) and the active segment is always kept, so LSNs stay
    dense across the surviving files.  Returns the number of segments
    deleted.
    """
    segments = list_segments(directory)
    if len(segments) <= 1:
        return 0
    dropped = 0
    for (seq, path), (_next_seq, next_path) in zip(segments[:-1], segments[1:]):
        next_first = segment_first_lsn(next_path)
        if next_first is None or next_first - 1 > watermark:
            break
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent external delete
            break
        dropped += 1
    if dropped:
        _M_COMPACTED.inc(dropped)
        _LOG.info("persist.compacted", dir=str(directory),
                  dropped=dropped, watermark=watermark)
    return dropped


def snapshot_dir_for(journal_dir: Union[str, Path]) -> Path:
    """Where a shard journal keeps its snapshots."""
    return Path(journal_dir) / SNAPSHOT_DIRNAME
