"""Durable session persistence: WAL, snapshots, crash recovery.

``repro.persist`` makes the sharded game server (:mod:`repro.serve`)
restartable: each shard owns an append-only, CRC-framed write-ahead
log with **group commit** (one fsync covers a batch of records across
sessions), per-session **snapshots** written atomically, WAL
**compaction** that deletes segments fully covered by snapshots, and
**recovery** that tolerates a torn tail and rebuilds every committed
session bit-identically (snapshot + deterministic input replay).

The pieces:

* :class:`~repro.persist.wal.Journal` /
  :class:`~repro.persist.wal.PersistenceConfig` — the log itself;
* :mod:`repro.persist.records` — record payloads, the op codec, the
  shared step semantics and the state digest;
* :class:`~repro.persist.snapshot.SnapshotStore` +
  :func:`~repro.persist.snapshot.compact_segments` — resume points and
  segment garbage collection;
* :func:`~repro.persist.recovery.recover_shard` /
  :func:`~repro.persist.recovery.scan_journal` — crash recovery, used
  by ``SessionManager.recover()`` and the ``repro wal`` CLI.

Everything is instrumented through :mod:`repro.obs`
(``repro_persist_*`` commit-latency / group-size / recovery-duration
histograms and torn-record counters) and asserted by the persist rules
in ``examples/slo.toml``.
"""

from .records import (
    PersistError,
    WalLayoutError,
    apply_scripted_op,
    end_record,
    fence_record,
    input_record,
    op_from_dict,
    op_to_dict,
    start_record,
    state_digest,
)
from .recovery import (
    RecoveredSession,
    ScanReport,
    ShardRecovery,
    ensure_wal_layout,
    rebuild_engine,
    recover_shard,
    scan_journal,
)
from .snapshot import (
    SnapshotStore,
    compact_segments,
    compaction_watermark,
    snapshot_dir_for,
)
from .wal import (
    Journal,
    PersistenceConfig,
    encode_frame,
    list_segments,
    read_segment,
    segment_first_lsn,
)

__all__ = [
    "Journal",
    "PersistError",
    "PersistenceConfig",
    "RecoveredSession",
    "ScanReport",
    "ShardRecovery",
    "SnapshotStore",
    "WalLayoutError",
    "apply_scripted_op",
    "compact_segments",
    "compaction_watermark",
    "encode_frame",
    "end_record",
    "ensure_wal_layout",
    "fence_record",
    "input_record",
    "list_segments",
    "op_from_dict",
    "op_to_dict",
    "read_segment",
    "rebuild_engine",
    "recover_shard",
    "scan_journal",
    "segment_first_lsn",
    "snapshot_dir_for",
    "start_record",
    "state_digest",
]
