"""Observability for the VGBL runtime: metrics, tracing, export.

A dependency-free instrumentation layer measuring what the paper's
gaming platform actually *does* at runtime — event dispatch latency,
scenario transitions, condition-cache effectiveness, streaming bytes
and stalls, segment-cache hit rates, parallel-encoder utilization —
behind a single process-global switch that keeps every instrumented hot
path at one boolean check when off.

Quick tour::

    from repro import obs

    obs.enable()                      # or REPRO_OBS=1 in the environment
    ...run any instrumented workload...
    print(obs.render_snapshot(obs.snapshot(), "table"))
    obs.reset()

``python -m repro obs export`` does the same from the command line.
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    get_registry,
    histogram,
    reset,
    set_enabled,
    snapshot,
)
from .tracing import Span, Tracer, get_tracer, span, trace
from .export import (
    EXPORT_FORMATS,
    render_json,
    render_prometheus,
    render_snapshot,
    render_table,
    snapshot_rows,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EXPORT_FORMATS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "render_json",
    "render_prometheus",
    "render_snapshot",
    "render_table",
    "reset",
    "set_enabled",
    "snapshot",
    "snapshot_rows",
    "span",
    "trace",
]
