"""Observability for the VGBL runtime: metrics, tracing, logging, SLOs.

A dependency-free instrumentation layer measuring what the paper's
gaming platform actually *does* at runtime — event dispatch latency,
scenario transitions, condition-cache effectiveness, streaming bytes
and stalls, segment-cache hit rates, parallel-encoder utilization —
behind a single process-global switch that keeps every instrumented hot
path at one boolean check when off.  Four pillars:

* **metrics** — counters / gauges / histograms (:mod:`.metrics`),
  exported as Prometheus text, tables or JSON (:mod:`.export`);
* **tracing** — nestable wall-time spans with trace/span correlation
  ids (:mod:`.tracing`);
* **logging** — structured JSONL events stamped with the active
  trace/span ids (:mod:`.logging`), retained at full verbosity in a
  crash-safe flight recorder (:mod:`.recorder`) that dumps itself from
  an unhandled-exception hook;
* **slo** — declarative health rules evaluated against a metrics
  snapshot (:mod:`.slo`), the nonzero-exit gate behind
  ``repro obs check``.

Quick tour::

    from repro import obs

    obs.enable()                      # or REPRO_OBS=1 in the environment
    ...run any instrumented workload...
    print(obs.render_snapshot(obs.snapshot(), "table"))
    obs.dump_flight("flight.json")    # events + metrics + spans
    obs.reset()

``python -m repro obs export`` / ``tail`` / ``check`` and the live
``python -m repro top`` dashboard do the same from the command line.
"""

from . import attribution as _attribution_mod
from . import metrics as _metrics_mod
from . import recorder as _recorder_mod
from . import tracing as _tracing_mod
from .attribution import (
    PHASES,
    RequestTrace,
    Sampler,
    TraceStore,
    get_store as get_trace_store,
    new_trace_id,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    TimeSeriesRing,
    counter,
    disable,
    enabled,
    gauge,
    get_registry,
    get_ring,
    histogram,
    set_enabled,
    snapshot,
)
from .tracing import Span, Tracer, get_tracer, span, trace
from .logging import (
    LEVELS,
    StructLogger,
    add_log_file,
    add_log_sink,
    format_event,
    get_logger,
    remove_log_sink,
    reset_logging,
    set_log_level,
)
from .recorder import (
    FlightRecorder,
    dump_flight,
    get_flight_recorder,
    install_excepthook,
    uninstall_excepthook,
)
from .slo import (
    SloError,
    SloResult,
    SloRule,
    evaluate_slos,
    parse_slo_file,
)
from .export import (
    EXPORT_FORMATS,
    render_json,
    render_prometheus,
    render_snapshot,
    render_table,
    snapshot_rows,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EXPORT_FORMATS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LEVELS",
    "MetricError",
    "MetricsRegistry",
    "PHASES",
    "RequestTrace",
    "Sampler",
    "SloError",
    "SloResult",
    "SloRule",
    "Span",
    "StructLogger",
    "TimeSeriesRing",
    "TraceStore",
    "Tracer",
    "add_log_file",
    "add_log_sink",
    "counter",
    "disable",
    "dump_flight",
    "enable",
    "enabled",
    "evaluate_slos",
    "format_event",
    "gauge",
    "get_flight_recorder",
    "get_logger",
    "get_registry",
    "get_ring",
    "get_trace_store",
    "get_tracer",
    "histogram",
    "install_excepthook",
    "new_trace_id",
    "parse_slo_file",
    "remove_log_sink",
    "render_json",
    "render_prometheus",
    "render_snapshot",
    "render_table",
    "reset",
    "reset_logging",
    "set_enabled",
    "set_log_level",
    "snapshot",
    "snapshot_rows",
    "span",
    "trace",
    "uninstall_excepthook",
]


def enable() -> None:
    """Turn recording on and arm the flight recorder's crash hook."""
    _metrics_mod.enable()
    _recorder_mod.install_excepthook()


def reset() -> None:
    """Reset all runtime observability state.

    Clears every metric series (definitions survive), drops finished
    span trees *and* the active-span state, empties the flight
    recorder, the time-series ring and the request-attribution store —
    so interleaved spans, stale history samples or half-marked request
    traces can never leak across a reset boundary (serve-bench and the
    demo workload reset between passes and must stay isolated).
    """
    _metrics_mod.reset()
    _metrics_mod.get_ring().clear()
    _tracing_mod.get_tracer().reset()
    _recorder_mod.get_flight_recorder().clear()
    _attribution_mod.get_store().clear()


# REPRO_OBS=1 in the environment enables recording at import time; arm
# the crash hook for that path too.
if _metrics_mod.enabled():  # pragma: no cover - environment-dependent
    _recorder_mod.install_excepthook()
