"""Structured, trace-correlated event logging for the VGBL runtime.

Metrics (:mod:`repro.obs.metrics`) say *how many*; spans
(:mod:`repro.obs.tracing`) say *where the time went*; this module
records *what happened*: JSONL events with a level, a logger name, wall
and monotonic timestamps, arbitrary key/value fields, and — when emitted
inside a live span — the active trace/span IDs, so a log line can be
joined against the tracing export and the flight-recorder dump.

Design constraints, matching the rest of the obs package:

1. **Near-zero cost when disabled.**  Every log method checks the
   module-level obs flag first and returns before touching the clock,
   the context variable, or any allocation beyond the caller's kwargs.
2. **The flight recorder sees everything.**  Per-logger levels filter
   what reaches the *sinks* (files, callables); the bounded ring in
   :mod:`repro.obs.recorder` receives every surviving event regardless,
   so a crash dump always has full verbosity for the recent past.
3. **Cheap when enabled.**  Per-logger effective levels are cached, and
   hot call sites can thin themselves with ``sample=0.1``-style
   probabilistic sampling (a deterministic seeded RNG, so test runs are
   reproducible).

Usage::

    from repro.obs import logging as olog

    log = olog.get_logger("engine")
    log.info("scenario.switch", src="lobby", dst="market", via="door")
    log.debug("stream.fetch", sample=0.25, segment=3, bytes=8192)

    olog.set_log_level("warning")            # root
    olog.set_log_level("debug", "engine")    # dotted-prefix override
    olog.add_log_file("run.jsonl")           # JSONL sink for `repro obs tail`
"""

from __future__ import annotations

import io
import json
import random
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from . import metrics as _metrics
from . import tracing as _tracing
from .recorder import get_flight_recorder

__all__ = [
    "LEVELS",
    "StructLogger",
    "add_log_file",
    "add_log_sink",
    "format_event",
    "get_logger",
    "remove_log_sink",
    "reset_logging",
    "set_log_level",
]

#: Level names to numeric severity (stdlib-compatible ordering).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {v: k for k, v in LEVELS.items()}

Sink = Callable[[Dict[str, Any]], None]

_M_EVENTS = _metrics.counter(
    "repro_log_events_total",
    "Structured log events that passed the level filter, by level",
)
_M_SINK_ERRORS = _metrics.counter(
    "repro_log_sink_errors_total",
    "Exceptions raised by log sinks (swallowed; logging must not break hosts)",
)


def _level_no(level: "str | int") -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; known: {sorted(LEVELS)}"
        ) from None


def _default_root_level() -> int:
    raw = os.environ.get("REPRO_LOG_LEVEL", "").strip().lower()
    return LEVELS.get(raw, LEVELS["debug"])


class _LogConfig:
    """Shared state: per-logger levels, sinks, sampling RNG."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._levels: Dict[str, int] = {"": _default_root_level()}
        self._eff_cache: Dict[str, int] = {}
        self._sinks: List[Sink] = []
        # Deterministic so sampled workloads are reproducible run-to-run.
        self._rng = random.Random(0x0B5)

    # -- levels --------------------------------------------------------
    def set_level(self, level: "str | int", logger: str = "") -> None:
        no = _level_no(level)
        with self._lock:
            self._levels[logger] = no
            self._eff_cache.clear()

    def effective_level(self, name: str) -> int:
        cached = self._eff_cache.get(name)
        if cached is not None:
            return cached
        with self._lock:
            # Longest dotted-prefix match: "net.cache" beats "net" beats root.
            probe = name
            while True:
                if probe in self._levels:
                    level = self._levels[probe]
                    break
                if not probe:
                    level = LEVELS["debug"]
                    break
                probe = probe.rpartition(".")[0]
            self._eff_cache[name] = level
            return level

    # -- sinks ---------------------------------------------------------
    def add_sink(self, sink: Sink) -> Sink:
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> bool:
        with self._lock:
            try:
                self._sinks.remove(sink)
                return True
            except ValueError:
                return False

    # -- dispatch ------------------------------------------------------
    def dispatch(self, name: str, level_no: int, record: Dict[str, Any]) -> None:
        # The flight recorder keeps full verbosity regardless of levels.
        get_flight_recorder().record(record)
        if level_no < self.effective_level(name):
            return
        _M_EVENTS.inc(level=record["level"])
        for sink in tuple(self._sinks):
            try:
                sink(record)
            except Exception:
                _M_SINK_ERRORS.inc()

    def reset(self) -> None:
        with self._lock:
            self._levels = {"": _default_root_level()}
            self._eff_cache.clear()
            self._sinks.clear()
            self._rng = random.Random(0x0B5)


_CONFIG = _LogConfig()
_loggers: Dict[str, "StructLogger"] = {}
_loggers_lock = threading.Lock()


class StructLogger:
    """A named source of structured events."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    # One method per level keeps call sites terse and grep-able.
    def debug(self, event: str, *, sample: Optional[float] = None, **fields: Any) -> None:
        if _metrics._ENABLED:
            self._log(10, event, sample, fields)

    def info(self, event: str, *, sample: Optional[float] = None, **fields: Any) -> None:
        if _metrics._ENABLED:
            self._log(20, event, sample, fields)

    def warning(self, event: str, *, sample: Optional[float] = None, **fields: Any) -> None:
        if _metrics._ENABLED:
            self._log(30, event, sample, fields)

    def error(self, event: str, *, sample: Optional[float] = None, **fields: Any) -> None:
        if _metrics._ENABLED:
            self._log(40, event, sample, fields)

    def _log(
        self,
        level_no: int,
        event: str,
        sample: Optional[float],
        fields: Dict[str, Any],
    ) -> None:
        if sample is not None and sample < 1.0:
            if sample <= 0.0 or _CONFIG._rng.random() >= sample:
                return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "mono": time.perf_counter(),
            "level": _LEVEL_NAMES[level_no],
            "logger": self.name,
            "event": event,
        }
        if fields:
            record["fields"] = fields
        span = _tracing.get_tracer().current()
        if span is not None:
            trace_id = getattr(span, "trace_id", None)
            if trace_id is not None:
                record["trace_id"] = trace_id
                record["span_id"] = span.span_id
        _CONFIG.dispatch(self.name, level_no, record)


def get_logger(name: str) -> StructLogger:
    """Get-or-create the named logger (idempotent, thread-safe)."""
    logger = _loggers.get(name)
    if logger is None:
        with _loggers_lock:
            logger = _loggers.setdefault(name, StructLogger(name))
    return logger


def set_log_level(level: "str | int", logger: str = "") -> None:
    """Set the minimum sink level for ``logger`` (dotted-prefix scope).

    The empty string is the root.  ``set_log_level("warning")`` then
    ``set_log_level("debug", "engine")`` gives every ``engine*`` logger
    full verbosity while the rest stay quiet.
    """
    _CONFIG.set_level(level, logger)


def add_log_sink(sink: Sink) -> Sink:
    """Register a callable receiving every record that passes its level."""
    return _CONFIG.add_sink(sink)


def remove_log_sink(sink: Sink) -> bool:
    """Unregister a sink; True if it was registered."""
    return _CONFIG.remove_sink(sink)


class _FileSink:
    """JSONL file sink (line-buffered so ``repro obs tail -f`` sees it live)."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._fh: Optional[io.TextIOWrapper] = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()

    def __call__(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, default=str)
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def add_log_file(path: "Path | str") -> _FileSink:
    """Attach a JSONL file sink; returns it (use with ``remove_log_sink``)."""
    sink = _FileSink(Path(path))
    _CONFIG.add_sink(sink)
    return sink


def reset_logging() -> None:
    """Drop all sinks and level overrides (used by tests and ``obs reset``)."""
    _CONFIG.reset()


# A REPRO_LOG_FILE environment variable wires a JSONL sink without code.
_env_log_file = os.environ.get("REPRO_LOG_FILE", "").strip()
if _env_log_file:  # pragma: no cover - environment-dependent
    try:
        add_log_file(_env_log_file)
    except OSError:
        pass


# ----------------------------------------------------------------------
# Human rendering (shared by `repro obs tail` and `repro top`)
# ----------------------------------------------------------------------

def format_event(record: Dict[str, Any]) -> str:
    """One log record as a single human-readable line."""
    ts = record.get("ts")
    if isinstance(ts, (int, float)):
        stamp = time.strftime("%H:%M:%S", time.localtime(ts)) + f".{int(ts % 1 * 1000):03d}"
    else:
        stamp = "--:--:--.---"
    level = str(record.get("level", "?")).upper()
    name = str(record.get("logger", "?"))
    event = str(record.get("event", "?"))
    parts = [f"{stamp} {level:<7} {name:<8} {event}"]
    fields = record.get("fields") or {}
    if fields:
        parts.append(" ".join(f"{k}={v}" for k, v in fields.items()))
    trace_id = record.get("trace_id")
    if trace_id:
        span_id = record.get("span_id", "")
        parts.append(f"[trace={str(trace_id)[:8]} span={str(span_id)[:8]}]")
    return " ".join(parts)
