"""Render metrics snapshots: Prometheus text format, tables, JSON.

The snapshot structure produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` is plain data; this
module turns it into

* the Prometheus text exposition format (``render_prometheus``) — what
  a scrape endpoint or a CI artifact would serve;
* the repo's own table machinery (``render_table`` via
  :func:`repro.reporting.tables.format_table`) — what ``repro obs dump``
  prints;
* JSON (``render_json``) — for programmatic diffing across runs.

Histograms export the full Prometheus triple: cumulative ``_bucket``
series with ``le`` labels (ending at ``+Inf``), ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = [
    "EXPORT_FORMATS",
    "render_json",
    "render_prometheus",
    "render_snapshot",
    "render_table",
    "snapshot_rows",
]

EXPORT_FORMATS = ("prometheus", "table", "json")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """The Prometheus text exposition format for one snapshot."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", []):
        name, kind = metric["name"], metric["kind"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            bounds = list(metric.get("buckets", []))
            for series in metric["series"]:
                labels = series["labels"]
                cumulative = 0
                for bound, count in zip(bounds + [float("inf")], series["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(labels, {'le': _format_bound(bound)})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} {_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
        else:
            for series in metric["series"]:
                lines.append(
                    f"{name}{_format_labels(series['labels'])}"
                    f" {_format_value(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_rows(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten a snapshot to homogeneous rows for ``format_table``.

    Histogram series flatten to one row carrying count/sum/mean; counter
    and gauge series carry their value.  One row per labeled series.
    """
    rows: List[Dict[str, Any]] = []
    for metric in snapshot.get("metrics", []):
        name, kind = metric["name"], metric["kind"]
        for series in metric["series"]:
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(series["labels"].items())
            )
            if kind == "histogram":
                count = series["count"]
                mean = series["sum"] / count if count else 0.0
                rows.append(
                    {
                        "metric": name,
                        "kind": kind,
                        "labels": labels,
                        "value": f"n={count} sum={series['sum']:.6g} mean={mean:.6g}",
                    }
                )
            else:
                rows.append(
                    {
                        "metric": name,
                        "kind": kind,
                        "labels": labels,
                        "value": _format_value(series["value"]),
                    }
                )
    return rows


def render_table(snapshot: Dict[str, Any], title: str = "Metrics snapshot") -> str:
    """Human-readable table via the repo's reporting machinery."""
    # Imported lazily: repro.reporting pulls in the video stack, whose
    # parallel kernels are themselves instrumented through this package.
    from ..reporting.tables import format_table

    return format_table(
        snapshot_rows(snapshot), columns=["metric", "kind", "labels", "value"],
        title=title,
    )


def render_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """The raw snapshot as JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def render_snapshot(snapshot: Dict[str, Any], fmt: str = "prometheus") -> str:
    """Dispatch on format name: one of :data:`EXPORT_FORMATS`."""
    if fmt == "prometheus":
        return render_prometheus(snapshot)
    if fmt == "table":
        return render_table(snapshot)
    if fmt == "json":
        return render_json(snapshot)
    raise ValueError(f"unknown export format {fmt!r}; known: {EXPORT_FORMATS}")
