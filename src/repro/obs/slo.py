"""Declarative SLO rules evaluated against a metrics snapshot.

A production gate needs *assertions*, not dashboards: "engine dispatch
p95 stays under 5 ms", "no recorder errors", "the segment cache actually
hits".  This module evaluates a list of declarative rules against the
plain-data snapshot produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (live registry or a
saved JSON file — the shape is identical) and reports per-rule results;
``repro obs check --slo FILE`` exits nonzero on any breach, which is the
whole CI story.

Rule files are TOML (or JSON with the same structure)::

    [[rule]]
    name   = "engine dispatch p95 under 5ms"
    metric = "repro_engine_dispatch_seconds"
    kind   = "p95"          # total|rate|value|mean|p50|p90|p95|p99|ratio
    op     = "<"            # < <= > >= == !=
    value  = 0.005

    [[rule]]
    name        = "segment cache hit rate floor"
    kind        = "ratio"
    numerator   = "repro_cache_hits_total"
    denominator = ["repro_cache_hits_total", "repro_cache_misses_total"]
    op          = ">="
    value       = 0.05

Quantiles are estimated from histogram buckets (the first upper bound
covering the target rank — conservative, never optimistic).  A rule
whose metric is missing or has no samples **fails** unless it sets
``allow_empty = true``: a silently un-exercised SLO is itself a breach.

TOML parsing uses :mod:`tomllib` when available (Python >= 3.11) and
falls back to a dependency-free minimal parser covering the subset the
rule files need, so Python 3.10 works without installing anything.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "OPS",
    "RULE_KINDS",
    "SloError",
    "SloResult",
    "SloRule",
    "evaluate_slos",
    "load_rules",
    "parse_slo_file",
]

RULE_KINDS = (
    "total", "rate", "value", "mean", "p50", "p90", "p95", "p99", "ratio",
)

OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12),
    "!=": lambda a, b: not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12),
}

_QUANTILES = {"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99}


class SloError(ValueError):
    """Raised on malformed rule files or invalid rule definitions."""


@dataclass(frozen=True, slots=True)
class SloRule:
    """One declarative health assertion."""

    kind: str
    op: str
    value: float
    metric: Optional[str] = None
    name: Optional[str] = None
    labels: Optional[Dict[str, str]] = None
    numerator: Optional[str] = None
    denominator: Tuple[str, ...] = ()
    allow_empty: bool = False

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise SloError(f"unknown rule kind {self.kind!r}; known: {RULE_KINDS}")
        if self.op not in OPS:
            raise SloError(f"unknown op {self.op!r}; known: {sorted(OPS)}")
        if self.kind == "ratio":
            if not self.numerator or not self.denominator:
                raise SloError("ratio rules need 'numerator' and 'denominator'")
        elif not self.metric:
            raise SloError(f"{self.kind} rules need a 'metric'")

    @property
    def title(self) -> str:
        if self.name:
            return self.name
        target = self.metric or f"{self.numerator}/{'+'.join(self.denominator)}"
        return f"{self.kind}({target}) {self.op} {self.value}"


@dataclass(slots=True)
class SloResult:
    """The outcome of evaluating one rule."""

    rule: SloRule
    ok: bool
    observed: Optional[float]
    detail: str = ""

    def as_row(self) -> Dict[str, Any]:
        observed = "-" if self.observed is None else f"{self.observed:.6g}"
        return {
            "rule": self.rule.title,
            "observed": observed,
            "target": f"{self.rule.op} {self.rule.value:.6g}",
            "status": "PASS" if self.ok else f"FAIL {self.detail}".rstrip(),
        }


# ----------------------------------------------------------------------
# Snapshot arithmetic
# ----------------------------------------------------------------------

def _labels_match(series_labels: Dict[str, str], want: Optional[Dict[str, str]]) -> bool:
    if not want:
        return True
    return all(series_labels.get(k) == str(v) for k, v in want.items())


def _find_metric(snapshot: Dict[str, Any], name: str) -> Optional[Dict[str, Any]]:
    for metric in snapshot.get("metrics", []):
        if metric.get("name") == name:
            return metric
    return None


def _metric_total(
    entry: Dict[str, Any], labels: Optional[Dict[str, str]]
) -> Tuple[Optional[float], int]:
    """(sum over matching series, matching series count).

    Counters/gauges sum their values; histograms sum observation counts.
    """
    matched = [s for s in entry["series"] if _labels_match(s["labels"], labels)]
    if entry["kind"] == "histogram":
        return float(sum(s["count"] for s in matched)), len(matched)
    return float(sum(s["value"] for s in matched)), len(matched)


def _histogram_stats(
    entry: Dict[str, Any], labels: Optional[Dict[str, str]]
) -> Tuple[List[int], float, int]:
    """Merged (bucket_counts, sum, count) across matching series."""
    bounds = entry.get("buckets", [])
    counts = [0] * (len(bounds) + 1)
    total_sum = 0.0
    total_count = 0
    for series in entry["series"]:
        if not _labels_match(series["labels"], labels):
            continue
        for i, c in enumerate(series["counts"]):
            counts[i] += c
        total_sum += series["sum"]
        total_count += series["count"]
    return counts, total_sum, total_count


def histogram_quantile(
    entry: Dict[str, Any], q: float, labels: Optional[Dict[str, str]] = None
) -> Optional[float]:
    """Estimate quantile ``q`` from bucket counts (upper-bound estimate).

    Returns None with no samples; +Inf when the rank falls in the
    overflow bucket.
    """
    if not 0.0 < q <= 1.0:
        raise SloError(f"quantile must be in (0, 1]: {q}")
    bounds = entry.get("buckets", [])
    counts, _sum, count = _histogram_stats(entry, labels)
    if count == 0:
        return None
    target = q * count
    cumulative = 0
    for i, c in enumerate(counts):
        cumulative += c
        if cumulative >= target - 1e-9:
            return float(bounds[i]) if i < len(bounds) else math.inf
    return math.inf  # pragma: no cover - cumulative always reaches count


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def _empty(rule: SloRule, detail: str) -> SloResult:
    return SloResult(rule, ok=rule.allow_empty, observed=None, detail=detail)


def _evaluate_one(rule: SloRule, snapshot: Dict[str, Any]) -> SloResult:
    if rule.kind == "ratio":
        assert rule.numerator is not None
        num_entry = _find_metric(snapshot, rule.numerator)
        if num_entry is None:
            return _empty(rule, f"(metric {rule.numerator} missing)")
        numerator, _ = _metric_total(num_entry, rule.labels)
        denominator = 0.0
        for name in rule.denominator:
            entry = _find_metric(snapshot, name)
            if entry is None:
                return _empty(rule, f"(metric {name} missing)")
            part, _ = _metric_total(entry, rule.labels)
            denominator += part or 0.0
        if denominator == 0.0:
            return _empty(rule, "(denominator is zero)")
        observed = (numerator or 0.0) / denominator
    else:
        assert rule.metric is not None
        entry = _find_metric(snapshot, rule.metric)
        if entry is None:
            return _empty(rule, f"(metric {rule.metric} missing)")
        if rule.kind in _QUANTILES:
            if entry["kind"] != "histogram":
                raise SloError(
                    f"rule {rule.title!r}: quantiles need a histogram, "
                    f"{rule.metric} is a {entry['kind']}"
                )
            quantile = histogram_quantile(entry, _QUANTILES[rule.kind], rule.labels)
            if quantile is None:
                return _empty(rule, "(no samples)")
            observed = quantile
        elif rule.kind == "mean":
            if entry["kind"] != "histogram":
                raise SloError(
                    f"rule {rule.title!r}: mean needs a histogram, "
                    f"{rule.metric} is a {entry['kind']}"
                )
            _counts, total_sum, count = _histogram_stats(entry, rule.labels)
            if count == 0:
                return _empty(rule, "(no samples)")
            observed = total_sum / count
        elif rule.kind == "value":
            matched = [
                s for s in entry["series"] if _labels_match(s["labels"], rule.labels)
            ]
            if entry["kind"] == "histogram":
                observed = float(sum(s["count"] for s in matched))
            else:
                observed = float(sum(s["value"] for s in matched))
            if not matched and not rule.labels:
                observed = 0.0
        else:  # total / rate
            total, n_series = _metric_total(entry, rule.labels)
            if n_series == 0 and rule.labels:
                return _empty(rule, "(no matching series)")
            observed = total or 0.0
    ok = OPS[rule.op](observed, rule.value)
    return SloResult(rule, ok=ok, observed=observed)


def evaluate_slos(
    rules: Sequence[SloRule], snapshot: Dict[str, Any]
) -> Tuple[List[SloResult], bool]:
    """Evaluate every rule; returns (results, all_passed)."""
    results = [_evaluate_one(rule, snapshot) for rule in rules]
    return results, all(r.ok for r in results)


# ----------------------------------------------------------------------
# Rule files
# ----------------------------------------------------------------------

def load_rules(data: Dict[str, Any]) -> List[SloRule]:
    """Build rules from the parsed file structure ``{"rule": [...]}``."""
    raw_rules = data.get("rule") or data.get("rules")
    if not isinstance(raw_rules, list) or not raw_rules:
        raise SloError("rule file defines no [[rule]] tables")
    rules: List[SloRule] = []
    for i, raw in enumerate(raw_rules):
        if not isinstance(raw, dict):
            raise SloError(f"rule #{i + 1} is not a table")
        known = {
            "name", "metric", "kind", "op", "value", "labels",
            "numerator", "denominator", "allow_empty",
        }
        unknown = set(raw) - known
        if unknown:
            raise SloError(f"rule #{i + 1} has unknown keys: {sorted(unknown)}")
        try:
            denominator = raw.get("denominator", ())
            if isinstance(denominator, str):
                denominator = (denominator,)
            rules.append(
                SloRule(
                    kind=str(raw.get("kind", "total")),
                    op=str(raw.get("op", "<=")),
                    value=float(raw["value"]),
                    metric=raw.get("metric"),
                    name=raw.get("name"),
                    labels=raw.get("labels"),
                    numerator=raw.get("numerator"),
                    denominator=tuple(denominator),
                    allow_empty=bool(raw.get("allow_empty", False)),
                )
            )
        except KeyError as exc:
            raise SloError(f"rule #{i + 1} is missing key {exc}") from None
    return rules


def parse_slo_file(path: "Path | str") -> List[SloRule]:
    """Parse a ``.toml`` or ``.json`` rule file into rules."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        data = json.loads(text)
    else:
        try:
            import tomllib
        except ModuleNotFoundError:  # Python 3.10: dependency-free fallback
            data = _parse_mini_toml(text)
        else:
            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise SloError(f"{path}: {exc}") from None
    if not isinstance(data, dict):
        raise SloError(f"{path}: top level must be a table/object")
    return load_rules(data)


def _parse_mini_toml(text: str) -> Dict[str, Any]:
    """A minimal TOML-subset parser for rule files (no tomllib).

    Supports ``[[array-of-tables]]``, ``[table]``, and ``key = value``
    with strings, numbers, booleans, and single-line arrays — exactly
    the shapes an SLO file uses.
    """
    data: Dict[str, Any] = {}
    current: Dict[str, Any] = data
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            key = line[2:-2].strip()
            data.setdefault(key, []).append({})
            current = data[key][-1]
            continue
        if line.startswith("[") and line.endswith("]"):
            key = line[1:-1].strip()
            table: Dict[str, Any] = {}
            data[key] = table
            current = table
            continue
        if "=" not in line:
            raise SloError(f"line {lineno}: cannot parse {raw!r}")
        key, _, value = line.partition("=")
        current[key.strip()] = _parse_mini_value(value.strip(), lineno)
    return data


def _parse_mini_value(value: str, lineno: int) -> Any:
    if value.startswith('"'):
        end = value.find('"', 1)
        if end < 0:
            raise SloError(f"line {lineno}: unterminated string")
        return value[1:end]
    if value.startswith("["):
        end = value.rfind("]")
        if end < 0:
            raise SloError(f"line {lineno}: unterminated array")
        inner = value[1:end].strip()
        if not inner:
            return []
        return [
            _parse_mini_value(part.strip(), lineno)
            for part in inner.split(",")
            if part.strip()
        ]
    value = value.split("#", 1)[0].strip()
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        raise SloError(f"line {lineno}: cannot parse value {value!r}") from None
