"""Crash-safe flight recorder: the last N structured events, always.

A production VGBL deployment dies in the worst possible place — inside a
student's session, under load, with the interesting events long since
scrolled away.  The flight recorder is the black box for that moment: a
bounded, thread-safe ring buffer that retains the most recent structured
log events at *all* verbosity levels (the per-logger level filter in
:mod:`repro.obs.logging` applies to sinks, never to the recorder), and
dumps itself — plus the metrics snapshot and the finished span trees —
to a JSON file on demand (:func:`dump_flight`) or from an
unhandled-exception hook (:func:`install_excepthook`).

Every buffered event carries a process-wide monotonically increasing
``seq`` number, so a dump proves both completeness (no lost events in
the retained window) and ordering, even under concurrent writers.

Environment knobs::

    REPRO_FLIGHT_SIZE=512     ring capacity (events)
    REPRO_FLIGHT_DIR=.        where crash dumps land
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

from . import metrics as _metrics
from . import tracing as _tracing

__all__ = [
    "FlightRecorder",
    "dump_flight",
    "get_flight_recorder",
    "install_excepthook",
    "uninstall_excepthook",
]

DEFAULT_CAPACITY = 512


def _env_capacity() -> int:
    raw = os.environ.get("REPRO_FLIGHT_SIZE", "").strip()
    if not raw:
        return DEFAULT_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CAPACITY
    return value if value >= 1 else DEFAULT_CAPACITY


class FlightRecorder:
    """Bounded ring of the most recent structured events.

    ``record`` is unconditional — callers (the structured logger) gate on
    the obs enabled flag, and tests may drive the recorder directly.
    Appends are serialised under one lock so the ``seq`` stamp, the
    ``dropped`` count and the ring itself can never disagree.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._buf: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        #: events pushed out of the ring by newer ones
        self.dropped = 0

    def record(self, record: Dict[str, Any]) -> None:
        """Append one event (copied, stamped with the next ``seq``)."""
        with self._lock:
            self._seq += 1
            if len(self._buf) == self.capacity:
                self.dropped += 1
            self._buf.append({**record, "seq": self._seq})

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._buf)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (retained + dropped)."""
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._buf)

    def clear(self) -> None:
        """Empty the ring and zero the bookkeeping."""
        with self._lock:
            self._buf.clear()
            self._seq = 0
            self.dropped = 0

    def payload(self, reason: str = "manual") -> Dict[str, Any]:
        """The full dump structure: events + metrics + span trees."""
        return {
            "reason": reason,
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events": self.events(),
            "metrics": _metrics.snapshot(),
            "spans": _tracing.get_tracer().to_dicts(),
        }

    def dump(self, path: Optional[Path] = None, reason: str = "manual") -> Path:
        """Write the dump payload as JSON; returns the file written."""
        if path is None:
            out_dir = Path(os.environ.get("REPRO_FLIGHT_DIR", "."))
            path = out_dir / f"repro-flight-{os.getpid()}-{int(time.time())}.json"
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.payload(reason), indent=2, default=str) + "\n"
        )
        return path


#: The process-global flight recorder used by the structured logger.
RECORDER = FlightRecorder(_env_capacity())


def get_flight_recorder() -> FlightRecorder:
    """The process-global flight recorder."""
    return RECORDER


def dump_flight(path: Optional[Path] = None, reason: str = "manual") -> Path:
    """Dump the global flight recorder (see :meth:`FlightRecorder.dump`)."""
    return RECORDER.dump(path, reason)


# ----------------------------------------------------------------------
# Unhandled-exception hook
# ----------------------------------------------------------------------

_prev_excepthook = None


def _flight_excepthook(exc_type, exc, tb) -> None:
    """Dump the flight recorder, then defer to the previous hook."""
    try:
        path = dump_flight(reason=f"unhandled:{exc_type.__name__}")
        print(f"obs: flight recorder dumped to {path}", file=sys.stderr)
    except Exception:  # never mask the original crash
        pass
    if _prev_excepthook is not None:
        _prev_excepthook(exc_type, exc, tb)


def install_excepthook() -> None:
    """Chain the flight-dump hook in front of ``sys.excepthook`` (idempotent)."""
    global _prev_excepthook
    if sys.excepthook is _flight_excepthook:
        return
    _prev_excepthook = sys.excepthook
    sys.excepthook = _flight_excepthook


def uninstall_excepthook() -> None:
    """Restore the hook that was active before :func:`install_excepthook`."""
    global _prev_excepthook
    if sys.excepthook is _flight_excepthook and _prev_excepthook is not None:
        sys.excepthook = _prev_excepthook
    _prev_excepthook = None
