"""Per-request latency attribution across the serving stack.

:mod:`repro.obs.tracing` spans answer "where did this *function call*
spend its time" inside one thread; this module answers the cross-layer
question for one *request*: a SUBMIT frame enters the gateway on the
event loop, waits in a shard inbox, is stepped by a shard thread, waits
for its WAL end-record fsync, and finally has its END frame flushed
down a socket — five phases owned by three different threads.  A
:class:`RequestTrace` stitches them back together.

The model is deliberately mark-based: a trace opens at one instant
(``t0``) and every ``mark(phase)`` closes the interval since the
previous mark, attributing it to ``phase``.  Phases therefore
*partition* the request's wall time — their durations sum to the
client-observed latency (minus sub-millisecond socket transit), which
is what makes a waterfall trustworthy: no double counting, no
unattributed gaps.

Canonical phases of a gateway SUBMIT (:data:`PHASES`):

``accept``
    SUBMIT receipt → admission accepted by the manager (parse + hash +
    admission control, on the event loop).
``queue_wait``
    Admission → the owning shard's tick loop actually starts the
    session (inbox residency).
``shard_step``
    Session start → final step (includes tick pacing — wall residency
    on the shard, not busy CPU time, because that is what the client
    waits for).
``fsync_wait``
    Final step → the session's WAL end record is durable (group-commit
    latency; absent when persistence is off).
``flush``
    END frame enqueued → drained into the socket.

Everything is process-global and thread-safe, mirroring the metrics
registry: producers on any thread call :meth:`TraceStore.mark` with a
trace id, the telemetry endpoint and ``repro obs trace`` read
timelines back out.  Recording is gated on the same master switch as
metrics — with observability off, :meth:`TraceStore.start` refuses and
every later call on that id is a cheap no-op.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from . import metrics as _metrics
from .tracing import new_id

__all__ = [
    "PHASES",
    "RequestTrace",
    "Sampler",
    "TraceStore",
    "get_store",
    "new_trace_id",
]

#: canonical request phases, in pipeline order
PHASES = ("accept", "queue_wait", "shard_step", "fsync_wait", "flush")

_M_PHASE = _metrics.histogram(
    "repro_trace_phase_seconds",
    "Wall time one traced request spent in each pipeline phase, by phase",
)
_M_REQUESTS = _metrics.counter(
    "repro_trace_requests_total",
    "Requests traced end-to-end, by final status",
)
_M_ORPHANED = _metrics.counter(
    "repro_trace_orphaned_total",
    "Traces evicted or abandoned before their final phase was recorded",
)
_M_OPEN = _metrics.gauge(
    "repro_trace_open",
    "Traces currently open (started but not finished)",
)


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id (same id space as span ids)."""
    return new_id()


class Sampler:
    """Deterministic 1-in-N head sampler.

    ``rate`` is the target sampled fraction; the sampler fires on the
    first call of every ``round(1/rate)``-call period, so a load run of
    K requests samples ``~K*rate`` of them *deterministically* — no RNG,
    so benchmark overhead comparisons are exactly repeatable.
    """

    __slots__ = ("rate", "period", "_calls", "_lock")

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sample rate must be within [0, 1]")
        self.rate = rate
        self.period = 0 if rate <= 0.0 else max(1, round(1.0 / rate))
        self._calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> bool:
        if self.period == 0:
            return False
        with self._lock:
            hit = (self._calls % self.period) == 0
            self._calls += 1
        return hit


class RequestTrace:
    """One request's phase timeline; mutated under the store's lock."""

    __slots__ = (
        "trace_id", "player", "started_at", "t0", "last_mark",
        "segments", "attributes", "status", "total_s",
    )

    def __init__(
        self, trace_id: str, player: Optional[str], **attributes: Any
    ) -> None:
        self.trace_id = trace_id
        self.player = player
        self.started_at = time.time()
        self.t0 = time.perf_counter()
        self.last_mark = self.t0
        #: ``(phase, start_offset_s, duration_s)`` in mark order
        self.segments: List[tuple] = []
        self.attributes: Dict[str, Any] = dict(attributes)
        self.status: Optional[str] = None  # None while open
        self.total_s: Optional[float] = None

    def mark(self, phase: str, at: Optional[float] = None) -> float:
        """Close the interval since the last mark as ``phase``."""
        now = time.perf_counter() if at is None else at
        duration = max(0.0, now - self.last_mark)
        self.segments.append((phase, self.last_mark - self.t0, duration))
        self.last_mark = now
        return duration

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for phase, _start, duration in self.segments:
            totals[phase] = totals.get(phase, 0.0) + duration
        return totals

    def timeline(self) -> Dict[str, Any]:
        """The JSON shape ``/trace/<id>`` serves and the CLI renders."""
        return {
            "trace_id": self.trace_id,
            "player": self.player,
            "status": self.status or "open",
            "started_at": self.started_at,
            "total_s": (
                self.total_s if self.total_s is not None
                else self.last_mark - self.t0
            ),
            "phases": [
                {"phase": phase, "start_s": start, "duration_s": duration}
                for phase, start, duration in self.segments
            ],
            "phase_totals": self.phase_totals(),
            "attributes": dict(self.attributes),
        }


class TraceStore:
    """Bounded, thread-safe home of open and recently finished traces.

    Both tables are bounded: an *open* trace evicted by overflow is an
    orphan (its request outlived the store's memory of it — counted in
    ``repro_trace_orphaned_total``, the quantity the SLO pins to zero),
    while finished traces simply age out oldest-first.
    """

    def __init__(self, max_open: int = 1024, max_finished: int = 256) -> None:
        if max_open < 1 or max_finished < 1:
            raise ValueError("store bounds must be >= 1")
        self.max_open = max_open
        self.max_finished = max_finished
        self._open: "OrderedDict[str, RequestTrace]" = OrderedDict()
        self._finished: "OrderedDict[str, RequestTrace]" = OrderedDict()
        self._lock = threading.Lock()

    # -- producers -----------------------------------------------------
    def start(
        self, trace_id: str, player: Optional[str] = None, **attributes: Any
    ) -> bool:
        """Open a trace; False when recording is off or the id is taken."""
        if not _metrics.enabled() or not trace_id:
            return False
        with self._lock:
            if trace_id in self._open or trace_id in self._finished:
                return False
            while len(self._open) >= self.max_open:
                old_id, old = self._open.popitem(last=False)
                old.status = "orphaned"
                self._orphan_locked(old_id, old)
            self._open[trace_id] = RequestTrace(trace_id, player, **attributes)
            _M_OPEN.set(len(self._open))
        return True

    def mark(self, trace_id: Optional[str], phase: str) -> None:
        """Attribute the time since the trace's last mark to ``phase``."""
        if not trace_id:
            return
        with self._lock:
            tr = self._open.get(trace_id)
            if tr is None:
                return
            duration = tr.mark(phase)
        _M_PHASE.observe(duration, phase=phase)

    def annotate(self, trace_id: Optional[str], **attributes: Any) -> None:
        if not trace_id:
            return
        with self._lock:
            tr = self._open.get(trace_id)
            if tr is not None:
                tr.attributes.update(attributes)

    def increment(
        self, trace_id: Optional[str], key: str, amount: int = 1
    ) -> None:
        """Bump a numeric attribute (e.g. live INPUT ops absorbed)."""
        if not trace_id:
            return
        with self._lock:
            tr = self._open.get(trace_id)
            if tr is not None:
                tr.attributes[key] = int(tr.attributes.get(key, 0)) + amount

    def finish(
        self, trace_id: Optional[str], status: str = "ok"
    ) -> Optional[RequestTrace]:
        """Close a trace; idempotent (a second finish is a no-op)."""
        if not trace_id:
            return None
        with self._lock:
            tr = self._open.pop(trace_id, None)
            if tr is None:
                return None
            tr.status = status
            tr.total_s = tr.last_mark - tr.t0
            self._retain_finished_locked(trace_id, tr)
            _M_OPEN.set(len(self._open))
        _M_REQUESTS.inc(status=status)
        return tr

    def abandon(self, trace_id: Optional[str]) -> None:
        """Give up on an open trace (its request died mid-pipeline)."""
        if not trace_id:
            return
        with self._lock:
            tr = self._open.pop(trace_id, None)
            if tr is None:
                return
            tr.status = "orphaned"
            self._orphan_locked(trace_id, tr)
            _M_OPEN.set(len(self._open))

    def _orphan_locked(self, trace_id: str, tr: RequestTrace) -> None:
        tr.total_s = tr.last_mark - tr.t0
        self._retain_finished_locked(trace_id, tr)
        _M_ORPHANED.inc()

    def _retain_finished_locked(self, trace_id: str, tr: RequestTrace) -> None:
        self._finished[trace_id] = tr
        self._finished.move_to_end(trace_id)
        while len(self._finished) > self.max_finished:
            self._finished.popitem(last=False)

    # -- consumers -----------------------------------------------------
    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The timeline dict of one open or finished trace, else None."""
        with self._lock:
            tr = self._open.get(trace_id) or self._finished.get(trace_id)
            return tr.timeline() if tr is not None else None

    def finished_ids(self) -> List[str]:
        """Finished trace ids, oldest first."""
        with self._lock:
            return list(self._finished)

    def latest(self) -> Optional[str]:
        """The most recently finished trace id (None when empty)."""
        with self._lock:
            return next(reversed(self._finished), None)

    @property
    def open_count(self) -> int:
        return len(self._open)

    @property
    def finished_count(self) -> int:
        return len(self._finished)

    def clear(self) -> None:
        """Drop every trace, open or finished (``obs.reset()``).

        Deliberate teardown, not loss: open traces dropped here are
        *not* counted as orphans — the whole observability state is
        being discarded, metrics included.
        """
        with self._lock:
            self._open.clear()
            self._finished.clear()
            _M_OPEN.set(0)


#: the process-global store every layer marks into
STORE = TraceStore()


def get_store() -> TraceStore:
    """The process-global trace store."""
    return STORE
