"""Process-global metrics registry: counters, gauges, histogram timers.

The VGBL runtime is instrumented at its hot paths — event dispatch,
scenario transitions, streaming, the segment cache, parallel encoding —
through this module.  Design constraints, in priority order:

1. **Zero cost when disabled.**  Instrumentation is off by default; the
   module-level :data:`_ENABLED` flag gates every recording method with a
   single boolean check, and timing helpers return a shared no-op
   context manager so call sites never take a clock sample.  Enable with
   :func:`enable` or the ``REPRO_OBS=1`` environment variable.
2. **No dependencies.**  Pure stdlib; the registry is a plain process
   global (one runtime process = one metrics scope, like a Prometheus
   client default registry).
3. **Labeled series.**  Every metric holds one series per label set
   (``counter.inc(policy="lru")``), keyed by the sorted label items, so
   exports carry the same dimensional structure real collectors expect.

The registry only *collects*; rendering lives in
:mod:`repro.obs.export` and tracing in :mod:`repro.obs.tracing`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "TimeSeriesRing",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_registry",
    "get_ring",
    "histogram",
    "reset",
    "set_enabled",
    "snapshot",
]


class MetricError(ValueError):
    """Raised on invalid metric definitions or type clashes."""


#: Module-level master switch.  Checked first in every recording method:
#: when False, instrumented code paths reduce to one attribute load and
#: one boolean test.
_ENABLED: bool = os.environ.get("REPRO_OBS", "").strip().lower() in (
    "1",
    "true",
    "on",
    "yes",
)


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Turn recording on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(flag)


def enable() -> None:
    """Turn recording on (equivalent to ``REPRO_OBS=1``)."""
    set_enabled(True)


def disable() -> None:
    """Turn recording off; already-collected series are kept."""
    set_enabled(False)


#: Latency-oriented default histogram buckets (seconds, upper bounds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Normalise a label dict to a hashable, sorted key of strings."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _NullTimer:
    """Shared no-op context manager returned by timers when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Metric:
    """Common base: a named metric holding labeled series."""

    kind = "untyped"

    __slots__ = ("name", "help", "_series", "_lock")

    def __init__(self, name: str, help_text: str = "") -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        if name[0].isdigit():
            raise MetricError(f"metric name must not start with a digit: {name!r}")
        self.name = name
        self.help = help_text
        self._series: Dict[LabelKey, Any] = {}
        self._lock = threading.Lock()

    def clear(self) -> None:
        """Drop all collected series (the definition survives)."""
        with self._lock:
            self._series.clear()

    def series(self) -> List[Tuple[LabelKey, Any]]:
        """Stable-ordered (label_key, value) pairs."""
        with self._lock:
            return sorted(self._series.items())


class Counter(_Metric):
    """Monotonically increasing count (events, bytes, errors)."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if not _ENABLED:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labeled series (0.0 if never touched)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over all labeled series."""
        with self._lock:
            return sum(self._series.values())


class Gauge(_Metric):
    """A value that can go up and down (active sessions, utilization)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: Any) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not _ENABLED:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels), 0.0)


class _HistogramSeries:
    """One labeled series: cumulative-style bucket counts + sum + count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Distribution of observations over fixed upper-bound buckets.

    ``observe()`` files a value into the first bucket whose upper bound
    is >= the value (the last, implicit bucket is +Inf); ``time()``
    returns a context manager that observes elapsed wall seconds — or a
    shared no-op when recording is disabled, so the clock is never read.
    """

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        if not _ENABLED:
            return
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            idx = len(self.buckets)  # +Inf by default
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            series.counts[idx] += 1
            series.sum += value
            series.count += 1

    def time(self, **labels: Any) -> "_Timer | _NullTimer":
        """Context manager observing elapsed seconds; no-op when disabled."""
        if not _ENABLED:
            return _NULL_TIMER
        return _Timer(self, labels)

    def count_of(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum_of(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0


class _Timer:
    """Times a ``with`` block into a histogram (exception-safe)."""

    __slots__ = ("_hist", "_labels", "_start")

    def __init__(self, hist: Histogram, labels: Dict[str, Any]) -> None:
        self._hist = hist
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._hist.observe(time.perf_counter() - self._start, **self._labels)


class MetricsRegistry:
    """Get-or-create home for all metrics of one process.

    ``counter``/``gauge``/``histogram`` are idempotent by name: the
    first call defines the metric, later calls return the same object
    (type clashes raise :class:`MetricError`).  That lets every
    instrumented module declare its handles at import time without a
    central manifest.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, help_text: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Clear all collected series; definitions stay registered."""
        for metric in self._metrics.values():
            metric.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data dump of every metric, for export/serialisation.

        The structure is stable and JSON-safe::

            {"enabled": bool,
             "metrics": [
               {"name": ..., "kind": "counter"|"gauge", "help": ...,
                "series": [{"labels": {...}, "value": float}]},
               {"name": ..., "kind": "histogram", "help": ...,
                "buckets": [...],
                "series": [{"labels": {...}, "counts": [...],
                            "sum": float, "count": int}]},
             ]}
        """
        out: List[Dict[str, Any]] = []
        for metric in self:
            entry: Dict[str, Any] = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["series"] = [
                    {
                        "labels": dict(key),
                        "counts": list(series.counts),
                        "sum": series.sum,
                        "count": series.count,
                    }
                    for key, series in metric.series()
                ]
            else:
                entry["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in metric.series()
                ]
            out.append(entry)
        return {"enabled": _ENABLED, "metrics": out}


class TimeSeriesRing:
    """Bounded history of scalar metric samples — the dashboard's memory.

    A snapshot is a point in time; ``repro top`` sparklines and the
    telemetry endpoint's ``/history`` route need *series*.  The ring
    reduces each metric of a snapshot to one scalar (counters/gauges:
    sum over labeled series; histograms: total observation count),
    stamps it with a wall-clock time, and keeps the newest ``capacity``
    samples.  Sampling cadence is the caller's business (the gateway's
    telemetry server ticks it; ``repro top`` samples once per frame).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise MetricError("ring capacity must be >= 1")
        self.capacity = capacity
        self._samples: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    @staticmethod
    def reduce(snap: Dict[str, Any]) -> Dict[str, float]:
        """Collapse one registry snapshot to ``{metric_name: scalar}``."""
        values: Dict[str, float] = {}
        for metric in snap.get("metrics", []):
            series = metric.get("series", [])
            if metric.get("kind") == "histogram":
                values[metric["name"]] = float(
                    sum(s.get("count", 0) for s in series)
                )
            else:
                values[metric["name"]] = float(
                    sum(s.get("value", 0.0) for s in series)
                )
        return values

    def sample(
        self,
        snap: Optional[Dict[str, Any]] = None,
        at: Optional[float] = None,
    ) -> Dict[str, float]:
        """Append one sample (of ``snap``, default: the global registry)."""
        if snap is None:
            snap = REGISTRY.snapshot()
        values = self.reduce(snap)
        entry = {"t": time.time() if at is None else at, "values": values}
        with self._lock:
            self._samples.append(entry)
            if len(self._samples) > self.capacity:
                del self._samples[: len(self._samples) - self.capacity]
        return values

    def samples(self) -> List[Dict[str, Any]]:
        """All retained samples, oldest first (shallow copies)."""
        with self._lock:
            return [
                {"t": s["t"], "values": dict(s["values"])}
                for s in self._samples
            ]

    def series(self, name: str) -> List[Tuple[float, float]]:
        """``(t, value)`` history of one metric (0.0 where absent)."""
        with self._lock:
            return [
                (s["t"], float(s["values"].get(name, 0.0)))
                for s in self._samples
            ]

    def names(self) -> List[str]:
        """Every metric name seen in any retained sample, sorted."""
        seen: set = set()
        with self._lock:
            for s in self._samples:
                seen.update(s["values"])
        return sorted(seen)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    def __len__(self) -> int:
        return len(self._samples)


#: The process-global registry every instrumented module uses.
REGISTRY = MetricsRegistry()

#: The process-global sample history (``obs.reset()`` clears it).
RING = TimeSeriesRing()


def get_ring() -> TimeSeriesRing:
    """The process-global time-series ring."""
    return RING


def get_registry() -> MetricsRegistry:
    """The process-global registry."""
    return REGISTRY


def counter(name: str, help_text: str = "") -> Counter:
    """Get-or-create a counter on the global registry."""
    return REGISTRY.counter(name, help_text)


def gauge(name: str, help_text: str = "") -> Gauge:
    """Get-or-create a gauge on the global registry."""
    return REGISTRY.gauge(name, help_text)


def histogram(
    name: str, help_text: str = "", buckets: Optional[Sequence[float]] = None
) -> Histogram:
    """Get-or-create a histogram on the global registry."""
    return REGISTRY.histogram(name, help_text, buckets=buckets)


def snapshot() -> Dict[str, Any]:
    """Snapshot the global registry."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Reset all series on the global registry."""
    REGISTRY.reset()
