"""Nestable wall-time spans for the VGBL runtime.

Where :mod:`repro.obs.metrics` answers "how many / how fast on
average", spans answer "where did *this* request spend its time": a
span records wall-clock start/end, arbitrary attributes, and its
parent/child structure, so one ``handle_input`` call can be broken into
gesture interpretation, binding matching and action execution.

Usage — context manager or decorator::

    tracer = get_tracer()
    with tracer.span("dispatch", gesture="click") as sp:
        ...
        sp.set_attribute("bindings", 2)

    @trace("encode_segment")
    def encode(...): ...

Spans obey the same module-level enabled flag as metrics: when
disabled, ``span()`` returns a shared no-op object and never reads the
clock.  Exception safety: the span's end time is stamped in ``finally``
and a raising body marks ``status="error"`` with the exception type —
the exception itself always propagates.

Finished *root* spans accumulate on the tracer (children hang off their
parents) and export as JSON via :meth:`Tracer.to_json`.
"""

from __future__ import annotations

import contextvars
import json
import random
import time
from typing import Any, Dict, Iterator, List, Optional

from . import metrics as _metrics

__all__ = ["Span", "Tracer", "get_tracer", "new_id", "span", "trace"]

_id_rng = random.Random()


def new_id() -> str:
    """A 64-bit hex correlation id (trace and span ids)."""
    return f"{_id_rng.getrandbits(64):016x}"


class Span:
    """One timed operation; may nest child spans.

    Every span carries a fresh ``span_id``; ``trace_id`` is assigned when
    the tracer opens it (inherited from the parent span, or freshly
    generated for roots) so all spans of one request share it — the
    structured logger stamps both onto records emitted inside the span.
    """

    __slots__ = (
        "name", "start", "end", "attributes", "children", "status", "error",
        "span_id", "trace_id", "parent_id",
    )

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self.span_id = new_id()
        self.trace_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (to now if the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_s": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, {self.status})"


class _NullSpan:
    """Shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()
    name = ""
    status = "ok"
    span_id = None
    trace_id = None
    parent_id = None

    def set_attribute(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager pushing/popping one live span."""

    __slots__ = ("_tracer", "_span", "_token", "_generation")

    def __init__(self, tracer: "Tracer", span_obj: Span) -> None:
        self._tracer = tracer
        self._span = span_obj
        self._token: Optional[contextvars.Token] = None
        self._generation = 0

    def __enter__(self) -> Span:
        self._token = self._tracer._push(self._span)
        self._generation = self._tracer._generation
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        try:
            self._span.end = time.perf_counter()
            if exc_type is not None:
                self._span.status = "error"
                self._span.error = f"{exc_type.__name__}: {exc}"
        finally:
            assert self._token is not None
            self._tracer._pop(self._span, self._token, self._generation)
        return None  # never swallow the exception


class _NullSpanContext:
    """Shared no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_CONTEXT = _NullSpanContext()


class Tracer:
    """Collects span trees; one per process is the normal arrangement.

    The current span is tracked with a :mod:`contextvars` variable so
    nesting composes correctly across threads (and would across async
    tasks); finished roots accumulate in :attr:`finished` up to
    ``max_finished`` (oldest dropped first) so long cohort simulations
    cannot grow memory without bound.
    """

    def __init__(self, max_finished: int = 1000) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.max_finished = max_finished
        self.finished: List[Span] = []
        self.dropped = 0
        self._current: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
            "repro_obs_current_span", default=None
        )
        #: bumped by reset(); spans opened before a reset unwind inertly
        self._generation = 0

    # -- internal plumbing used by _SpanContext ------------------------
    def _push(self, span_obj: Span) -> contextvars.Token:
        parent = self._current.get()
        if parent is not None:
            parent.children.append(span_obj)
            span_obj.trace_id = parent.trace_id
            span_obj.parent_id = parent.span_id
        else:
            span_obj.trace_id = new_id()
        return self._current.set(span_obj)

    def _pop(self, span_obj: Span, token: contextvars.Token, generation: int) -> None:
        if generation != self._generation:
            # The tracer was reset while this span was open: do not
            # restore a pre-reset parent or record the stale span.
            self._current.set(None)
            return
        self._current.reset(token)
        if self._current.get() is None:  # span_obj was a root
            self.finished.append(span_obj)
            if len(self.finished) > self.max_finished:
                overflow = len(self.finished) - self.max_finished
                del self.finished[:overflow]
                self.dropped += overflow

    # -- public API ----------------------------------------------------
    def span(self, name: str, **attributes: Any) -> "_SpanContext | _NullSpanContext":
        """Open a span as a context manager (no-op when disabled)."""
        if not _metrics.enabled():
            return _NULL_CONTEXT
        return _SpanContext(self, Span(name, attributes))

    def current(self) -> Optional[Span]:
        """The innermost live span, or None."""
        return self._current.get()

    def reset(self) -> None:
        """Drop all finished spans and clear the active-span state.

        Clearing the context variable means a span that was live when
        reset was called no longer leaks its ids onto later log records;
        its still-open context manager unwinds harmlessly on exit.
        """
        self.finished.clear()
        self.dropped = 0
        self._generation += 1
        self._current.set(None)

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first walk of every finished span (roots and children)."""
        stack = list(reversed(self.finished))
        while stack:
            s = stack.pop()
            yield s
            stack.extend(reversed(s.children))

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.finished]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Finished root spans (with children) as a JSON array."""
        return json.dumps(self.to_dicts(), indent=indent, default=str)


#: The process-global tracer used by instrumented modules.
TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return TRACER


def span(name: str, **attributes: Any) -> "_SpanContext | _NullSpanContext":
    """Open a span on the global tracer."""
    return TRACER.span(name, **attributes)


def trace(name: Optional[str] = None):
    """Decorator tracing every call of the wrapped function.

    ``@trace()`` uses the function's qualified name; ``@trace("x")``
    names the span explicitly.  Disabled mode adds one boolean check
    per call.
    """

    def decorate(fn):
        span_name = name or fn.__qualname__

        def wrapper(*args: Any, **kwargs: Any):
            if not _metrics.enabled():
                return fn(*args, **kwargs)
            with TRACER.span(span_name):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
