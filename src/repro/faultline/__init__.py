"""Deterministic fault injection for the gateway -> serve -> persist stack.

The production layers carry tiny hook points (``if faultline.ACTIVE:``)
at the places real deployments fail: accepting a connection, reading a
frame, writing a WAL frame, fsyncing, ticking a shard, admitting a
session.  With no plan installed the hooks cost one module-attribute
load and a falsy branch — the same zero-when-off contract the obs
layer makes, held to numbers by ``benchmarks/bench_faultline_overhead``.

Installing a compiled :class:`~repro.faultline.plan.FaultPlan` arms an
:class:`Injector`: every hook reports a *hit*, hits are counted per
site under a lock, and when a hit matches an armed trigger the hook
receives a :class:`FaultAction` telling it what to break (the hook
owns the breakage — sleeping on a shard thread, tearing a frame,
aborting a socket — because only it knows how).  Every fired fault is
counted in ``repro_fault_injected_total`` (labelled by site and kind),
logged as a structured ``faultline.injected`` event, and annotated
onto any request traces the hook had in scope, so injected chaos is
first-class visible in ``/metrics`` and trace waterfalls.

The module is intentionally process-global, like the metrics registry:
one plan at a time, installed by the chaos runner or a test and
uninstalled in a ``finally``.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs.attribution import get_store as _trace_store
from .plan import (
    SITES,
    ArmedFault,
    CompiledPlan,
    FaultPlan,
    FaultSpec,
    builtin_plans,
)

__all__ = [
    "ACTIVE",
    "FaultAction",
    "FaultPlan",
    "FaultSpec",
    "CompiledPlan",
    "Injector",
    "SITES",
    "builtin_plans",
    "current",
    "fire",
    "install",
    "uninstall",
]

#: the zero-overhead gate every hook checks before anything else; True
#: exactly while an injector is installed
ACTIVE = False

_M_INJECTED = _obs.counter(
    "repro_fault_injected_total",
    "Faults injected by the installed faultline plan, by site and kind",
)

_LOG = _obslog.get_logger("faultline")

_LOCK = threading.Lock()
_INJECTOR: Optional["Injector"] = None


class FaultAction:
    """What a hook should break, handed back when its hit fires."""

    __slots__ = ("site", "kind", "seconds", "fraction", "index", "hit")

    def __init__(self, armed: ArmedFault, hit: int) -> None:
        self.site = armed.spec.site
        self.kind = armed.spec.kind
        self.seconds = armed.spec.seconds
        self.fraction = armed.spec.fraction
        self.index = armed.index
        self.hit = hit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultAction({self.site}:{self.kind} hit={self.hit} "
            f"spec={self.index})"
        )


class Injector:
    """Hit counters + armed triggers for one compiled plan."""

    def __init__(self, compiled: CompiledPlan) -> None:
        self.compiled = compiled
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._fired: List[int] = [0] * len(compiled.armed)

    # -- the hook-facing half -------------------------------------------
    def fire(
        self,
        site: str,
        traces: Optional[Iterable[Optional[str]]] = None,
        **ctx: object,
    ) -> Optional[FaultAction]:
        """Report one hit at ``site``; a FaultAction when a trigger matches.

        ``traces`` (request-trace ids the hook has in scope) are
        annotated with the fault so it shows up in the waterfall;
        remaining ``ctx`` keys ride the structured log event.
        """
        action: Optional[FaultAction] = None
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for armed in self.compiled.by_site.get(site, ()):
                if armed.first_hit <= hit <= armed.last_hit:
                    self._fired[armed.index] += 1
                    action = FaultAction(armed, hit)
                    break
        if action is None:
            return None
        _M_INJECTED.inc(site=site, kind=action.kind)
        _LOG.warning(
            "faultline.injected", plan=self.compiled.name, site=site,
            kind=action.kind, hit=action.hit, spec=action.index, **ctx,
        )
        if traces:
            store = _trace_store()
            for trace_id in traces:
                if trace_id:
                    store.annotate(
                        trace_id, fault=f"{site}:{action.kind}",
                        fault_hit=action.hit,
                    )
        return action

    # -- the audit-facing half ------------------------------------------
    @property
    def hits(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._hits)

    @property
    def injected_total(self) -> int:
        with self._lock:
            return sum(self._fired)

    def report(self) -> List[Dict[str, object]]:
        """Scheduled-vs-fired audit rows, one per armed spec."""
        with self._lock:
            fired = list(self._fired)
        rows = []
        for armed in self.compiled.armed:
            row = armed.describe()
            row["fired"] = fired[armed.index]
            rows.append(row)
        return rows

    def all_fired(self) -> bool:
        """True when every armed fault fired exactly its scheduled count."""
        with self._lock:
            return all(
                self._fired[a.index] == a.spec.times
                for a in self.compiled.armed
            )


def install(plan: "FaultPlan | CompiledPlan", seed: Optional[int] = None) -> Injector:
    """Arm a plan process-wide; returns the injector for auditing."""
    global ACTIVE, _INJECTOR
    compiled = plan.compile(seed) if isinstance(plan, FaultPlan) else plan
    with _LOCK:
        if _INJECTOR is not None:
            raise RuntimeError(
                f"faultline plan {_INJECTOR.compiled.name!r} is already "
                "installed; uninstall() it first"
            )
        _INJECTOR = Injector(compiled)
        ACTIVE = True
    _LOG.info("faultline.installed", plan=compiled.name, seed=compiled.seed,
              faults=len(compiled.armed))
    return _INJECTOR


def uninstall() -> Optional[Injector]:
    """Disarm; returns the injector that was installed (idempotent)."""
    global ACTIVE, _INJECTOR
    with _LOCK:
        injector, _INJECTOR = _INJECTOR, None
        ACTIVE = False
    if injector is not None:
        _LOG.info("faultline.uninstalled", plan=injector.compiled.name,
                  injected=injector.injected_total)
    return injector


def current() -> Optional[Injector]:
    return _INJECTOR


def fire(
    site: str,
    traces: Optional[Iterable[Optional[str]]] = None,
    **ctx: object,
) -> Optional[FaultAction]:
    """The hook entry point: delegate to the installed injector.

    Hooks only call this behind an ``if ACTIVE:`` check, but an
    uninstall can race the check — a missing injector is a no-op, never
    an error.
    """
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.fire(site, traces=traces, **ctx)
