"""Chaos soak: a full-stack load run under a fault plan, then the audit.

``run_chaos`` is the harness behind ``repro chaos`` and the soak test
suite.  One run is the whole story the fault-injection subsystem
exists to tell:

1. **Arm** a compiled plan (site/kind/hit schedule, seeded).
2. **Soak**: start a persisted :class:`SessionManager` behind a real
   TCP :class:`GatewayServer`, drive cohort-scripted sessions through a
   :class:`GatewayClient` that survives the injected disconnects
   (reconnect + resume, `duplicate` treated as an ack that got lost on
   the wire), and wait for a fraction of the ENDs — the rest stay
   mid-flight.
3. **Kill**: discard-shutdown the gateway, exactly like the existing
   kill-and-recover tests.  Injected torn writes have already left a
   disorderly tail on disk.
4. **Audit**: recover every shard journal and hold the run to the
   durability contract — every rebuilt session's SHA-256 state digest
   must equal an independent reference replay of its committed ops,
   every END digest the client observed must equal a full-script
   replay, no record may be orphaned, and every armed fault must have
   fired exactly its scheduled count.

The :class:`ChaosReport` is plain data (JSON-able) so CI can upload it
as the chaos-smoke artifact.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs import metrics as _obs
from ..persist import PersistenceConfig, recover_shard, state_digest
from ..persist.records import apply_scripted_op
from ..serve import ServeConfig, SessionManager
from ..video.player import SimulatedClock
from . import install, uninstall
from .plan import CompiledPlan, FaultPlan, builtin_plans

__all__ = ["ChaosReport", "reference_digest", "run_chaos"]


@dataclass
class ChaosReport:
    """Everything one chaos run proved (or failed to prove)."""

    plan: str
    seed: int
    shards: int
    sessions: int
    submitted: int
    submit_failures: int
    completed_ends: int
    failed_ends: int
    recovered_live: int
    recovered_ended: int
    torn_records: int
    orphan_records: int
    digests_checked: int
    digest_mismatches: List[str] = field(default_factory=list)
    faults: List[Dict[str, Any]] = field(default_factory=list)
    injected_total: int = 0
    all_faults_fired: bool = False
    durability_timeouts: int = 0
    duration_s: float = 0.0

    @property
    def bit_identical(self) -> bool:
        """Every digest audited matched its reference replay."""
        return self.digests_checked > 0 and not self.digest_mismatches

    @property
    def ok(self) -> bool:
        """The gate ``repro chaos`` exits zero on."""
        return (
            self.bit_identical
            and self.all_faults_fired
            and self.orphan_records == 0
            and self.submit_failures == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "shards": self.shards,
            "sessions": self.sessions,
            "submitted": self.submitted,
            "submit_failures": self.submit_failures,
            "completed_ends": self.completed_ends,
            "failed_ends": self.failed_ends,
            "recovered_live": self.recovered_live,
            "recovered_ended": self.recovered_ended,
            "torn_records": self.torn_records,
            "orphan_records": self.orphan_records,
            "digests_checked": self.digests_checked,
            "digest_mismatches": list(self.digest_mismatches),
            "bit_identical": self.bit_identical,
            "faults": list(self.faults),
            "injected_total": self.injected_total,
            "all_faults_fired": self.all_faults_fired,
            "durability_timeouts": self.durability_timeouts,
            "ok": self.ok,
            "duration_s": round(self.duration_s, 3),
        }


def reference_digest(game: Any, ops: List[Any], dt: float, upto: int) -> str:
    """Replay ``ops[:upto]`` on a fresh engine; the bit-identity oracle.

    Same simulated clock and the same shared step function the serving
    layer and recovery both use — independent of the WAL entirely.
    """
    engine = game.new_engine(clock=SimulatedClock(0.0), with_video=False)
    engine.start()
    for op in ops[:upto]:
        apply_scripted_op(engine, op, dt)
    return state_digest(engine.state)


async def _await_end(
    client: Any, pid: str, timeout_s: float
) -> Optional[Dict[str, Any]]:
    """wait_end that rides out one injected disconnect."""
    for attempt in (0, 1):
        try:
            return await client.wait_end(pid, timeout=timeout_s)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            if attempt:
                return None
            try:
                await client.reconnect()
            except ConnectionError:
                return None
    return None


async def _drive(
    host: str,
    port: int,
    assignments: List[Tuple[str, Any]],
    wait_for: int,
    timeout_s: float,
    trace_sample: float,
) -> Tuple[List[str], int, Dict[str, Optional[str]], int]:
    """Submit every assignment, await ``wait_for`` ENDs, stay alive
    through injected drops.  Returns (submitted pids, submit failures,
    pid -> END digest, failed ENDs)."""
    from ..gateway.client import (
        GatewayClient,
        GatewayError,
        GatewayRejected,
    )

    client = GatewayClient(
        host, port, request_timeout_s=timeout_s, trace_sample=trace_sample,
    )
    await client.connect()
    submitted: List[str] = []
    submit_failures = 0
    for pid, script in assignments:
        ok = False
        for _attempt in range(4):
            try:
                await client.submit(pid, script.ops, dt=script.dt)
                ok = True
                break
            except GatewayRejected:
                await asyncio.sleep(0.02)
            except GatewayError as exc:
                if exc.code == "duplicate":
                    # the SUBMIT landed; only its ack died with the
                    # faulted connection
                    ok = True
                break
            except (ConnectionError, OSError, asyncio.TimeoutError):
                try:
                    await client.reconnect()
                except ConnectionError:
                    await asyncio.sleep(0.05)
        if ok:
            submitted.append(pid)
        else:
            submit_failures += 1
    ends: Dict[str, Optional[str]] = {}
    failed_ends = 0
    for pid in submitted:
        if len(ends) + failed_ends >= wait_for:
            break
        end = await _await_end(client, pid, timeout_s)
        if end is None or end.get("failed"):
            failed_ends += 1
        else:
            ends[pid] = end.get("digest")
    try:
        await client.close()
    except (ConnectionError, OSError):
        pass
    return submitted, submit_failures, ends, failed_ends


def run_chaos(
    plan: Union[str, FaultPlan, CompiledPlan],
    *,
    seed: Optional[int] = None,
    sessions: int = 24,
    wait_for: Optional[int] = None,
    n_shards: int = 2,
    persist_dir: Optional[Union[str, Path]] = None,
    game: Any = None,
    scripts: Optional[List[Any]] = None,
    tick_interval_s: float = 0.005,
    max_steps_per_tick: int = 8,
    group_window_s: float = 0.004,
    snapshot_every: int = 0,
    durable_wait_s: float = 1.0,
    trace_sample: float = 0.0,
    timeout_s: float = 60.0,
) -> ChaosReport:
    """One soak-kill-recover-audit cycle under a fault plan.

    ``plan`` is a built-in plan name, a :class:`FaultPlan`, or an
    already-compiled plan.  ``wait_for`` ENDs are awaited before the
    kill (default: half the sessions), so the rest die mid-flight and
    recovery has live sessions to rebuild.  With ``persist_dir`` unset
    the WAL lives in a temp directory that is removed afterwards.
    """
    if isinstance(plan, str):
        plans = builtin_plans()
        if plan not in plans:
            raise ValueError(
                f"unknown plan {plan!r} (built-ins: {sorted(plans)})"
            )
        plan = plans[plan]
    compiled = plan.compile(seed) if isinstance(plan, FaultPlan) else plan
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    wait_for = max(1, sessions // 2) if wait_for is None else wait_for

    from ..core import fetch_quest_game
    from ..gateway import GatewayServer, GatewayThread
    from ..students import cohort_scripts

    t0 = perf_counter()
    if game is None:
        game = fetch_quest_game(n_quests=2, title="chaos soak").build()
    if scripts is None:
        scripts = cohort_scripts(game, min(8, sessions), seed=compiled.seed)
    assignments = [
        (f"{scripts[k % len(scripts)].player_id}#c{k}",
         scripts[k % len(scripts)])
        for k in range(sessions)
    ]

    tmp = None
    if persist_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        persist_dir = tmp.name
    persistence = PersistenceConfig(
        directory=persist_dir,
        group_window_s=group_window_s,
        snapshot_every=snapshot_every,
    )
    manager = SessionManager(ServeConfig(
        n_shards=n_shards,
        tick_interval_s=tick_interval_s,
        max_steps_per_tick=max_steps_per_tick,
        persistence=persistence,
        durable_wait_s=durable_wait_s,
    ))
    server = GatewayServer(manager, game)
    timeouts_before = _metric_total("repro_persist_durability_timeout_total")

    injector = install(compiled)
    try:
        handle = GatewayThread(server).start()
        try:
            submitted, submit_failures, ends, failed_ends = asyncio.run(
                _drive(handle.host, handle.port, assignments,
                       wait_for, timeout_s, trace_sample)
            )
        finally:
            # the kill: discard everything still in flight (journals
            # close cleanly; injected tears already scarred the log)
            handle.stop(drain=False)
    finally:
        uninstall()

    # -- the audit -------------------------------------------------------
    by_pid = dict(assignments)
    mismatches: List[str] = []
    checked = 0
    recovered_live = recovered_ended = torn = orphans = 0
    for shard in range(n_shards):
        directory = persistence.shard_dir(shard)
        if not directory.is_dir():
            continue
        report = recover_shard(
            directory, game, with_video=False,
            truncate=True, write_snapshots=False,
        )
        recovered_live += len(report.sessions)
        recovered_ended += report.ended_sessions
        torn += report.torn_records
        orphans += report.orphan_records
        for rec in report.sessions:
            checked += 1
            expect = reference_digest(game, rec.ops, rec.dt, rec.cursor)
            if rec.digest != expect:
                mismatches.append(rec.player_id)
    for pid, digest in ends.items():
        script = by_pid.get(pid)
        if script is None or digest is None:
            mismatches.append(pid)
            continue
        checked += 1
        if digest != reference_digest(
            game, script.ops, script.dt, len(script.ops)
        ):
            mismatches.append(pid)
    if tmp is not None:
        tmp.cleanup()

    timeouts_after = _metric_total("repro_persist_durability_timeout_total")
    return ChaosReport(
        plan=compiled.name,
        seed=compiled.seed,
        shards=n_shards,
        sessions=sessions,
        submitted=len(submitted),
        submit_failures=submit_failures,
        completed_ends=len(ends),
        failed_ends=failed_ends,
        recovered_live=recovered_live,
        recovered_ended=recovered_ended,
        torn_records=torn,
        orphan_records=orphans,
        digests_checked=checked,
        digest_mismatches=mismatches,
        faults=injector.report(),
        injected_total=injector.injected_total,
        all_faults_fired=injector.all_fired(),
        durability_timeouts=max(0, timeouts_after - timeouts_before),
        duration_s=perf_counter() - t0,
    )


def _metric_total(name: str) -> int:
    metric = _obs.get_registry().get(name)
    if metric is None:
        return 0
    return int(metric.total())
