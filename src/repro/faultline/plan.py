"""Fault plans: declarative, seeded schedules of injected failures.

A :class:`FaultPlan` names a reproducible failure scenario as data: a
tuple of :class:`FaultSpec` entries, each binding one *site* (a hook
point threaded through the gateway, serve and persist layers) to one
*kind* of fault and a trigger.  Compiling a plan resolves every trigger
to a concrete hit number — specs may pin the hit explicitly (``at=6``:
fire on the sixth time the site is reached) or leave it to the plan's
seed (``at=None`` draws uniformly from ``window``), so the same plan +
seed always tears the same write and drops the same frame, while
different seeds explore different interleavings.

Sites and the fault kinds they accept:

======================  ==================================================
``gateway.accept``      ``drop`` / ``delay`` / ``partition`` a new
                        connection (partition severs every established
                        connection too)
``gateway.frame``       ``drop`` (abort the connection mid-frame-stream,
                        e.g. mid-SUBMIT) / ``delay`` an inbound frame
``wal.write``           ``torn_write`` / ``short_write`` (partial frame
                        reaches the disk, then the device errors) /
                        ``error`` (clean write failure)
``wal.fsync``           ``stall`` (the device blocks for ``seconds``) /
                        ``error`` (fsync raises ``OSError``)
``serve.tick``          ``stall`` a shard thread mid-tick
``serve.admit``         ``skip`` one tick's admissions (queue-pressure
                        spike: arrivals keep queueing, nothing starts)
``repl.link``           ``drop`` (sever one standby's shipping
                        connection) / ``delay`` a shipped batch /
                        ``partition`` (sever every shipping connection
                        at once)
======================  ==================================================

Hit counting is global per site (not per shard/connection) and lives in
the installed injector, so a compiled plan is immutable and reusable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ArmedFault",
    "CompiledPlan",
    "FaultPlan",
    "FaultSpec",
    "SITES",
    "builtin_plans",
]

#: hook sites -> fault kinds each accepts (the single source of truth
#: validation and the docs both lean on)
SITES: Dict[str, Tuple[str, ...]] = {
    "gateway.accept": ("drop", "delay", "partition"),
    "gateway.frame": ("drop", "delay"),
    "wal.write": ("torn_write", "short_write", "error"),
    "wal.fsync": ("stall", "error"),
    "serve.tick": ("stall",),
    "serve.admit": ("skip",),
    "repl.link": ("drop", "delay", "partition"),
}


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault: a site, a kind, and a trigger."""

    site: str
    kind: str
    #: fire on the Nth time the site is reached (1-based); None lets the
    #: plan seed draw the hit from ``window`` at compile time
    at: Optional[int] = 1
    #: inclusive hit range a seeded trigger is drawn from
    window: Tuple[int, int] = (1, 20)
    #: consecutive hits that fire, starting at the trigger hit
    times: int = 1
    #: stall/delay duration
    seconds: float = 0.0
    #: fraction of the frame that reaches the disk on a torn write
    fraction: float = 0.5

    def __post_init__(self) -> None:
        kinds = SITES.get(self.site)
        if kinds is None:
            raise ValueError(
                f"unknown fault site {self.site!r} (know: {sorted(SITES)})"
            )
        if self.kind not in kinds:
            raise ValueError(
                f"site {self.site!r} does not take kind {self.kind!r} "
                f"(accepts: {kinds})"
            )
        if self.at is not None and self.at < 1:
            raise ValueError("at must be >= 1 (hits are 1-based)")
        lo, hi = self.window
        if self.at is None and (lo < 1 or hi < lo):
            raise ValueError("window must be 1 <= lo <= hi")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("fraction must be within (0, 1)")


@dataclass(frozen=True, slots=True)
class ArmedFault:
    """A spec with its trigger resolved: fires on hits [first, last]."""

    index: int
    spec: FaultSpec
    first_hit: int

    @property
    def last_hit(self) -> int:
        return self.first_hit + self.spec.times - 1

    def describe(self) -> Dict[str, object]:
        return {
            "site": self.spec.site,
            "kind": self.spec.kind,
            "at": self.first_hit,
            "times": self.spec.times,
            "seconds": self.spec.seconds,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded failure scenario (immutable plain data)."""

    name: str
    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 2007
    description: str = ""

    def compile(self, seed: Optional[int] = None) -> "CompiledPlan":
        """Resolve every seeded trigger to a concrete hit number.

        Deterministic: the draw for spec *i* is keyed on
        ``(plan name, seed, i)``, so adding a spec never re-rolls the
        earlier ones.
        """
        seed = self.seed if seed is None else seed
        armed: List[ArmedFault] = []
        for i, spec in enumerate(self.specs):
            if spec.at is not None:
                first = spec.at
            else:
                lo, hi = spec.window
                first = random.Random(f"{self.name}:{seed}:{i}").randint(lo, hi)
            armed.append(ArmedFault(index=i, spec=spec, first_hit=first))
        return CompiledPlan(plan=self, seed=seed, armed=tuple(armed))


@dataclass(frozen=True)
class CompiledPlan:
    """A plan with concrete triggers; what the injector arms."""

    plan: FaultPlan
    seed: int
    armed: Tuple[ArmedFault, ...]
    by_site: Dict[str, Tuple[ArmedFault, ...]] = field(init=False)

    def __post_init__(self) -> None:
        grouped: Dict[str, List[ArmedFault]] = {}
        for af in self.armed:
            grouped.setdefault(af.spec.site, []).append(af)
        object.__setattr__(
            self, "by_site", {s: tuple(v) for s, v in grouped.items()}
        )

    @property
    def name(self) -> str:
        return self.plan.name

    def describe(self) -> List[Dict[str, object]]:
        return [af.describe() for af in self.armed]


def builtin_plans() -> Dict[str, FaultPlan]:
    """The named plans ``repro chaos --plan`` and the soak tests use."""
    plans = [
        FaultPlan(
            name="fsync-stall",
            description="the WAL device blocks mid-fsync, twice",
            specs=(
                FaultSpec("wal.fsync", "stall", at=None, window=(3, 8),
                          times=2, seconds=0.05),
            ),
        ),
        FaultPlan(
            name="fsync-timeout",
            description="one very long fsync stall: group commits (and "
                        "any traced END's durability wait) outlive the "
                        "durable-wait budget",
            specs=(
                FaultSpec("wal.fsync", "stall", at=None, window=(2, 4),
                          seconds=0.6),
            ),
        ),
        FaultPlan(
            name="torn-tail",
            description="a WAL write tears mid-frame and the device dies",
            specs=(
                FaultSpec("wal.write", "torn_write", at=None,
                          window=(20, 40), fraction=0.6),
            ),
        ),
        FaultPlan(
            name="disconnect-mid-submit",
            description="the client's connection drops inside its "
                        "SUBMIT stream",
            specs=(
                FaultSpec("gateway.frame", "drop", at=None, window=(3, 8)),
            ),
        ),
        FaultPlan(
            name="repl-kill-primary",
            description="the shipping link jitters (one delayed batch, "
                        "one severed connection forcing a reconnect), "
                        "then the primary is killed and the standby "
                        "promoted — the replication chaos scenario",
            specs=(
                FaultSpec("repl.link", "delay", at=None, window=(2, 6),
                          seconds=0.02),
                FaultSpec("repl.link", "drop", at=None, window=(8, 16)),
            ),
        ),
        FaultPlan(
            name="repl-quorum-partition",
            description="quorum commit under a jittery shipping link: "
                        "one delayed batch, then one standby's shipping "
                        "connection severed mid-burst — the cluster "
                        "chaos scenario (the harness also hard-kills a "
                        "quorum member and then the primary)",
            specs=(
                FaultSpec("repl.link", "delay", at=None, window=(2, 6),
                          seconds=0.02),
                FaultSpec("repl.link", "drop", at=None, window=(10, 20)),
            ),
        ),
        FaultPlan(
            name="ci-smoke",
            description="one fault per site, all reachable in a short "
                        "soak: the CI chaos-smoke plan",
            specs=(
                FaultSpec("gateway.accept", "delay", at=1, seconds=0.005),
                FaultSpec("gateway.frame", "drop", at=None, window=(3, 8)),
                FaultSpec("wal.fsync", "stall", at=None, window=(3, 8),
                          seconds=0.02),
                FaultSpec("wal.write", "torn_write", at=None,
                          window=(20, 40), fraction=0.6),
                FaultSpec("serve.tick", "stall", at=None, window=(5, 25),
                          seconds=0.01),
                FaultSpec("serve.admit", "skip", at=None, window=(2, 10)),
            ),
        ),
    ]
    return {p.name: p for p in plans}
