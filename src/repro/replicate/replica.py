"""The standby side: follow the stream, mirror the log, mirror the state.

A :class:`StandbyReplica` keeps one connection per shard to a
:class:`~repro.replicate.source.ReplicationSource` and maintains two
things in lockstep:

* **A durable copy of the log.**  Every shipped record is re-framed
  with the *same* CRC32 framing and the *same* LSN stamp the primary
  used, appended to ``wal-00000001.log`` under the standby's own
  ``shard-NN/`` directory, and fsynced at each COMMIT watermark — so
  the standby's directory is, byte-for-byte in record content, a WAL
  the ordinary recovery path can adopt at promotion.
* **A warm in-memory mirror.**  Committed records are applied through
  the shared :func:`~repro.persist.records.apply_scripted_op` step
  semantics on engines built exactly like recovery builds them — the
  replica's session states are therefore bit-identical to the
  primary's (asserted by SHA-256 state digests in the failover tests),
  and read-only queries are answered from memory with zero primary
  involvement, as long as the shard's lag is inside the configured
  bound.

Apply is *commit-gated*: APPEND batches are buffered (and logged) but
only records at or below the last COMMIT watermark reach an engine.  A
link that dies between APPEND and COMMIT leaves an un-applied,
un-committed tail that promotion truncates — state never runs ahead of
what the primary had made durable.  Duplicate delivery after a
reconnect is harmless by construction: LSNs at or below the applied
watermark are counted and dropped.
"""

from __future__ import annotations

import os
import socket
import threading
from collections import deque
from pathlib import Path
from time import monotonic, perf_counter
from typing import Any, Deque, Dict, List, Optional, Union

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs.tracing import span as _span
from ..persist import (
    SnapshotStore,
    rebuild_engine,
    snapshot_dir_for,
    state_digest,
)
from ..persist.records import (
    REC_END,
    REC_FENCE,
    REC_INPUT,
    REC_START,
    apply_scripted_op,
    op_from_dict,
)
from ..persist.wal import encode_frame as wal_encode_frame, segment_path
from ..serve.manager import shard_for
from .promote import read_epoch
from .protocol import (
    R_ACK,
    R_APPEND,
    R_COMMIT,
    R_ERROR,
    R_HANDSHAKE,
    R_HEARTBEAT,
    ProtocolError,
    ReplicationError,
    encode,
    make_decoder,
    require,
)

__all__ = ["ReplicaLagging", "StandbyReplica"]

_M_APPLIED = _obs.counter(
    "repro_repl_applied_records_total",
    "WAL records applied on the standby, by shard",
)
_M_DUP = _obs.counter(
    "repro_repl_duplicate_records_total",
    "Shipped records dropped as already-applied duplicates, by shard",
)
_M_APPLY_FAIL = _obs.counter(
    "repro_repl_apply_failures_total",
    "Shipped records the standby could not apply (unknown session or "
    "unknown record type), by shard",
)
_M_LAG = _obs.gauge(
    "repro_repl_lag_records",
    "Shipped-tip minus applied LSN on the standby, by shard",
)
_M_LINK_ERR = _obs.counter(
    "repro_repl_link_errors_total",
    "Replication link failures observed by the standby, by shard",
)
_M_RECONNECTS = _obs.counter(
    "repro_repl_reconnects_total",
    "Standby reconnect attempts after a lost link, by shard",
)
_M_APPLY = _obs.histogram(
    "repro_repl_apply_seconds",
    "Wall time to apply one committed batch on the standby",
)
_M_QUERIES = _obs.counter(
    "repro_repl_queries_total",
    "Read-only replica queries answered, by result",
)

_LOG = _obslog.get_logger("replicate")


class ReplicaLagging(ReplicationError):
    """A read was refused because the shard's lag exceeds the bound.

    Carries how far behind the refusal was (``lag_ticks``, measured in
    WAL records — the replica's clock) and the owning ``shard``, so a
    router or load balancer can back off proportionally instead of
    treating every refusal the same.
    """

    def __init__(self, shard: int, lag_ticks: int, bound: int) -> None:
        self.shard = shard
        self.lag_ticks = lag_ticks
        self.bound = bound
        super().__init__(
            f"shard {shard} lags {lag_ticks} records (> bound {bound})"
        )


class _ReplicaLog:
    """The standby's durable copy of one shard's stream.

    Single segment, journal-compatible framing, original LSNs.  Tracks
    the byte offset of the last COMMIT so promotion can cut the
    un-committed tail byte-exactly.
    """

    def __init__(self, directory: Path, first_lsn: int) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = segment_path(self.directory, 1)
        # a stale log from an earlier standby incarnation is useless:
        # the in-memory mirror it backed is gone, so re-sync clean
        for entry in self.directory.glob("wal-*.log"):
            entry.unlink(missing_ok=True)
        self._fh = open(self.path, "ab")
        header = wal_encode_frame({"t": "h", "seg": 1, "first": first_lsn})
        self._fh.write(header)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.size = len(header)
        self.committed_bytes = self.size
        self.logged_lsn = first_lsn - 1

    def append(self, record: Dict[str, Any]) -> None:
        frame = wal_encode_frame(record)
        self._fh.write(frame)
        self.size += len(frame)
        self.logged_lsn = int(record["n"])

    def commit(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.committed_bytes = self.size

    def truncate_uncommitted(self) -> int:
        """Cut everything past the commit watermark; bytes removed."""
        self.close()
        cut = self.size - self.committed_bytes
        if cut > 0:
            os.truncate(self.path, self.committed_bytes)
            self.size = self.committed_bytes
        return max(0, cut)

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
            except OSError:  # pragma: no cover - disk death
                pass
            self._fh = None


class _ReplicaSession:
    """One mirrored session: the replica-side twin of a ServedSession."""

    __slots__ = ("player_id", "dt", "ops", "cursor", "engine", "ended",
                 "outcome", "covered_lsn")

    def __init__(
        self,
        player_id: str,
        dt: float,
        ops: List[Dict[str, Any]],
        engine: Any,
        cursor: int = 0,
        covered_lsn: int = 0,
    ) -> None:
        self.player_id = player_id
        self.dt = dt
        self.ops = ops
        self.cursor = cursor
        self.engine = engine
        self.ended = False
        self.outcome: Optional[str] = None
        self.covered_lsn = covered_lsn


class _StandbyShard:
    """Everything one shard's follower thread owns."""

    def __init__(self, index: int, directory: Path) -> None:
        self.index = index
        self.label = str(index)
        self.directory = directory
        self.epoch = read_epoch(directory)
        self.applied_lsn = 0
        self.commit_lsn = 0
        self.tip = 0
        self.last_heartbeat: Optional[float] = None
        self.connected = False
        self.fenced = False
        self.sessions: Dict[str, _ReplicaSession] = {}
        self.pending: List[Dict[str, Any]] = []
        self.log: Optional[_ReplicaLog] = None
        self.lock = threading.Lock()
        self.lag_samples: Deque[int] = deque(maxlen=4096)
        self.sock: Optional[socket.socket] = None
        self.thread: Optional[threading.Thread] = None

    @property
    def lag(self) -> int:
        return max(0, self.tip - self.applied_lsn)

    def truncate_uncommitted(self) -> int:
        if self.log is None:
            return 0
        return self.log.truncate_uncommitted()

    def sample_lag(self) -> None:
        lag = self.lag
        self.lag_samples.append(lag)
        if _obs.enabled():
            _M_LAG.set(lag, shard=self.label)


class StandbyReplica:
    """A warm standby following one primary — all shards or a subset.

    ``shards`` (default: every shard) is the subscription set: the
    standby opens one shipping connection per subscribed shard and
    advertises the full set in each handshake, so several standbys can
    split one primary's keyspace between them (the placement map in
    :mod:`repro.cluster` hands out the subsets).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        game: Any,
        n_shards: int,
        host: str,
        port: int,
        *,
        shards: Optional[List[int]] = None,
        max_read_lag_records: int = 64,
        reconnect_backoff_s: float = 0.05,
        connect_timeout_s: float = 2.0,
        client_name: str = "standby",
    ) -> None:
        self.directory = Path(directory)
        self.game = game
        self.n_shards = n_shards
        self.host = host
        self.port = port
        if shards is None:
            self.shards = list(range(n_shards))
        else:
            self.shards = sorted({int(s) for s in shards})
            bad = [s for s in self.shards if not 0 <= s < n_shards]
            if bad:
                raise ValueError(f"subscribed shards out of range: {bad}")
            if not self.shards:
                raise ValueError("subscription set must not be empty")
        self.max_read_lag_records = max_read_lag_records
        self.reconnect_backoff_s = reconnect_backoff_s
        self.connect_timeout_s = connect_timeout_s
        self.client_name = client_name
        self._stop = threading.Event()
        self._shards = {
            i: _StandbyShard(i, self.directory / f"shard-{i:02d}")
            for i in self.shards
        }
        self._started = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "StandbyReplica":
        if self._started:
            raise RuntimeError("replica already started")
        self._started = True
        for st in self._shards.values():
            st.thread = threading.Thread(
                target=self._run_shard, args=(st,),
                name=f"repro-repl-standby-{st.index}", daemon=True,
            )
            st.thread.start()
        _LOG.info("repl.standby_started", dir=str(self.directory),
                  source=f"{self.host}:{self.port}", shards=self.shards)
        return self

    def stop(self) -> None:
        self._stop.set()
        for st in self._shards.values():
            sock = st.sock
            if sock is not None:
                # shutdown before close: close() alone does not wake a
                # thread blocked in recv() on this socket, shutdown()
                # does (the follower sees EOF and exits promptly)
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        for st in self._shards.values():
            if st.thread is not None:
                st.thread.join(timeout=5.0)
            if st.log is not None:
                st.log.close()

    @property
    def alive(self) -> bool:
        """Started and not stopped — the placement router's health bit."""
        return self._started and not self._stop.is_set()

    def __enter__(self) -> "StandbyReplica":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- introspection (any thread) ------------------------------------
    def shard_states(self) -> List[_StandbyShard]:
        """The per-shard states (the promotion path walks these)."""
        return [self._shards[i] for i in sorted(self._shards)]

    def heartbeat_age(self) -> float:
        """Seconds since the freshest shard heard from the primary.

        ``inf`` when no shard has ever heard a heartbeat — a standby
        that cannot reach its primary at all is promotable too.
        """
        ages = [
            monotonic() - st.last_heartbeat
            for st in self._shards.values()
            if st.last_heartbeat is not None
        ]
        return min(ages) if ages else float("inf")

    def lag(self, shard: int) -> int:
        return self._shards[shard].lag

    def caught_up(self, tips: Dict[int, int]) -> bool:
        """Has every subscribed shard applied at least its target tip?"""
        return all(
            self._shards[i].applied_lsn >= tip
            for i, tip in tips.items()
            if i in self._shards
        )

    def wait_caught_up(
        self, tips: Dict[int, int], timeout_s: float = 30.0
    ) -> bool:
        deadline = monotonic() + timeout_s
        while not self.caught_up(tips):
            if monotonic() >= deadline:
                return False
            self._stop.wait(0.01)
            if self._stop.is_set():
                return self.caught_up(tips)
        return True

    def status(self) -> Dict[str, Any]:
        """Per-shard replication health (telemetry / CLI / tests)."""
        shards = []
        for st in self.shard_states():
            with st.lock:
                shards.append({
                    "shard": st.index,
                    "connected": st.connected,
                    "fenced": st.fenced,
                    "epoch": st.epoch,
                    "applied_lsn": st.applied_lsn,
                    "commit_lsn": st.commit_lsn,
                    "tip": st.tip,
                    "lag": st.lag,
                    "sessions": len(st.sessions),
                    "ended": sum(
                        1 for s in st.sessions.values() if s.ended
                    ),
                    "heartbeat_age_s": (
                        None if st.last_heartbeat is None
                        else round(monotonic() - st.last_heartbeat, 3)
                    ),
                })
        return {
            "directory": str(self.directory),
            "source": f"{self.host}:{self.port}",
            "max_read_lag_records": self.max_read_lag_records,
            "subscribed": list(self.shards),
            "shards": shards,
        }

    def digests(self) -> Dict[str, str]:
        """SHA-256 state digest of every mirrored session."""
        out: Dict[str, str] = {}
        for st in self._shards.values():
            with st.lock:
                for sid, sess in st.sessions.items():
                    out[sid] = state_digest(sess.engine.state)
        return out

    def query(self, player_id: str) -> Dict[str, Any]:
        """Lag-bounded read-only view of one session.

        Raises :class:`ReplicaLagging` when the owning shard is behind
        by more than ``max_read_lag_records``; raises ``KeyError`` for
        a player the replica has never seen — including one whose
        owning shard is outside this standby's subscription set.
        """
        shard = shard_for(player_id, self.n_shards)
        st = self._shards.get(shard)
        if st is None:
            _M_QUERIES.inc(result="unsubscribed")
            raise KeyError(player_id)
        with st.lock:
            lag = st.lag
            if lag > self.max_read_lag_records:
                _M_QUERIES.inc(result="lagging")
                raise ReplicaLagging(shard, lag, self.max_read_lag_records)
            sess = st.sessions.get(player_id)
            if sess is None:
                _M_QUERIES.inc(result="unknown")
                raise KeyError(player_id)
            _M_QUERIES.inc(result="ok")
            return {
                "player": player_id,
                "status": "done" if sess.ended else "replica",
                "shard": shard,
                "cursor": sess.cursor,
                "outcome": sess.outcome,
                "lsn": st.applied_lsn,
                "lag": lag,
                "epoch": st.epoch,
                "digest": state_digest(sess.engine.state),
            }

    # -- follower thread -----------------------------------------------
    def _run_shard(self, st: _StandbyShard) -> None:
        first = True
        while not self._stop.is_set() and not st.fenced:
            if not first:
                _M_RECONNECTS.inc(shard=st.label)
                self._stop.wait(self.reconnect_backoff_s)
                if self._stop.is_set():
                    return
            first = False
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout_s
                )
            except OSError:
                _M_LINK_ERR.inc(shard=st.label)
                continue
            sock.settimeout(None)
            # acks are tiny and latency-critical (quorum commit waits
            # on them); don't let Nagle batch them behind delayed ACKs
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            st.sock = sock
            st.connected = True
            try:
                self._follow(st, sock)
            except (ConnectionError, OSError, ProtocolError,
                    ReplicationError) as exc:
                if not self._stop.is_set() and not st.fenced:
                    _M_LINK_ERR.inc(shard=st.label)
                    _LOG.warning("repl.link_lost", shard=st.index,
                                 error=type(exc).__name__)
            finally:
                st.connected = False
                st.sock = None
                try:
                    sock.close()
                except OSError:
                    pass

    def _follow(self, st: _StandbyShard, sock: socket.socket) -> None:
        decoder = make_decoder()
        with st.lock:
            # anything buffered but never committed on the old link
            # will be re-shipped: the handshake asks from applied+1
            st.pending.clear()
        sock.sendall(encode(R_HANDSHAKE, {
            "shard": st.index,
            "epoch": st.epoch,
            "start": st.applied_lsn + 1,
            "client": self.client_name,
            "subs": list(self.shards),
        }))
        while not self._stop.is_set():
            data = sock.recv(65536)
            if not data:
                raise ConnectionError("replication source hung up")
            for ftype, payload in decoder.feed(data):
                self._handle(st, ftype, payload)

    def _handle(
        self, st: _StandbyShard, ftype: int, payload: Dict[str, Any]
    ) -> None:
        if ftype == R_HANDSHAKE:
            self._handle_handshake(st, payload)
        elif ftype == R_APPEND:
            self._handle_append(st, payload)
        elif ftype == R_COMMIT:
            self._handle_commit(st, payload)
        elif ftype == R_HEARTBEAT:
            st.tip = max(st.tip, int(payload.get("tip", 0)))
            st.last_heartbeat = monotonic()
            with st.lock:
                st.sample_lag()
        elif ftype == R_ERROR:
            code = payload.get("code")
            if code == "fenced":
                st.fenced = True
                _LOG.warning("repl.standby_fenced", shard=st.index,
                             detail=payload.get("detail"))
            raise ReplicationError(
                f"source error {code!r}: {payload.get('detail', '')}"
            )
        else:  # pragma: no cover - decoder already filters
            raise ProtocolError(f"unexpected REPL frame {ftype}")

    def _handle_handshake(
        self, st: _StandbyShard, payload: Dict[str, Any]
    ) -> None:
        require(payload, "shard", "epoch", "start")
        source_epoch = int(payload["epoch"])
        if source_epoch < st.epoch:
            # a deposed primary came back: refuse to follow history
            # backwards (mirror image of the source-side fence)
            raise ReplicationError(
                f"source epoch {source_epoch} is behind ours {st.epoch}"
            )
        st.epoch = source_epoch
        start = int(payload["start"])
        st.tip = max(st.tip, int(payload.get("tip", 0)))
        st.last_heartbeat = monotonic()
        snapshots = payload.get("snapshots") or []
        with st.lock:
            if st.log is None:
                st.log = _ReplicaLog(st.directory, first_lsn=start)
            if snapshots:
                self._install_snapshots(st, snapshots)
            if start - 1 > st.applied_lsn:
                # the prefix below start lives in the snapshots, not
                # the stream
                st.applied_lsn = start - 1
                st.commit_lsn = max(st.commit_lsn, st.applied_lsn)
        # baseline ack: everything up to the commit watermark is
        # already durable here (mirrored before the link last died)
        self._send_ack(st)

    def _send_ack(self, st: _StandbyShard) -> None:
        """Report the durably mirrored watermark back to the source."""
        sock = st.sock
        if sock is None:
            return
        try:
            sock.sendall(encode(R_ACK, {
                "shard": st.index,
                "lsn": st.commit_lsn,
                "client": self.client_name,
            }))
        except OSError:
            pass  # link died mid-ack: reconnect re-acks the watermark

    def _install_snapshots(
        self, st: _StandbyShard, docs: List[Dict[str, Any]]
    ) -> None:
        store = SnapshotStore(snapshot_dir_for(st.directory))
        for doc in docs:
            try:
                sid = str(doc["sid"])
                dt = float(doc.get("dt", 0.25))
                ops = list(doc.get("ops", []))
                cursor = int(doc.get("cursor", 0))
                state = doc["state"]
                lsn = int(doc.get("lsn", 0))
            except (KeyError, TypeError, ValueError):
                _M_APPLY_FAIL.inc(shard=st.label)
                continue
            engine = rebuild_engine(self.game, state=state, dt=dt)
            st.sessions[sid] = _ReplicaSession(
                sid, dt, ops, engine, cursor=cursor, covered_lsn=lsn,
            )
            # mirrored durably too: the promoted directory must carry
            # the same resume points the primary had
            store.write(sid, dt, ops, cursor, state, lsn=lsn)

    def _handle_append(
        self, st: _StandbyShard, payload: Dict[str, Any]
    ) -> None:
        require(payload, "shard", "records")
        records = payload["records"]
        with st.lock:
            for record in records:
                try:
                    lsn = int(record["n"])
                except (KeyError, TypeError, ValueError):
                    _M_APPLY_FAIL.inc(shard=st.label)
                    continue
                if lsn <= st.applied_lsn:
                    _M_DUP.inc(shard=st.label)
                    continue
                if st.log is not None and lsn > st.log.logged_lsn:
                    st.log.append(record)
                st.pending.append(record)

    def _handle_commit(
        self, st: _StandbyShard, payload: Dict[str, Any]
    ) -> None:
        require(payload, "shard", "lsn")
        commit = int(payload["lsn"])
        with st.lock:
            st.commit_lsn = max(st.commit_lsn, commit)
            st.tip = max(st.tip, commit)
            if st.log is not None:
                st.log.commit()
            ready = [r for r in st.pending if int(r["n"]) <= commit]
            st.pending = [r for r in st.pending if int(r["n"]) > commit]
            if ready:
                t0 = perf_counter()
                with _span("repl.apply", shard=st.label, batch=len(ready)):
                    for record in ready:
                        self._apply_record(st, record)
                if _obs.enabled():
                    _M_APPLY.observe(perf_counter() - t0)
                    _M_APPLIED.inc(len(ready), shard=st.label)
            st.sample_lag()
        # the mirror is fsynced up to the watermark: tell the source,
        # so quorum-gated primaries can resolve their wait_durable
        self._send_ack(st)

    def _apply_record(
        self, st: _StandbyShard, record: Dict[str, Any]
    ) -> None:
        kind = record.get("t")
        lsn = int(record["n"])
        sid = record.get("sid")
        if kind == REC_FENCE:
            st.epoch = max(st.epoch, int(record.get("epoch", st.epoch)))
        elif kind == REC_START:
            if sid not in st.sessions:
                dt = float(record.get("dt", 0.25))
                st.sessions[sid] = _ReplicaSession(
                    sid, dt, list(record.get("ops", [])),
                    rebuild_engine(self.game, dt=dt),
                )
        elif kind == REC_INPUT:
            sess = st.sessions.get(sid)
            if sess is None:
                _M_APPLY_FAIL.inc(shard=st.label)
                _LOG.warning("repl.orphan_record", shard=st.index,
                             lsn=lsn, sid=sid)
            elif lsn > sess.covered_lsn:
                apply_scripted_op(
                    sess.engine, op_from_dict(record.get("op", {})), sess.dt
                )
                sess.cursor += 1
        elif kind == REC_END:
            sess = st.sessions.get(sid)
            if sess is None:
                _M_APPLY_FAIL.inc(shard=st.label)
            else:
                sess.ended = True
                sess.outcome = record.get("out")
        else:
            _M_APPLY_FAIL.inc(shard=st.label)
        st.applied_lsn = lsn
