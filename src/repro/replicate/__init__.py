"""WAL-shipping replication: warm standbys, lag-aware reads, failover.

``repro.replicate`` turns the persist layer's per-shard write-ahead
logs (:mod:`repro.persist`) into a primary/standby pair:

* :class:`~repro.replicate.source.ReplicationSource` runs next to the
  primary's :class:`~repro.serve.manager.SessionManager`, tails each
  shard journal with the same CRC32 frame scan recovery uses, and
  ships records over a length-prefixed TCP stream (HANDSHAKE /
  APPEND / COMMIT / HEARTBEAT / ACK —
  :mod:`repro.replicate.protocol`), keeping a per-shard ack ledger of
  each standby's durable watermark so quorum commit
  (``PersistenceConfig.quorum_standbys``) can gate ``wait_durable``;
* :class:`~repro.replicate.replica.StandbyReplica` mirrors the log
  durably and applies committed records through the shared
  :func:`~repro.persist.records.apply_scripted_op` semantics, so its
  session states are bit-identical to the primary's (SHA-256 state
  digests), its lag is measurable (``repro_repl_lag_records``), and it
  answers read-only queries while lag stays under a configured bound
  (:class:`~repro.replicate.replica.ReplicaLagging` otherwise);
* :class:`~repro.replicate.promote.Promoter` is failover: detect the
  silent primary by missed heartbeats, fence the epoch, truncate the
  un-committed tail and hand the directory to the ordinary recovery
  path — a promoted standby is just a persistence root.

The whole story is soaked under fault injection by
:func:`~repro.replicate.chaos.run_repl_chaos` (the ``repl-kill-primary``
plan) and gated in CI by ``benchmarks/bench_replicate.py``.
"""

from .chaos import ReplChaosReport, run_repl_chaos
from .promote import (
    Promoter,
    PromotionReport,
    promote_directory,
    read_epoch,
    write_epoch,
)
from .protocol import (
    R_ACK,
    R_APPEND,
    R_COMMIT,
    R_ERROR,
    R_HANDSHAKE,
    R_HEARTBEAT,
    REPL_VERSION,
    ReplicationError,
)
from .replica import ReplicaLagging, StandbyReplica
from .source import ReplicationSource

__all__ = [
    "Promoter",
    "PromotionReport",
    "R_ACK",
    "R_APPEND",
    "R_COMMIT",
    "R_ERROR",
    "R_HANDSHAKE",
    "R_HEARTBEAT",
    "REPL_VERSION",
    "ReplChaosReport",
    "ReplicaLagging",
    "ReplicationError",
    "ReplicationSource",
    "StandbyReplica",
    "promote_directory",
    "read_epoch",
    "run_repl_chaos",
    "write_epoch",
]
