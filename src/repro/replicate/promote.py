"""Failover: fence the old epoch, truncate the tail, adopt the log.

Promotion turns a warm standby's replicated log into a primary WAL the
ordinary recovery path can serve from.  The steps are deliberately
boring — each one is a thing the persist layer already knows how to do:

1. **Stop replicating.**  The standby's shipping connections close and
   its logs flush; nothing moves underneath the promotion.
2. **Truncate the un-committed tail.**  Records received but never
   covered by a COMMIT watermark are cut off byte-exactly — they were
   not durable on the primary's terms, so the new primary must not
   invent them.
3. **Fence the epoch.**  The shard's epoch is bumped in its ``EPOCH``
   sidecar and an epoch-fence record is appended (durably) to the log
   itself, so both the filesystem and the log agree history changed
   hands.  A deposed primary that comes back and handshakes sees the
   higher epoch and is refused (``fenced``).
4. **Hand over to recovery.**  The promoted directory is now a normal
   persistence root: ``SessionManager.recover()`` /
   ``GatewayServer.recover()`` rebuild every committed session
   bit-identically and clients reconnect-resume exactly as they do
   after a crash of the original primary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, perf_counter, sleep
from typing import Any, Dict, List, Optional, Union

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..persist import (
    Journal,
    PersistenceConfig,
    fence_record,
    recover_shard,
    scan_journal,
)

__all__ = [
    "PromotionReport",
    "Promoter",
    "promote_directory",
    "read_epoch",
    "write_epoch",
]

_M_PROMOTIONS = _obs.counter(
    "repro_repl_promotions_total",
    "Standby shards promoted to primary",
)

_LOG = _obslog.get_logger("replicate")

_EPOCH_FILE = "EPOCH"


def read_epoch(shard_dir: Union[str, Path]) -> int:
    """The shard's current epoch (1 when no ``EPOCH`` sidecar exists)."""
    path = Path(shard_dir) / _EPOCH_FILE
    try:
        return max(1, int(path.read_text().strip()))
    except (OSError, ValueError):
        return 1


def write_epoch(shard_dir: Union[str, Path], epoch: int) -> None:
    """Durably record the shard's epoch in its ``EPOCH`` sidecar."""
    shard_dir = Path(shard_dir)
    shard_dir.mkdir(parents=True, exist_ok=True)
    (shard_dir / _EPOCH_FILE).write_text(f"{int(epoch)}\n")


@dataclass(slots=True)
class PromotionReport:
    """What one promotion did, per shard (JSON-able)."""

    root: str
    shards: List[Dict[str, Any]] = field(default_factory=list)
    #: player id -> SHA-256 state digest of every *live* session the
    #: promoted log rebuilds (filled when a game is given to audit)
    digests: Dict[str, str] = field(default_factory=dict)
    duration_s: float = 0.0

    @property
    def epochs(self) -> Dict[int, int]:
        return {row["shard"]: row["epoch"] for row in self.shards}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "shards": list(self.shards),
            "digests": dict(self.digests),
            "duration_s": round(self.duration_s, 4),
        }


class Promoter:
    """Decides on, and executes, the standby's takeover."""

    def __init__(
        self,
        replica: Any,
        heartbeat_timeout_s: float = 2.0,
    ) -> None:
        self.replica = replica
        self.heartbeat_timeout_s = heartbeat_timeout_s

    # -- detection -----------------------------------------------------
    def should_promote(self) -> bool:
        """True once every shard's heartbeat has gone quiet too long.

        ``heartbeat_age()`` is the seconds since the *freshest* shard
        heard from the primary; a shard that never connected reports
        infinity, so a standby that never reached its primary is also
        (correctly) promotable.
        """
        return self.replica.heartbeat_age() > self.heartbeat_timeout_s

    def wait_for_failure(self, timeout_s: Optional[float] = None) -> bool:
        """Block until :meth:`should_promote` (or the timeout) arrives."""
        deadline = None if timeout_s is None else monotonic() + timeout_s
        while not self.should_promote():
            if deadline is not None and monotonic() >= deadline:
                return False
            sleep(min(0.05, self.heartbeat_timeout_s / 4))
        return True

    # -- the takeover --------------------------------------------------
    def promote(self, game: Any = None) -> PromotionReport:
        """Fence, truncate, adopt; returns the per-shard report.

        With ``game`` given, every shard is additionally put through a
        read-only :func:`recover_shard` pass and the rebuilt live
        sessions' digests land in the report — the bit-identity handle
        the failover audit compares against an independent replay.
        """
        t0 = perf_counter()
        replica = self.replica
        replica.stop()
        report = PromotionReport(root=str(replica.directory))
        for shard_state in replica.shard_states():
            directory = shard_state.directory
            truncated = shard_state.truncate_uncommitted()
            epoch = max(read_epoch(directory), shard_state.epoch) + 1
            write_epoch(directory, epoch)
            fence_lsn = self._append_fence(directory, epoch)
            shard_state.epoch = epoch
            report.shards.append({
                "shard": shard_state.index,
                "epoch": epoch,
                "fence_lsn": fence_lsn,
                "truncated_bytes": truncated,
                "applied_lsn": shard_state.applied_lsn,
                "commit_lsn": shard_state.commit_lsn,
            })
            _M_PROMOTIONS.inc()
            _LOG.info("repl.promoted", shard=shard_state.index, epoch=epoch,
                      fence_lsn=fence_lsn, truncated_bytes=truncated)
        if game is not None:
            for shard_state in replica.shard_states():
                if not shard_state.directory.is_dir():
                    continue
                recovery = recover_shard(
                    shard_state.directory, game,
                    truncate=False, write_snapshots=False,
                )
                report.digests.update(recovery.digests())
        report.duration_s = perf_counter() - t0
        return report

    @staticmethod
    def _append_fence(directory: Path, epoch: int) -> int:
        """Durably append the epoch fence via a short-lived journal.

        ``sync_each`` mode: the fence is fsynced before this returns,
        and :class:`Journal`'s tip-attach resumes the standby's log
        in place (assigning the fence the next LSN).
        """
        journal = Journal(
            directory,
            PersistenceConfig(directory=directory, sync_each=True),
            label=f"promote-{directory.name}",
        )
        try:
            return journal.append(fence_record(epoch))
        finally:
            journal.close()


def promote_directory(
    root: Union[str, Path], game: Any = None
) -> PromotionReport:
    """Offline promotion: fence every shard journal under ``root``.

    The ``repro repl promote`` path — no live replica, so the commit
    watermark is gone with the process; the torn-tail truncation the
    journal scan already performs is the cut.  Each ``shard-*``
    directory gets its epoch bumped, the ``EPOCH`` sidecar rewritten
    and a fence record appended; with ``game`` given the promoted log
    is recovered read-only and the live sessions' digests reported.
    """
    t0 = perf_counter()
    root = Path(root)
    report = PromotionReport(root=str(root))
    shard_dirs = sorted(
        entry for entry in root.iterdir()
        if entry.is_dir() and entry.name.startswith("shard-")
    ) if root.is_dir() else []
    for index, directory in enumerate(shard_dirs):
        scan = scan_journal(directory, truncate=True)
        epoch = read_epoch(directory) + 1
        write_epoch(directory, epoch)
        fence_lsn = Promoter._append_fence(directory, epoch)
        report.shards.append({
            "shard": index,
            "epoch": epoch,
            "fence_lsn": fence_lsn,
            "truncated_bytes": scan.discarded_bytes,
            "applied_lsn": scan.tip_lsn,
            "commit_lsn": scan.tip_lsn,
        })
        _M_PROMOTIONS.inc()
        _LOG.info("repl.promoted_offline", dir=str(directory), epoch=epoch,
                  fence_lsn=fence_lsn)
        if game is not None:
            recovery = recover_shard(
                directory, game, truncate=False, write_snapshots=False,
            )
            report.digests.update(recovery.digests())
    report.duration_s = perf_counter() - t0
    return report
