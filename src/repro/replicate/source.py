"""The primary side of replication: tail shard journals, ship records.

A :class:`ReplicationSource` runs next to a persisted
:class:`~repro.serve.manager.SessionManager` and serves the REPL
protocol on its own TCP listener.  Each standby opens one connection
per shard; the source answers the handshake (bootstrapping from
snapshots when compaction has already eaten the requested prefix) and
then streams every new WAL record as it becomes file-visible.

**Tailing.**  The journal's group-commit flusher makes records
file-visible in the same breath it fsyncs them (buffered writes are
flushed immediately before the fsync), so a tailer reading complete
CRC-valid frames from the segment files observes, to within one
group-commit window, exactly the durable log — the same frame scan
recovery uses, incremental.  A partial frame at EOF is a batch still
being flushed: wait, never guess.  The serve layer's replication hook
(:meth:`attach`) wakes the tailers the moment an append lands; without
it they fall back to polling.

**Fencing.**  Every handshake carries the standby's epoch.  A standby
ahead of this source's own epoch is proof of a completed promotion
somewhere — the source answers ``fenced`` and refuses to ship, so a
deposed primary that comes back cannot split the brain.
"""

from __future__ import annotations

import json as _json
import socket
import threading
import zlib as _zlib
from pathlib import Path
from time import monotonic, sleep
from typing import Any, Dict, List, Optional, Tuple

from .. import faultline as _fl
from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs.tracing import span as _span
from ..persist.snapshot import SnapshotStore, snapshot_dir_for
from ..persist.wal import (
    _FRAME,
    MAX_RECORD_BYTES,
    PersistenceConfig,
    list_segments,
    segment_first_lsn,
)
from .promote import read_epoch
from .protocol import (
    ProtocolError,
    R_ACK,
    R_APPEND,
    R_COMMIT,
    R_ERROR,
    R_HANDSHAKE,
    R_HEARTBEAT,
    encode,
    make_decoder,
    require,
)

__all__ = ["ReplicationSource"]

_M_SHIPPED = _obs.counter(
    "repro_repl_shipped_records_total",
    "WAL records shipped to standbys, by shard",
)
_M_BATCHES = _obs.counter(
    "repro_repl_shipped_batches_total",
    "APPEND batches shipped to standbys, by shard",
)
_M_FENCED = _obs.counter(
    "repro_repl_fenced_total",
    "Handshakes refused because the peer's epoch fences this source",
)
_M_SNAP_BOOT = _obs.counter(
    "repro_repl_snapshot_bootstraps_total",
    "Standby handshakes answered with a snapshot bootstrap",
)
_M_ACKS = _obs.counter(
    "repro_quorum_acks_total",
    "Durable-mirror ACKs received from standbys, by shard",
)

_LOG = _obslog.get_logger("replicate")


class _Tailer:
    """Incremental CRC32 frame scan over one shard's segment files.

    Stateless about the journal's writer: it only ever reads complete,
    CRC-valid frames and remembers ``(segment seq, byte offset, next
    LSN)``.  Rotation is followed by noticing the next sequence number
    exists once the current file stops growing; compaction is survived
    by re-latching onto the earliest remaining segment.
    """

    def __init__(self, directory: Path, start_lsn: int) -> None:
        self.directory = Path(directory)
        self.next_lsn = start_lsn
        self.seq: Optional[int] = None
        self.offset = 0

    def _latch(self) -> Optional[Path]:
        """Pick the segment that should contain ``next_lsn``."""
        segments = list_segments(self.directory)
        if not segments:
            return None
        chosen = segments[0]
        for seq, path in segments:
            first = segment_first_lsn(path)
            if first is not None and first <= self.next_lsn:
                chosen = (seq, path)
            else:
                break
        self.seq, path = chosen
        self.offset = 0
        return path

    def _current_path(self) -> Optional[Path]:
        if self.seq is None:
            return self._latch()
        path = self.directory / f"wal-{self.seq:08d}.log"
        if not path.exists():  # compacted away under us: re-latch
            return self._latch()
        return path

    def read_batch(self, max_records: int) -> List[Dict[str, Any]]:
        """Complete, new records since the last call (may be empty)."""
        out: List[Dict[str, Any]] = []
        while len(out) < max_records:
            path = self._current_path()
            if path is None:
                return out
            try:
                with open(path, "rb") as fh:
                    fh.seek(self.offset)
                    data = fh.read()
            except OSError:
                return out
            advanced = self._parse(data, out, max_records)
            if advanced:
                continue  # same segment may hold more
            # nothing complete here: has the writer rotated past us?
            next_path = self.directory / f"wal-{(self.seq or 0) + 1:08d}.log"
            if self.offset > 0 and next_path.exists():
                self.seq = (self.seq or 0) + 1
                self.offset = 0
                continue
            return out
        return out

    def _parse(
        self, data: bytes, out: List[Dict[str, Any]], max_records: int
    ) -> bool:
        """Consume complete frames from ``data``; True when any did."""
        consumed = 0
        n = len(data)
        advanced = False
        while consumed + _FRAME.size <= n and len(out) < max_records:
            length, crc = _FRAME.unpack_from(data, consumed)
            end = consumed + _FRAME.size + length
            if length == 0 or length > MAX_RECORD_BYTES or end > n:
                break  # partial frame mid-flush: wait for the rest
            payload = data[consumed + _FRAME.size:end]
            if _zlib.crc32(payload) != crc:
                break  # torn tail: recovery's problem, not ours
            try:
                record = _json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            consumed = end
            advanced = True
            if not isinstance(record, dict) or record.get("t") == "h":
                continue
            lsn = int(record.get("n", 0))
            if lsn < self.next_lsn:
                continue  # resume overlap: already shipped
            out.append(record)
            self.next_lsn = lsn + 1
        self.offset += consumed
        return advanced


class ReplicationSource:
    """TCP listener shipping one persistence root's WAL to standbys."""

    def __init__(
        self,
        persistence: PersistenceConfig,
        n_shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_max_records: int = 256,
        poll_interval_s: float = 0.02,
        heartbeat_s: float = 0.1,
    ) -> None:
        self.persistence = persistence
        self.n_shards = n_shards
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.batch_max_records = batch_max_records
        self.poll_interval_s = poll_interval_s
        self.heartbeat_s = heartbeat_s
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._conns_lock = threading.Lock()
        self._stop = threading.Event()
        #: per-shard wakeups, fired by the serve layer's append hook
        self._wakeups = [threading.Event() for _ in range(n_shards)]
        #: quorum ledger: shard -> {standby client -> highest acked LSN}
        self._acks: Dict[int, Dict[str, int]] = {}
        self._ack_cond = threading.Condition()
        #: standby client -> the shard-subscription set it handshook
        self._subs: Dict[str, List[int]] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ReplicationSource":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(16)
        self._sock = sock
        self.port = sock.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-repl-source", daemon=True
        )
        self._accept_thread.start()
        _LOG.info("repl.source_listening", host=self.host, port=self.port,
                  shards=self.n_shards)
        return self

    def stop(self) -> None:
        self._stop.set()
        for event in self._wakeups:
            event.set()
        with self._ack_cond:
            self._ack_cond.notify_all()  # release quorum waiters
        if self._sock is not None:
            # shutdown wakes a blocked accept() (close alone leaves the
            # accept thread pinned on the old listener)
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        self._sever_all()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._conn_threads):
            thread.join(timeout=5.0)

    def __enter__(self) -> "ReplicationSource":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- serve-layer seam ----------------------------------------------
    def notify(self, shard: int, lsn: int) -> None:
        """The manager's replication hook: new log exists on ``shard``."""
        if 0 <= shard < self.n_shards:
            self._wakeups[shard].set()

    def attach(self, manager: Any) -> None:
        """Wire :meth:`notify` into a :class:`SessionManager`.

        With ``PersistenceConfig.quorum_standbys > 0`` this also
        installs :meth:`wait_quorum` as the manager's quorum-commit
        barrier, so every shard journal's ``wait_durable`` blocks on
        the ack ledger.  Call before ``manager.start()`` — journals arm
        the barrier when they open on the shard threads.
        """
        manager.set_replication_hook(self.notify)
        if self.persistence.quorum_standbys > 0:
            setter = getattr(manager, "set_quorum_barrier", None)
            if setter is not None:
                setter(self.wait_quorum)

    # -- quorum ledger (any thread) ------------------------------------
    def record_ack(self, shard: int, client: str, lsn: int) -> None:
        """Fold one standby's durable-mirror watermark into the ledger."""
        with self._ack_cond:
            shard_acks = self._acks.setdefault(shard, {})
            if lsn > shard_acks.get(client, 0):
                shard_acks[client] = lsn
                self._ack_cond.notify_all()
        if _obs.enabled():
            _M_ACKS.inc(shard=str(shard))

    def acked_count(self, shard: int, lsn: int) -> int:
        """How many standbys have durably mirrored ``lsn`` on ``shard``."""
        with self._ack_cond:
            return sum(
                1 for acked in self._acks.get(shard, {}).values()
                if acked >= lsn
            )

    def quorum_lsn(self, shard: int, require: int) -> int:
        """Highest LSN acked by at least ``require`` standbys (0 if none)."""
        with self._ack_cond:
            acked = sorted(self._acks.get(shard, {}).values(), reverse=True)
        if require <= 0 or len(acked) < require:
            return 0
        return acked[require - 1]

    def wait_quorum(
        self,
        shard: int,
        lsn: int,
        require: int,
        timeout: Optional[float] = None,
    ) -> bool:
        """Block until ``require`` standbys acked ``lsn`` (the barrier).

        Signature matches ``SessionManager.set_quorum_barrier``.  A
        standby that died keeps its old acks — they were durable — but
        stops advancing, so quorum for new LSNs rides the survivors.
        """
        deadline = None if timeout is None else monotonic() + timeout
        with self._ack_cond:
            while True:
                count = sum(
                    1 for acked in self._acks.get(shard, {}).values()
                    if acked >= lsn
                )
                if count >= require:
                    return True
                if self._stop.is_set():
                    return False
                if deadline is None:
                    self._ack_cond.wait(0.1)
                else:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        return False
                    self._ack_cond.wait(min(remaining, 0.1))

    def subscriptions(self) -> Dict[str, List[int]]:
        """Standby client -> the shard-subscription set it handshook."""
        with self._ack_cond:
            return {name: list(subs) for name, subs in self._subs.items()}

    # -- internals -----------------------------------------------------
    def _sever_all(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            # shutdown first: it wakes any thread blocked in recv()
            # (our ack readers, the peer's follower); close() alone
            # does not
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            # the link interleaves big APPENDs with tiny COMMIT/ACK
            # frames; Nagle would hold the small ones behind the
            # peer's delayed ACK (~40ms), which quorum commit eats
            # on every traced END
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conns_lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="repro-repl-ship", daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _recv_frames(self, conn: socket.socket, decoder: Any) -> List[Any]:
        data = conn.recv(65536)
        if not data:
            raise ConnectionError("replication peer hung up")
        return decoder.feed(data)

    def _serve_conn(self, conn: socket.socket) -> None:
        decoder = make_decoder()
        try:
            frames: List[Any] = []
            while not frames:
                frames = self._recv_frames(conn, decoder)
            ftype, payload = frames[0]
            if ftype != R_HANDSHAKE:
                conn.sendall(encode(R_ERROR, {
                    "code": "bad_handshake",
                    "detail": "first frame must be HANDSHAKE",
                }))
                return
            require(payload, "shard", "epoch", "start")
            shard = int(payload["shard"])
            if not 0 <= shard < self.n_shards:
                conn.sendall(encode(R_ERROR, {
                    "code": "bad_shard",
                    "detail": f"shard {shard} out of range",
                }))
                return
            client = str(payload.get("client") or "")
            if not client:
                try:
                    host, port = conn.getpeername()[:2]
                    client = f"peer-{host}:{port}"
                except OSError:
                    client = "peer-unknown"
            subs = payload.get("subs")
            if subs is not None:
                subs = sorted({int(s) for s in subs})
                if shard not in subs:
                    conn.sendall(encode(R_ERROR, {
                        "code": "bad_subscription",
                        "detail": f"shard {shard} not in subscription "
                                  f"set {subs}",
                    }))
                    return
            with self._ack_cond:
                self._subs[client] = subs if subs is not None else list(
                    range(self.n_shards)
                )
            self._ship_shard(conn, shard, payload, client, decoder)
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            # shutdown wakes the ack reader's pinned recv and pushes a
            # FIN to the peer even while that recv holds a reference
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _ack_loop(
        self, conn: socket.socket, decoder: Any, shard: int, client: str
    ) -> None:
        """Drain standby ACK frames off a shipping connection.

        Runs on its own thread so the ship loop never blocks on reads:
        the moment a standby fsyncs a COMMIT its ack lands in the
        ledger and any quorum-gated ``wait_durable`` wakes.
        """
        try:
            while not self._stop.is_set():
                for ftype, payload in self._recv_frames(conn, decoder):
                    if ftype != R_ACK:
                        continue
                    try:
                        lsn = int(payload["lsn"])
                        ack_shard = int(payload.get("shard", shard))
                    except (KeyError, TypeError, ValueError):
                        continue
                    self.record_ack(
                        ack_shard,
                        str(payload.get("client") or client),
                        lsn,
                    )
        except (ConnectionError, OSError, ProtocolError, ValueError):
            pass  # link died: the follower reconnects and re-acks

    def _ship_shard(
        self,
        conn: socket.socket,
        shard: int,
        handshake: Dict[str, Any],
        client: str = "",
        decoder: Any = None,
    ) -> None:
        directory = self.persistence.shard_dir(shard)
        epoch = read_epoch(directory)
        peer_epoch = int(handshake["epoch"])
        if peer_epoch > epoch:
            # the standby has promoted past us: we are the stale
            # primary now, and shipping would split the brain
            _M_FENCED.inc()
            _LOG.warning("repl.fenced", shard=shard, ours=epoch,
                         theirs=peer_epoch)
            conn.sendall(encode(R_ERROR, {
                "code": "fenced", "shard": shard, "epoch": epoch,
                "detail": f"standby epoch {peer_epoch} fences epoch {epoch}",
            }))
            return
        start = max(1, int(handshake["start"]))
        reply: Dict[str, Any] = {"shard": shard, "epoch": epoch}
        first_on_disk = self._first_available_lsn(directory)
        if start < first_on_disk:
            # compaction already dropped the prefix the standby wants:
            # bootstrap it from the snapshots that replaced that prefix
            snapshots, _rejected = SnapshotStore(
                snapshot_dir_for(directory)
            ).load_all()
            reply["snapshots"] = list(snapshots.values())
            start = first_on_disk
            _M_SNAP_BOOT.inc()
            _LOG.info("repl.snapshot_bootstrap", shard=shard,
                      snapshots=len(snapshots), start=start)
        tailer = _Tailer(directory, start)
        reply["start"] = start
        reply["tip"] = self._tip_hint(directory)
        conn.sendall(encode(R_HANDSHAKE, reply))
        if decoder is not None:
            ack_thread = threading.Thread(
                target=self._ack_loop, args=(conn, decoder, shard, client),
                name=f"repro-repl-ack-{shard}", daemon=True,
            )
            ack_thread.start()

        label = str(shard)
        wakeup = self._wakeups[shard]
        last_beat = 0.0
        while not self._stop.is_set():
            records = tailer.read_batch(self.batch_max_records)
            if records:
                if _fl.ACTIVE and self._fire_fault(conn, label):
                    return
                with _span("repl.ship", shard=label, batch=len(records)):
                    conn.sendall(encode(R_APPEND, {
                        "shard": shard, "records": records,
                    }))
                    conn.sendall(encode(R_COMMIT, {
                        "shard": shard, "lsn": records[-1]["n"],
                    }))
                if _obs.enabled():
                    _M_SHIPPED.inc(len(records), shard=label)
                    _M_BATCHES.inc(shard=label)
                last_beat = monotonic()
                continue
            now = monotonic()
            if now - last_beat >= self.heartbeat_s:
                conn.sendall(encode(R_HEARTBEAT, {
                    "shard": shard, "epoch": epoch,
                    "tip": tailer.next_lsn - 1,
                }))
                last_beat = now
            wakeup.wait(self.poll_interval_s)
            wakeup.clear()

    def _fire_fault(self, conn: socket.socket, label: str) -> bool:
        """``repl.link`` hook; True when this connection must die."""
        action = _fl.fire("repl.link", shard=label)
        if action is None:
            return False
        if action.kind == "delay" and action.seconds > 0:
            sleep(action.seconds)
            return False
        if action.kind == "partition":
            _LOG.warning("repl.link_partitioned", shard=label)
            self._sever_all()
            return True
        # drop: this shipping connection dies mid-stream.  shutdown()
        # before close(): the ack-reader thread's blocked recv pins the
        # kernel socket, so close() alone would never send FIN and the
        # standby would wait on a half-dead link forever
        _LOG.warning("repl.link_dropped", shard=label)
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass
        return True

    @staticmethod
    def _first_available_lsn(directory: Path) -> int:
        segments = list_segments(directory)
        if not segments:
            return 1
        first = segment_first_lsn(segments[0][1])
        return first if first is not None else 1

    @staticmethod
    def _tip_hint(directory: Path) -> int:
        """Cheap tip estimate for the handshake (exact tips ride COMMITs)."""
        segments = list_segments(directory)
        if not segments:
            return 0
        first = segment_first_lsn(segments[-1][1])
        return (first - 1) if first is not None else 0
