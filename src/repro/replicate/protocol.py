"""REPL wire protocol: shipping WAL records from a primary to standbys.

The replication stream reuses the gateway's physical framing (14-byte
CRC-checked header + JSON payload, :mod:`repro.gateway.protocol`) with
its own frame vocabulary and version space — the decoder is the same
class, parametrized; the conversation is different:

``HANDSHAKE``
    Standby → source: which shard it replicates, its current epoch and
    the first LSN it still needs (``start = applied + 1``).  Source →
    standby: the agreed start (bumped forward when compaction has
    already dropped the requested prefix), the shard's current epoch
    and durable tip, and — on a bumped start — the snapshot documents
    covering everything below it, so a standby can join mid-stream.
``APPEND``
    Source → standby: a batch of WAL records in LSN order, exactly as
    the primary journalled them (the ``n`` stamps travel unchanged —
    LSNs are the replication cursor *and* the idempotence key).
``COMMIT``
    Source → standby: the durability watermark.  A standby fsyncs its
    copy and applies records only up to the last COMMIT, so a link
    that dies mid-batch leaves an un-committed tail the promotion path
    truncates instead of a half-applied state.
``HEARTBEAT``
    Source → standby while idle: epoch + tip.  Standbys measure link
    liveness (promotion triggers on missed heartbeats) and lag from
    it.
``ERROR``
    Either direction; ``code="fenced"`` means the peer's epoch proves
    this primary has been deposed and must stop shipping.
``ACK``
    Standby → source: the COMMIT watermark the standby has durably
    mirrored (fsynced into its own log).  The source folds acks into
    its per-shard quorum ledger; with quorum commit enabled
    (``PersistenceConfig.quorum_standbys``) the primary's
    ``Journal.wait_durable`` resolves only once enough standbys have
    acked the LSN.

The handshake also carries the standby's full **shard-subscription
set** (``subs``): a standby may follow a subset of the primary's
shards, so several standbys can split one keyspace between them (the
placement map in :mod:`repro.cluster` decides who owns what).
"""

from __future__ import annotations

from typing import Any, Dict

from ..gateway.protocol import (
    FrameDecoder,
    ProtocolError,
    encode_frame as _encode_frame,
)

__all__ = [
    "REPL_VERSION",
    "REPL_VERSIONS",
    "R_ACK",
    "R_APPEND",
    "R_COMMIT",
    "R_ERROR",
    "R_FRAME_NAMES",
    "R_FRAME_TYPES",
    "R_HANDSHAKE",
    "R_HEARTBEAT",
    "ReplicationError",
    "encode",
    "make_decoder",
]

#: the replication protocol's own version byte (independent of the
#: gateway's client protocol — the two streams never share a socket)
REPL_VERSION = 1
REPL_VERSIONS = frozenset({REPL_VERSION})

R_HANDSHAKE = 1
R_APPEND = 2
R_COMMIT = 3
R_HEARTBEAT = 4
R_ERROR = 5
R_ACK = 6

R_FRAME_NAMES: Dict[int, str] = {
    R_HANDSHAKE: "handshake",
    R_APPEND: "append",
    R_COMMIT: "commit",
    R_HEARTBEAT: "heartbeat",
    R_ERROR: "error",
    R_ACK: "ack",
}
R_FRAME_TYPES = frozenset(R_FRAME_NAMES)


class ReplicationError(RuntimeError):
    """Replication-layer failures (fencing, bad handshakes, dead links)."""


def encode(ftype: int, payload: Dict[str, Any]) -> bytes:
    """Frame one REPL payload (same physical framing as the gateway)."""
    return _encode_frame(
        ftype, payload,
        version=REPL_VERSION,
        frame_types=R_FRAME_TYPES,
        versions=REPL_VERSIONS,
    )


def make_decoder(max_frame_bytes: int = 1 << 22) -> FrameDecoder:
    """A gateway decoder re-vocabularied for the REPL stream.

    The frame bound is wider than the gateway's: an APPEND batch can
    carry many records, and a snapshot-bootstrap handshake carries
    whole session states.
    """
    return FrameDecoder(
        max_frame_bytes,
        frame_types=R_FRAME_TYPES,
        versions=REPL_VERSIONS,
    )


def require(payload: Dict[str, Any], *keys: str) -> None:
    """Raise :class:`ProtocolError` unless every key is present."""
    for key in keys:
        if key not in payload:
            raise ProtocolError(f"REPL payload missing {key!r}")
