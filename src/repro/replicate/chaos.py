"""Kill-the-primary chaos: replicate under faults, promote, audit.

``run_repl_chaos`` is the harness behind ``repro chaos repl-kill-primary``
and the failover soak tests.  One run tells the whole replication
story end to end:

1. **Arm** a compiled fault plan targeting the ``repl.link`` site
   (delayed batches, severed shipping connections).
2. **Soak**: a persisted :class:`SessionManager` drives cohort-scripted
   sessions while a :class:`ReplicationSource` ships its WAL to a
   :class:`StandbyReplica`, reconnect-resuming through every injected
   link fault.
3. **Kill**: once a fraction of the sessions has finished, the primary
   is discard-shutdown — mid-flight sessions die exactly as in the
   persist chaos harness.  The standby catches up to the primary's
   durable tips, then the source goes away and heartbeats stop.
4. **Promote**: the :class:`Promoter` notices the silence, fences the
   epoch, truncates any un-committed tail and adopts the log.
5. **Audit** the durability contract across the failover:

   * *zero lost durable inputs* — every record in the primary's journal
     is present in the promoted standby's journal, shard by shard;
   * *bit-identity* — every mirrored session's state digest equals an
     independent reference replay of its applied ops, and the digests
     recovery computes from the promoted log agree with the standby's
     in-memory mirror;
   * *service resumes* — a fresh manager recovers from the promoted
     directory and drains the surviving sessions to completion;
   * *the plan fired* — every armed fault injected its scheduled count.

The :class:`ReplChaosReport` is plain data (JSON-able) for the CI
replication-smoke artifact.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, perf_counter, sleep
from typing import Any, Dict, List, Optional, Union

from ..faultline import install, uninstall
from ..faultline.chaos import reference_digest
from ..faultline.plan import CompiledPlan, FaultPlan, builtin_plans
from ..persist import PersistenceConfig, scan_journal, state_digest
from ..persist.records import REC_FENCE, ops_from_dicts
from ..serve import ServeConfig, SessionManager
from ..serve.session import session_factory_for_script
from .promote import Promoter
from .replica import StandbyReplica
from .source import ReplicationSource

__all__ = ["ReplChaosReport", "run_repl_chaos"]


@dataclass
class ReplChaosReport:
    """Everything one replication chaos run proved (or failed to)."""

    plan: str
    seed: int
    shards: int
    sessions: int
    submitted: int
    completed_before_kill: int
    primary_records: int
    replica_records: int
    lost_records: int
    caught_up: bool
    promote_detected: bool
    promoted_epochs: Dict[int, int] = field(default_factory=dict)
    truncated_bytes: int = 0
    digests_checked: int = 0
    digest_mismatches: List[str] = field(default_factory=list)
    resumed_live: int = 0
    resumed_completed: int = 0
    faults: List[Dict[str, Any]] = field(default_factory=list)
    injected_total: int = 0
    all_faults_fired: bool = False
    duration_s: float = 0.0

    @property
    def bit_identical(self) -> bool:
        """Every digest audited matched its reference replay."""
        return self.digests_checked > 0 and not self.digest_mismatches

    @property
    def ok(self) -> bool:
        """The gate the failover tests and CI smoke assert on."""
        return (
            self.lost_records == 0
            and self.caught_up
            and self.promote_detected
            and self.bit_identical
            and self.all_faults_fired
            and self.resumed_live == self.resumed_completed
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "shards": self.shards,
            "sessions": self.sessions,
            "submitted": self.submitted,
            "completed_before_kill": self.completed_before_kill,
            "primary_records": self.primary_records,
            "replica_records": self.replica_records,
            "lost_records": self.lost_records,
            "caught_up": self.caught_up,
            "promote_detected": self.promote_detected,
            "promoted_epochs": {
                str(k): v for k, v in self.promoted_epochs.items()
            },
            "truncated_bytes": self.truncated_bytes,
            "digests_checked": self.digests_checked,
            "digest_mismatches": list(self.digest_mismatches),
            "bit_identical": self.bit_identical,
            "resumed_live": self.resumed_live,
            "resumed_completed": self.resumed_completed,
            "faults": list(self.faults),
            "injected_total": self.injected_total,
            "all_faults_fired": self.all_faults_fired,
            "ok": self.ok,
            "duration_s": round(self.duration_s, 3),
        }


def _journal_record_keys(directory: Path) -> List[str]:
    """Canonical keys for every payload record in one shard journal.

    Epoch fences are administrative (promotion writes them on the
    standby only) and excluded, so primary and promoted logs compare
    on payload alone.
    """
    report = scan_journal(directory, truncate=False)
    return [
        json.dumps(record, sort_keys=True)
        for record in report.records
        if record.get("t") != REC_FENCE
    ]


def run_repl_chaos(
    plan: Union[str, FaultPlan, CompiledPlan] = "repl-kill-primary",
    *,
    seed: Optional[int] = None,
    sessions: int = 16,
    n_shards: int = 2,
    primary_dir: Optional[Union[str, Path]] = None,
    standby_dir: Optional[Union[str, Path]] = None,
    game: Any = None,
    scripts: Optional[List[Any]] = None,
    tick_interval_s: float = 0.005,
    max_steps_per_tick: int = 8,
    group_window_s: float = 0.004,
    kill_after_fraction: float = 0.5,
    heartbeat_timeout_s: float = 0.3,
    timeout_s: float = 60.0,
) -> ReplChaosReport:
    """One soak-kill-promote-audit cycle for the replication stack.

    ``kill_after_fraction`` of the sessions must END before the primary
    dies; the rest are mid-flight and survive only through the standby.
    With the directories unset, both logs live in temp directories
    removed afterwards.  Snapshots and compaction are off on purpose:
    the record-set equality audit is then exact (every durable record
    is still on disk on both sides).
    """
    if isinstance(plan, str):
        plans = builtin_plans()
        if plan not in plans:
            raise ValueError(
                f"unknown plan {plan!r} (built-ins: {sorted(plans)})"
            )
        plan = plans[plan]
    compiled = plan.compile(seed) if isinstance(plan, FaultPlan) else plan
    if sessions < 1:
        raise ValueError("sessions must be >= 1")

    from ..core import fetch_quest_game
    from ..students import cohort_scripts

    t0 = perf_counter()
    if game is None:
        game = fetch_quest_game(n_quests=2, title="repl chaos soak").build()
    if scripts is None:
        scripts = cohort_scripts(game, min(8, sessions), seed=compiled.seed)
    assignments = [
        (f"{scripts[k % len(scripts)].player_id}#r{k}",
         scripts[k % len(scripts)])
        for k in range(sessions)
    ]

    tmp_primary = tmp_standby = None
    if primary_dir is None:
        tmp_primary = tempfile.TemporaryDirectory(prefix="repro-repl-p-")
        primary_dir = tmp_primary.name
    if standby_dir is None:
        tmp_standby = tempfile.TemporaryDirectory(prefix="repro-repl-s-")
        standby_dir = tmp_standby.name
    persistence = PersistenceConfig(
        directory=primary_dir,
        group_window_s=group_window_s,
        snapshot_every=0,
        compact=False,
    )
    manager = SessionManager(ServeConfig(
        n_shards=n_shards,
        tick_interval_s=tick_interval_s,
        max_steps_per_tick=max_steps_per_tick,
        persistence=persistence,
        durable_wait_s=1.0,
    ))

    kill_target = max(1, int(sessions * kill_after_fraction))
    deadline = monotonic() + timeout_s
    injector = install(compiled)
    standby: Optional[StandbyReplica] = None
    promote_report = None
    caught_up = False
    promote_detected = False
    try:
        # small batches on purpose: each APPEND is one ``repl.link``
        # fault-site hit, and the plan's hit schedule must be reachable
        # within a short soak
        with ReplicationSource(
            persistence, n_shards,
            batch_max_records=4, poll_interval_s=0.01, heartbeat_s=0.05,
        ) as source:
            source.attach(manager)
            manager.start()
            standby = StandbyReplica(
                standby_dir, game, n_shards,
                source.host, source.port,
                # reads are not under test here: never refuse on lag
                max_read_lag_records=1 << 30,
                reconnect_backoff_s=0.02,
            ).start()
            submitted = 0
            for pid, script in assignments:
                if manager.submit(
                    pid, session_factory_for_script(game, script)
                ):
                    submitted += 1
            while (manager.completed_sessions < kill_target
                   and monotonic() < deadline):
                sleep(0.01)
            completed_before_kill = manager.completed_sessions

            # the kill: discard everything still mid-flight (journals
            # close cleanly; the disk holds every durable record)
            manager.shutdown(drain=False)

            tips = {
                shard: scan_journal(
                    persistence.shard_dir(shard), truncate=False
                ).tip_lsn
                for shard in range(n_shards)
                if persistence.shard_dir(shard).is_dir()
            }
            caught_up = standby.wait_caught_up(
                tips, timeout_s=max(1.0, deadline - monotonic())
            )
        # source stopped: heartbeats are now silent
        promoter = Promoter(standby, heartbeat_timeout_s=heartbeat_timeout_s)
        promote_detected = promoter.wait_for_failure(
            timeout_s=max(1.0, heartbeat_timeout_s * 20)
        )
        promote_report = promoter.promote(game=game)
    finally:
        uninstall()
        if standby is not None:
            standby.stop()
        manager.shutdown(drain=False)  # idempotent: no-op after the kill

    # -- the audit -------------------------------------------------------
    by_pid = dict(assignments)
    mismatches: List[str] = []
    checked = 0
    primary_records = replica_records = lost = 0
    standby_root = Path(standby_dir)
    for shard in range(n_shards):
        p_dir = persistence.shard_dir(shard)
        s_dir = standby_root / f"shard-{shard:02d}"
        p_keys = _journal_record_keys(p_dir) if p_dir.is_dir() else []
        s_keys = _journal_record_keys(s_dir) if s_dir.is_dir() else []
        primary_records += len(p_keys)
        replica_records += len(s_keys)
        missing = set(p_keys) - set(s_keys)
        lost += len(missing)

    # bit-identity: every mirrored session vs an independent replay
    replica_digests: Dict[str, str] = {}
    for shard_state in standby.shard_states():
        for sid, sess in shard_state.sessions.items():
            checked += 1
            actual = state_digest(sess.engine.state)
            replica_digests[sid] = actual
            script = by_pid.get(sid)
            ops = (
                ops_from_dicts(sess.ops) if sess.ops
                else (script.ops if script else [])
            )
            if actual != reference_digest(game, ops, sess.dt, sess.cursor):
                mismatches.append(sid)
    # and the promoted log recovers to the very same states
    for sid, digest in promote_report.digests.items():
        checked += 1
        if replica_digests.get(sid) != digest:
            mismatches.append(f"recover:{sid}")

    # service resumes from the promoted directory
    resume_manager = SessionManager(ServeConfig(
        n_shards=n_shards,
        tick_interval_s=tick_interval_s,
        max_steps_per_tick=max_steps_per_tick,
        persistence=PersistenceConfig(
            directory=standby_dir, group_window_s=group_window_s,
            snapshot_every=0, compact=False,
        ),
        durable_wait_s=1.0,
    ))
    reports = resume_manager.recover(game)
    resumed_live = sum(len(r.sessions) for r in reports)
    resume_manager.start()
    resume_manager.drain(timeout=max(1.0, deadline - monotonic()))
    resumed_completed = resume_manager.completed_sessions
    resume_manager.shutdown(drain=False)

    if tmp_primary is not None:
        tmp_primary.cleanup()
    if tmp_standby is not None:
        tmp_standby.cleanup()

    return ReplChaosReport(
        plan=compiled.name,
        seed=compiled.seed,
        shards=n_shards,
        sessions=sessions,
        submitted=submitted,
        completed_before_kill=completed_before_kill,
        primary_records=primary_records,
        replica_records=replica_records,
        lost_records=lost,
        caught_up=caught_up,
        promote_detected=promote_detected,
        promoted_epochs=promote_report.epochs,
        truncated_bytes=sum(
            row["truncated_bytes"] for row in promote_report.shards
        ),
        digests_checked=checked,
        digest_mismatches=mismatches,
        resumed_live=resumed_live,
        resumed_completed=resumed_completed,
        faults=injector.report(),
        injected_total=injector.injected_total,
        all_faults_fired=injector.all_fired(),
        duration_s=perf_counter() - t0,
    )
