"""Cohort runner: many students, one platform, aggregated outcomes.

Turns a platform runner (VGBL play, or one of the baseline lessons) into
:class:`~repro.learning.analytics.OutcomeRecord` rows via the pre-test →
run → acquisition roll → post-test protocol, then summarises.

The acquisition roll happens here, not inside the platform runners, so
all platforms share exactly the same retention model — only *what was
exposed, how actively, and at what attention* differs, which is the
paper's mechanism under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.project import CompiledGame
from ..learning.analytics import CohortSummary, OutcomeRecord, summarize
from ..learning.assessment import Test, hake_gain
from ..learning.knowledge import KnowledgeMap
from .model import StudentProfile, sample_profile
from .player import PlayResult, simulate_play

__all__ = ["ExposureReport", "roll_acquisition", "run_vgbl_cohort"]

#: probability an item is already known before the lesson
PRIOR_KNOWLEDGE_P = 0.10


@dataclass(slots=True)
class ExposureReport:
    """What one session exposed: item id → delivered actively?"""

    exposures: Dict[str, bool]
    mean_attention: float


def roll_acquisition(
    profile: StudentProfile,
    report: ExposureReport,
    rng: np.random.Generator,
) -> Set[str]:
    """Which exposed items stick, given the shared retention model."""
    acquired: Set[str] = set()
    # Attention scales retention with a floor: even a distracted student
    # retains *something* from material they actually saw.
    attn_factor = 0.25 + 0.75 * report.mean_attention
    for item_id, active in report.exposures.items():
        base = profile.retention_active if active else profile.retention_passive
        if rng.random() < base * attn_factor:
            acquired.add(item_id)
    return acquired


def _measure_gain(
    profile: StudentProfile,
    kmap: KnowledgeMap,
    report: ExposureReport,
    rng: np.random.Generator,
) -> float:
    """Pre-test → acquisition → post-test → Hake gain."""
    test = Test(kmap, repeats=3)
    prior: Set[str] = {
        i.item_id for i in kmap.items if rng.random() < PRIOR_KNOWLEDGE_P
    }
    pre = test.administer(prior, rng)
    acquired = roll_acquisition(profile, report, rng)
    post = test.administer(prior | acquired, rng)
    return hake_gain(pre, post)


def run_vgbl_cohort(
    game: CompiledGame,
    kmap: KnowledgeMap,
    n_students: int,
    seed: int,
    max_seconds: float = 1800.0,
    archetype: Optional[str] = None,
) -> Tuple[CohortSummary, List[OutcomeRecord]]:
    """Simulate ``n_students`` playing the game; returns summary + rows."""
    if n_students < 1:
        raise ValueError("n_students must be >= 1")
    rng = np.random.default_rng(seed)
    records: List[OutcomeRecord] = []
    for k in range(n_students):
        profile = sample_profile(f"vgbl-{k}", rng, archetype=archetype)
        play: PlayResult = simulate_play(game, profile, rng, max_seconds=max_seconds)
        exposures = kmap.exposures_from_session(
            entered_scenarios=play.entered_scenarios,
            fired_bindings=play.fired_bindings,
            examined_objects=play.examined_objects,
            dialogue_nodes=play.dialogue_nodes,
        )
        report = ExposureReport(
            exposures=exposures, mean_attention=play.mean_attention
        )
        gain = _measure_gain(profile, kmap, report, rng)
        records.append(
            OutcomeRecord(
                player_id=profile.player_id,
                platform="vgbl",
                time_on_task=play.time_on_task,
                completed=play.completed,
                dropped_out=play.dropped_out,
                interactions=play.interactions,
                knowledge_gain=gain,
                final_engagement=play.final_attention,
                score=play.score,
            )
        )
    return summarize(records), records
