"""Simulated student cohorts: profiles, attention dynamics, play policies
and cohort aggregation (the E6 substrate)."""

from .cohort import (
    PRIOR_KNOWLEDGE_P,
    ExposureReport,
    roll_acquisition,
    run_vgbl_cohort,
)
from .model import ARCHETYPES, AttentionModel, StudentProfile, sample_profile
from .player import DEVICE_TIME_FACTORS, PlayResult, simulate_play
from .scripts import PlayerScript, cohort_scripts, script_for_profile

__all__ = [
    "ARCHETYPES",
    "DEVICE_TIME_FACTORS",
    "AttentionModel",
    "ExposureReport",
    "PRIOR_KNOWLEDGE_P",
    "PlayResult",
    "PlayerScript",
    "StudentProfile",
    "cohort_scripts",
    "roll_acquisition",
    "run_vgbl_cohort",
    "sample_profile",
    "script_for_profile",
    "simulate_play",
]
