"""Simulated students: profiles, attention dynamics, knowledge retention.

The paper *claims* students are attracted and learn (§abstract, §2.2) but
reports no study.  E6 substitutes a simulated cohort whose dynamics
follow the standard assumptions of the engagement literature:

* **attention** is a level in [0, 1] that decays exponentially during
  passive exposure (time constant = the student's attention span) and is
  boosted by *novel, responsive* events — feedback popups, rewards, new
  scenes.  Repeated unresponsive interactions ("nothing happens")
  actively erode it.  A student whose attention falls below their
  dropout threshold quits.
* **retention**: an exposed knowledge item is acquired with a probability
  that is higher for *active* deliveries (the student made a decision —
  §3.2's "obtain knowledge from the process of making decision and
  interaction") than for passive ones, and scales with the attention
  level at exposure time.

The constants are documented here in one place and swept by the E6
ablation bench; the paper-shaped conclusion (game > slideshow > linear
video) holds across the swept band because it follows from the structure
(games generate responsive novelty; linear video cannot), not from the
constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ARCHETYPES",
    "AttentionModel",
    "StudentProfile",
    "sample_profile",
]


@dataclass(frozen=True, slots=True)
class StudentProfile:
    """One simulated student's stable traits."""

    player_id: str
    curiosity: float          #: appetite for unexplored options, [0, 1]
    diligence: float          #: tendency to follow instructions, [0, 1]
    attention_span: float     #: passive-decay time constant, seconds
    retention_active: float   #: P(acquire | active exposure, full attention)
    retention_passive: float  #: P(acquire | passive exposure, full attention)
    dropout_threshold: float  #: attention level below which the student quits
    action_seconds: float     #: mean seconds per deliberate action

    def __post_init__(self) -> None:
        for name in ("curiosity", "diligence", "retention_active", "retention_passive"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.attention_span <= 0:
            raise ValueError("attention_span must be positive")
        if not 0.0 <= self.dropout_threshold < 1.0:
            raise ValueError("dropout_threshold must be in [0, 1)")
        if self.action_seconds <= 0:
            raise ValueError("action_seconds must be positive")


#: Archetype parameter ranges (uniform sampling bands).
ARCHETYPES: Dict[str, Dict[str, Tuple[float, float]]] = {
    # Curious self-directed player: explores everything.
    "explorer": {
        "curiosity": (0.7, 0.95),
        "diligence": (0.4, 0.7),
        "attention_span": (240.0, 420.0),
        "retention_active": (0.65, 0.85),
        "retention_passive": (0.25, 0.40),
        "dropout_threshold": (0.08, 0.15),
        "action_seconds": (3.0, 6.0),
    },
    # Goal-driven student: follows the quest efficiently.
    "achiever": {
        "curiosity": (0.3, 0.6),
        "diligence": (0.75, 0.95),
        "attention_span": (300.0, 480.0),
        "retention_active": (0.70, 0.90),
        "retention_passive": (0.30, 0.45),
        "dropout_threshold": (0.05, 0.12),
        "action_seconds": (2.5, 5.0),
    },
    # Easily distracted student: the population the paper worries about.
    "struggler": {
        "curiosity": (0.2, 0.5),
        "diligence": (0.2, 0.5),
        "attention_span": (90.0, 200.0),
        "retention_active": (0.45, 0.65),
        "retention_passive": (0.12, 0.25),
        "dropout_threshold": (0.18, 0.30),
        "action_seconds": (4.0, 8.0),
    },
}

#: Default cohort mix (must sum to 1).
DEFAULT_MIX: Dict[str, float] = {"explorer": 0.3, "achiever": 0.4, "struggler": 0.3}


def sample_profile(
    player_id: str,
    rng: np.random.Generator,
    archetype: Optional[str] = None,
    mix: Optional[Dict[str, float]] = None,
) -> StudentProfile:
    """Draw a student, optionally forcing an archetype."""
    if archetype is None:
        m = mix or DEFAULT_MIX
        names = sorted(m)
        probs = np.asarray([m[n] for n in names], dtype=np.float64)
        probs = probs / probs.sum()
        archetype = str(rng.choice(names, p=probs))
    try:
        bands = ARCHETYPES[archetype]
    except KeyError:
        raise ValueError(
            f"unknown archetype {archetype!r}; known: {sorted(ARCHETYPES)}"
        ) from None
    draw = {k: float(rng.uniform(lo, hi)) for k, (lo, hi) in bands.items()}
    return StudentProfile(player_id=player_id, **draw)


class AttentionModel:
    """Attention level with decay, boosts and erosion.

    Event boost magnitudes (multiplied by the student's curiosity for
    novelty-type events):

    =================  ======  =========================================
    event              boost   meaning
    =================  ======  =========================================
    new_scene           0.18   first entry to an unseen scenario
    feedback            0.10   a popup/dialogue answered an action
    reward              0.22   bonus points / achievement granted
    progress            0.12   quest state advanced (flag/property set)
    page_turn           0.06   slideshow navigation (micro-interaction)
    cut                 0.02   passive shot change in a linear video
    nothing            -0.08   an action produced no response
    repeat             -0.03   re-seeing already-seen feedback
    =================  ======  =========================================
    """

    BOOSTS: Dict[str, float] = {
        "new_scene": 0.18,
        "feedback": 0.10,
        "reward": 0.22,
        "progress": 0.12,
        "page_turn": 0.06,  # self-paced micro-interaction (slideshow)
        "cut": 0.02,        # passive shot change (linear video)
        "nothing": -0.08,
        "repeat": -0.03,
    }
    #: boosts scaled by curiosity (novelty-seeking events)
    CURIOSITY_SCALED = {"new_scene", "feedback", "page_turn"}

    def __init__(self, profile: StudentProfile, initial: float = 0.9) -> None:
        self.profile = profile
        self.level = float(initial)
        #: time-weighted mean attention (integrates level over time)
        self._integral = 0.0
        self._time = 0.0

    def decay(self, dt: float) -> None:
        """Passive exponential decay over ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0:
            return
        # Integrate the exponential segment exactly.
        tau = self.profile.attention_span
        start = self.level
        self.level = start * math.exp(-dt / tau)
        self._integral += start * tau * (1.0 - math.exp(-dt / tau))
        self._time += dt

    def event(self, kind: str) -> None:
        """Apply one event boost/erosion."""
        try:
            delta = self.BOOSTS[kind]
        except KeyError:
            raise ValueError(f"unknown attention event {kind!r}") from None
        if kind in self.CURIOSITY_SCALED:
            delta *= 0.5 + self.profile.curiosity
        self.level = min(1.0, max(0.0, self.level + delta))

    @property
    def dropped_out(self) -> bool:
        return self.level < self.profile.dropout_threshold

    @property
    def mean_level(self) -> float:
        """Time-weighted mean attention so far (current level if no time
        has passed)."""
        if self._time <= 0:
            return self.level
        return self._integral / self._time

    def retention_probability(self, active: bool) -> float:
        """P(acquire an item exposed right now).

        Attention scales retention with a 0.25 floor (matching
        :func:`repro.students.cohort.roll_acquisition`): a distracted
        student still retains something from material actually seen.
        """
        base = (
            self.profile.retention_active
            if active
            else self.profile.retention_passive
        )
        return base * (0.25 + 0.75 * self.level)
