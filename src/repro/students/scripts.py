"""Cohort-style player scripts: the load-test workload of the serve layer.

A *player script* is a pre-computed session plan — a sequence of raw
input events and abstract solver moves one simulated student will take —
that the serving layer (:mod:`repro.serve`) can replay against a fresh
:class:`~repro.runtime.engine.GameEngine` without solving or sampling at
serve time.  Scripts are generated the same way the E6 cohort is built:
sample a :class:`~repro.students.model.StudentProfile`, derive behaviour
from it (curious students examine more objects before getting to work),
and finish with the game's solver-proven winning walkthrough so every
session terminates deterministically.

The split matters for load generation: script generation costs one
solver run per game and a few RNG draws per student, all paid before the
clock starts; replay is a cheap, allocation-light loop the shard threads
can drive at tens of thousands of steps per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.project import CompiledGame
from ..core.solver import Move, solve
from ..runtime.inputs import InputEvent, KeyPress, MouseClick
from .model import StudentProfile, sample_profile

__all__ = ["PlayerScript", "ScriptOp", "cohort_scripts", "script_for_profile"]

#: One scripted step: a raw input event (dispatched through
#: ``handle_input``, exercising gesture interpretation) or an abstract
#: solver move (applied through the trigger API, like the cohort player).
ScriptOp = Union[InputEvent, Move]


@dataclass(slots=True)
class PlayerScript:
    """A pre-planned session for one simulated player."""

    player_id: str
    ops: List[ScriptOp] = field(default_factory=list)
    #: simulated seconds ticked after each op (profile pacing)
    dt: float = 0.25

    def __len__(self) -> int:
        return len(self.ops)


def script_for_profile(
    game: CompiledGame,
    profile: StudentProfile,
    base_moves: Sequence[Move],
    rng: np.random.Generator,
    max_explore: int = 4,
) -> PlayerScript:
    """Plan one session: exploratory prefix + the winning walkthrough.

    The prefix length scales with the profile's curiosity (explorers
    poke at everything before following the quest); it always includes
    at least one raw pointer event so the engine's gesture-interpretation
    path — not just the trigger API — sees load.
    """
    ops: List[ScriptOp] = []
    start_objects = [o.object_id for o in game.scenarios[game.start].objects]
    n_explore = int(round(profile.curiosity * max_explore))
    for _ in range(n_explore):
        if not start_objects:
            break
        target = str(rng.choice(start_objects))
        ops.append(Move(kind="examine", object_id=target))
    # Raw input events: a right-click examine somewhere in the frame and
    # an avatar nudge, so dispatch-latency histograms get real samples.
    ops.append(
        MouseClick(
            1.0 + float(rng.integers(0, 8)),
            1.0 + float(rng.integers(0, 8)),
            button="right",
        )
    )
    ops.append(KeyPress("right"))
    ops.extend(base_moves)
    # Pacing: deliberate students tick more simulated time per action.
    dt = float(np.clip(profile.action_seconds / 16.0, 0.05, 1.0))
    return PlayerScript(player_id=profile.player_id, ops=ops, dt=dt)


def cohort_scripts(
    game: CompiledGame,
    n: int,
    seed: int = 0,
    archetype: Optional[str] = None,
    max_explore: int = 4,
) -> List[PlayerScript]:
    """Generate ``n`` player scripts for ``game`` (one solver run total).

    Raises :class:`ValueError` when the game is not provably winnable —
    an unwinnable load script would never terminate its sessions.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    result = solve(game)
    if not result.winnable:
        raise ValueError(
            "cannot script an unwinnable game "
            f"(solver verdict: {result.winnable!r})"
        )
    rng = np.random.default_rng(seed)
    scripts: List[PlayerScript] = []
    for k in range(n):
        profile = sample_profile(f"load-{k}", rng, archetype=archetype)
        scripts.append(
            script_for_profile(
                game, profile, result.winning_script, rng, max_explore=max_explore
            )
        )
    return scripts
