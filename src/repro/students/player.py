"""Simulated play of a compiled VGBL game by one student.

The simulated student drives the *real* engine (video decode skipped)
through the same abstract moves the winnability solver uses, but chooses
them with a behavioural policy instead of BFS:

* unexplored moves are preferred, proportionally to curiosity;
* quest-advancing moves (take / use-item) are preferred proportionally
  to diligence;
* moves whose feedback was already seen are discouraged.

Attention evolves per :class:`~repro.students.model.AttentionModel`;
the run ends on win, dropout, or the time cap.  The function returns the
raw material E6 needs: outcome flags, interaction counts, attention
trace, and the session's knowledge-exposure sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

import numpy as np

from ..core.project import CompiledGame
from ..core.solver import Move, _apply, _legal_moves
from ..events.bus import Notice
from .model import AttentionModel, StudentProfile

__all__ = ["PlayResult", "simulate_play"]


@dataclass(slots=True)
class PlayResult:
    """Everything observable about one simulated session."""

    completed: bool
    dropped_out: bool
    time_on_task: float
    interactions: int
    final_attention: float
    mean_attention: float
    score: int
    scenarios_visited: int
    #: exposure sets for the knowledge map
    entered_scenarios: Set[str] = field(default_factory=set)
    fired_bindings: Set[str] = field(default_factory=set)
    examined_objects: Set[str] = field(default_factory=set)
    dialogue_nodes: Set[str] = field(default_factory=set)
    #: (time, attention) trace, one sample per action
    attention_trace: List[Tuple[float, float]] = field(default_factory=list)


def _move_key(m: Move) -> Tuple:
    return (m.kind, m.object_id, m.item_id, m.dialogue_path)


def _choose_move(
    moves: Sequence[Move],
    tried: Set[Tuple],
    profile: StudentProfile,
    rng: np.random.Generator,
) -> Move:
    """Behavioural softmax-free weighted choice over candidate moves."""
    weights = np.empty(len(moves), dtype=np.float64)
    for i, m in enumerate(moves):
        w = 1.0
        if _move_key(m) not in tried:
            w *= 1.0 + 2.0 * profile.curiosity
        else:
            w *= 0.15
        if m.kind in ("take", "use"):
            w *= 1.0 + 2.0 * profile.diligence
        if m.kind == "dialogue" and _move_key(m) not in tried:
            w *= 1.5
        weights[i] = w
    weights /= weights.sum()
    idx = int(rng.choice(len(moves), p=weights))
    return moves[idx]


#: action-time multipliers per control device, calibrated to the E5
#: device-cost measurements (keyboard_mouse is the reference).
DEVICE_TIME_FACTORS = {
    "keyboard_mouse": 1.0,
    "tablet": 1.2,
    "pda": 1.7,
    "remote": 2.3,
}


def simulate_play(
    game: CompiledGame,
    profile: StudentProfile,
    rng: np.random.Generator,
    max_seconds: float = 1800.0,
    max_actions: int = 400,
    device: str = "keyboard_mouse",
) -> PlayResult:
    """Run one student through one game; see module docstring.

    ``device`` scales per-action time by the E5-calibrated factor —
    slower devices stretch sessions and therefore attention decay,
    which is how input hardware reaches the engagement results.
    """
    try:
        time_factor = DEVICE_TIME_FACTORS[device]
    except KeyError:
        raise ValueError(
            f"unknown device {device!r}; known: {sorted(DEVICE_TIME_FACTORS)}"
        ) from None
    engine = game.new_engine(with_video=False)
    engine.start()
    attention = AttentionModel(profile)

    fired_bindings: Set[str] = set()
    dialogue_nodes: Set[str] = set()
    seen_popups: Set[str] = set()
    # Per-action effect collectors, filled by the bus subscriber.
    effects: List[Notice] = []
    engine.bus.subscribe("*", effects.append)

    examined: Set[str] = set()
    tried: Set[Tuple] = set()
    trace: List[Tuple[float, float]] = []
    elapsed = 0.0
    interactions = 0

    while (
        engine.running
        and not attention.dropped_out
        and elapsed < max_seconds
        and interactions < max_actions
    ):
        moves = _legal_moves(engine)
        if not moves:
            break
        move = _choose_move(moves, tried, profile, rng)
        tried.add(_move_key(move))

        before_score = engine.state.score
        before_scene = engine.state.current_scenario
        before_visited = set(engine.state.visited)
        before_flags = dict(engine.state.flags)
        before_props = dict(engine.state.prop_overrides)

        effects.clear()
        try:
            _apply(engine, move)
        except Exception:
            # A move the real UI would have prevented; costs time, gives
            # nothing back.
            pass
        interactions += 1
        if move.kind == "examine" and move.object_id:
            examined.add(move.object_id)

        # Time passes for the action itself (device-scaled).
        dt = time_factor * float(
            rng.gamma(shape=4.0, scale=profile.action_seconds / 4.0)
        )
        attention.decay(dt)
        elapsed += dt

        # Translate observed effects into attention events.
        got_response = False
        for n in effects:
            if n.topic == "binding":
                fired_bindings.add(n.payload["binding_id"])
            elif n.topic == "dialogue":
                dialogue_nodes.add(
                    f"{n.payload['dialogue_id']}:{n.payload['node']}"
                )
                got_response = True
                attention.event("feedback")
            elif n.topic == "popup":
                got_response = True
                key = f"{n.payload['kind']}:{n.payload['content']}"
                if n.payload["content"] == "Nothing happens.":
                    attention.event("nothing")
                elif key in seen_popups:
                    attention.event("repeat")
                else:
                    seen_popups.add(key)
                    attention.event("feedback")
            elif n.topic == "reward":
                got_response = True
                attention.event("reward")
            elif n.topic == "item":
                got_response = True
                attention.event("progress")
        if engine.state.current_scenario != before_scene:
            got_response = True
            if engine.state.current_scenario not in before_visited:
                attention.event("new_scene")
        if (
            engine.state.flags != before_flags
            or engine.state.prop_overrides != before_props
        ):
            attention.event("progress")
        if engine.state.score > before_score:
            pass  # already credited via the reward notice
        if not got_response and move.kind in ("click", "use"):
            attention.event("nothing")

        trace.append((elapsed, attention.level))
        engine.state.popups.clear()

    result = PlayResult(
        completed=engine.state.outcome == "won",
        dropped_out=attention.dropped_out and engine.state.outcome != "won",
        time_on_task=elapsed,
        interactions=interactions,
        final_attention=attention.level,
        mean_attention=attention.mean_level,
        score=engine.state.score,
        scenarios_visited=len(engine.state.visited),
        entered_scenarios=set(engine.state.visited),
        fired_bindings=fired_bindings,
        examined_objects=examined,
        dialogue_nodes=dialogue_nodes,
        attention_trace=trace,
    )
    return result
