"""Headless interface rendering: Figures 1 and 2 as text screenshots.

The paper's only figures are GUI screenshots: Fig. 1 "the interface of
the interactive VGBL authoring tool" and Fig. 2 "the interface of the
runtime environment".  Without a GUI toolkit, the reproduction renders
the same widget trees deterministically to character grids:

* the video canvas is drawn by luminance-sampling the actual frame
  (so the screenshot really shows the playing video);
* panels, lists, buttons and the inventory window are drawn from the
  live model objects (so the screenshot really shows the tool state).

Determinism makes the figures regression-testable: the E1/E2 benches
assert the rendered screenshots' content, not just that code ran.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..video.frame import Frame

__all__ = [
    "Canvas",
    "frame_to_ascii",
    "render_authoring_screenshot",
    "render_runtime_screenshot",
    "render_dashboard",
    "render_waterfall",
    "sparkline",
]

#: dark → light luminance ramp
_RAMP = " .:-=+*#%@"

#: eight-level bar ramp for sparklines
_SPARK = "▁▂▃▄▅▆▇█"


class Canvas:
    """A character grid with box/text primitives."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("canvas must be at least 1x1")
        self.width = width
        self.height = height
        self._grid = [[" "] * width for _ in range(height)]

    def put(self, x: int, y: int, ch: str) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            self._grid[y][x] = ch

    def text(self, x: int, y: int, s: str, max_len: Optional[int] = None) -> None:
        """Write a string, clipped to the canvas (and ``max_len``)."""
        if max_len is not None:
            s = s[:max_len]
        for i, ch in enumerate(s):
            self.put(x + i, y, ch)

    def box(self, x: int, y: int, w: int, h: int, title: str = "") -> None:
        """Draw a bordered box with an optional title in the top edge."""
        if w < 2 or h < 2:
            return
        for i in range(x + 1, x + w - 1):
            self.put(i, y, "-")
            self.put(i, y + h - 1, "-")
        for j in range(y + 1, y + h - 1):
            self.put(x, j, "|")
            self.put(x + w - 1, j, "|")
        for cx, cy in ((x, y), (x + w - 1, y), (x, y + h - 1), (x + w - 1, y + h - 1)):
            self.put(cx, cy, "+")
        if title:
            self.text(x + 2, y, f" {title} ", max_len=w - 4)

    def blit_lines(self, x: int, y: int, lines: Sequence[str]) -> None:
        for j, line in enumerate(lines):
            self.text(x, y + j, line)

    def render(self) -> str:
        return "\n".join("".join(row).rstrip() for row in self._grid)


def frame_to_ascii(frame: Frame, width: int, height: int) -> List[str]:
    """Luminance-sample a frame into ``height`` lines of ``width`` chars.

    Vectorised: block-mean the luma with integer bucketing, then map to
    the ramp.
    """
    if width < 1 or height < 1:
        raise ValueError("ascii size must be positive")
    luma = frame.to_gray()  # (h, w) float32
    h, w = luma.shape
    ys = (np.arange(height) * h // height).clip(0, h - 1)
    xs = (np.arange(width) * w // width).clip(0, w - 1)
    sampled = luma[np.ix_(ys, xs)]
    idx = (sampled / 256.0 * len(_RAMP)).astype(np.int64).clip(0, len(_RAMP) - 1)
    ramp = np.asarray(list(_RAMP))
    return ["".join(row) for row in ramp[idx]]


# ----------------------------------------------------------------------
# Dashboard primitives (``repro top``)
# ----------------------------------------------------------------------

def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a value series as a one-line unicode bar chart.

    The series is scaled to its own min/max (a flat series renders as a
    low bar, not a blank line); ``width`` keeps the most recent values.
    """
    vals = [float(v) for v in values]
    if width is not None:
        if width < 1:
            raise ValueError("width must be >= 1")
        vals = vals[-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK[0] * len(vals)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in vals)


def render_dashboard(
    title: str,
    sections: Sequence[tuple],
    width: int = 100,
) -> str:
    """Stack titled boxed sections of pre-formatted lines into one frame.

    ``sections`` is ``[(section_title, lines), ...]``; each section
    becomes a bordered box sized to its content.  The ``repro top``
    dashboard feeds it metric tables, span aggregates and the flight
    recorder tail.
    """
    if width < 20:
        raise ValueError("dashboard width must be >= 20")
    inner = width - 6  # box borders + margins
    rows: List[tuple] = []
    height = 1  # title line
    for sec_title, lines in sections:
        clipped = [line[:inner] for line in lines] or ["(empty)"]
        rows.append((sec_title, clipped))
        height += len(clipped) + 2  # box borders
    c = Canvas(width, height)
    c.text(1, 0, title, max_len=width - 2)
    y = 1
    for sec_title, clipped in rows:
        c.box(0, y, width, len(clipped) + 2, title=sec_title)
        c.blit_lines(2, y + 1, clipped)
        y += len(clipped) + 2
    return c.render()


def render_waterfall(timeline: dict, width: int = 72) -> str:
    """Render one request trace timeline as a text waterfall.

    ``timeline`` is the JSON dict served at the gateway's
    ``/trace/<id>`` endpoint (see
    :meth:`repro.obs.attribution.RequestTrace.timeline`): a header plus
    ``phases`` entries carrying ``start_s`` offsets and ``duration_s``.
    Each phase becomes one row whose bar is indented by its start offset
    and sized by its duration, both proportional to total trace time —
    so queue wait, shard residency and fsync wait are comparable at a
    glance, the way a browser dev-tools network panel reads.
    """
    if width < 40:
        raise ValueError("waterfall width must be >= 40")
    trace_id = timeline.get("trace_id", "?")
    player = timeline.get("player") or "-"
    status = timeline.get("status", "?")
    total = float(timeline.get("total_s") or 0.0)
    phases = timeline.get("phases") or []
    label_w = max([len("phase")] + [len(str(p.get("phase", ""))) for p in phases])
    bar_w = max(10, width - label_w - 14)  # label + duration column
    lines = [
        f"trace {trace_id}  player={player}  status={status}"
        f"  total={total * 1e3:.2f}ms",
        "-" * min(width, 78),
    ]
    span = total if total > 0 else max(
        (float(p.get("start_s", 0.0)) + float(p.get("duration_s", 0.0))
         for p in phases),
        default=0.0,
    )
    for p in phases:
        name = str(p.get("phase", "?"))
        start = float(p.get("start_s", 0.0))
        dur = float(p.get("duration_s", 0.0))
        if span > 0:
            lead = int(round(start / span * bar_w))
            fill = int(round(dur / span * bar_w))
        else:
            lead, fill = 0, 0
        fill = max(fill, 1) if dur > 0 else fill
        lead = min(lead, bar_w - fill)
        bar = " " * max(lead, 0) + "#" * fill
        lines.append(
            f"{name:<{label_w}} |{bar:<{bar_w}}| {dur * 1e3:8.2f}ms"
        )
    totals = timeline.get("phase_totals") or {}
    if totals:
        summed = sum(float(v) for v in totals.values())
        lines.append("-" * min(width, 78))
        lines.append(f"{'sum':<{label_w}} |{'':<{bar_w}}| {summed * 1e3:8.2f}ms")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 1: the authoring tool
# ----------------------------------------------------------------------

def render_authoring_screenshot(
    project,
    selected_scenario: Optional[str] = None,
    width: int = 100,
    height: int = 34,
) -> str:
    """Fig. 1: menu bar, video canvas with the selected scenario's first
    frame, segment timeline, scenario list, object palette, property and
    event panels.  ``project`` is a :class:`~repro.core.project.GameProject`.
    """
    c = Canvas(width, height)
    c.box(0, 0, width, height, title=f"Interactive VGBL Authoring Tool - {project.title}")
    c.text(2, 1, "File  Edit  Video  Object  Event  Game  Help")

    # Left: video canvas
    canvas_w = width * 55 // 100
    c.box(1, 2, canvas_w, height - 12, title="Video canvas")
    sid = selected_scenario or project.start_scenario
    if sid and sid in project.scenarios:
        sc = project.scenarios[sid]
        if sc.segment_ref < len(project.segments):
            frame = project.segments[sc.segment_ref].frames[0]
            art = frame_to_ascii(frame, canvas_w - 4, height - 16)
            c.blit_lines(3, 3, art)
        c.text(3, height - 11, f"scenario: {sid} ({sc.title})", max_len=canvas_w - 4)

    # Bottom-left: segmentation timeline
    c.box(1, height - 10, canvas_w, 5, title="Segments (auto-cut)")
    strip = " | ".join(
        f"{i}:{s.name}[{s.frame_count}f]" for i, s in enumerate(project.segments)
    )
    c.text(3, height - 8, strip, max_len=canvas_w - 4)
    marks = "".join("#" if s.name.startswith(str(sid or "")) else "=" for s in project.segments)
    c.text(3, height - 7, ("cut points: " + "v".join("-" * 6 for _ in project.segments)), max_len=canvas_w - 4)

    # Right column: scenario list / palette / properties / events
    rx = canvas_w + 2
    rw = width - rx - 1
    list_h = max(4, (height - 4) // 4)
    c.box(rx, 2, rw, list_h, title="Scenarios")
    for j, s in enumerate(list(project.scenarios.values())[: list_h - 2]):
        marker = "*" if s.scenario_id == sid else " "
        c.text(rx + 2, 3 + j, f"{marker}{s.scenario_id}: {s.title}", max_len=rw - 4)

    py = 2 + list_h
    c.box(rx, py, rw, list_h, title="Object palette")
    c.text(rx + 2, py + 1, "[Image] [Button] [Text]", max_len=rw - 4)
    c.text(rx + 2, py + 2, "[Item]  [NPC]    [WWW]", max_len=rw - 4)
    c.text(rx + 2, py + 3, "[Reward]", max_len=rw - 4)

    oy = py + list_h
    c.box(rx, oy, rw, list_h, title="Properties")
    if sid and sid in project.scenarios:
        objs = project.scenarios[sid].objects
        for j, o in enumerate(objs[: list_h - 2]):
            c.text(rx + 2, oy + 1 + j, f"{o.kind}:{o.object_id} z={o.z_order}", max_len=rw - 4)

    ey = oy + list_h
    c.box(rx, ey, rw, height - ey - 1, title="Events")
    shown = 0
    for b in project.events:
        if sid and b.scenario_id not in (sid, "*"):
            continue
        if shown >= height - ey - 3:
            break
        cond = f" if {b.condition}" if b.condition else ""
        c.text(
            rx + 2,
            ey + 1 + shown,
            f"{b.trigger}({b.object_id or '-'}) -> {len(b.actions)} act{cond}",
            max_len=rw - 4,
        )
        shown += 1
    return c.render()


# ----------------------------------------------------------------------
# Figure 2: the runtime environment
# ----------------------------------------------------------------------

def render_runtime_screenshot(
    engine,
    width: int = 100,
    height: int = 34,
) -> str:
    """Fig. 2: the playing video with mounted objects, buttons, the
    inventory window, score, and the top popup.  ``engine`` is a started
    :class:`~repro.runtime.engine.GameEngine`.
    """
    c = Canvas(width, height)
    state = engine.state
    sc = engine.current_scenario
    c.box(0, 0, width, height, title=f"Interactive VGBL Player - {sc.title}")

    canvas_w = width - 2
    canvas_h = height - 10
    composed = engine.render()
    art = frame_to_ascii(composed, canvas_w - 2, canvas_h - 2)
    c.blit_lines(2, 2, art)

    # Object markers: label visible objects at their hotspot centres.
    fx = (canvas_w - 2) / composed.width
    fy = (canvas_h - 2) / composed.height
    for obj in sc.objects:
        if not state.object_visible(obj.object_id, obj.visible):
            continue
        ox, oy = obj.hotspot.center()
        gx, gy = 2 + int(ox * fx), 2 + int(oy * fy)
        label = f"[{obj.name}]" if obj.kind == "button" else f"<{obj.name}>"
        c.text(gx, gy, label, max_len=canvas_w - gx)

    # Inventory window
    iy = height - 8
    c.box(1, iy, width - 2, 4, title="Inventory window")
    slots = state.inventory.slots
    if slots:
        parts = []
        for s in slots:
            star = "*" if s.is_reward else ""
            sel = ">" if state.inventory.selected == s.item_id else " "
            count = f"x{s.count}" if s.count > 1 else ""
            parts.append(f"{sel}[{star}{s.name}{count}]")
        c.text(3, iy + 1, " ".join(parts), max_len=width - 6)
    else:
        c.text(3, iy + 1, "(empty backpack)", max_len=width - 6)
    c.text(3, iy + 2, f"score: {state.score}   scenario: {state.current_scenario}"
           f"   visited: {len(state.visited)}", max_len=width - 6)

    # Status / popup line
    sy = height - 4
    c.box(1, sy, width - 2, 3, title="Status")
    if state.popups:
        top = state.popups[-1]
        c.text(3, sy + 1, f"[{top.kind.upper()}] {top.content}", max_len=width - 6)
    elif state.outcome:
        c.text(3, sy + 1, f"GAME OVER: {state.outcome.upper()}", max_len=width - 6)
    else:
        c.text(3, sy + 1, "(click objects to interact; drag items to the backpack)",
               max_len=width - 6)
    return c.render()
