"""Portable image export: frames to/from binary PPM (P6).

The headless substrate still needs to hand pictures to humans — Fig. 1/2
renders, storyboard sheets, composited frames.  PPM is the simplest
portable raster format (every image viewer and converter reads it), and
writing it needs nothing beyond the frame's own bytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union


from ..video.frame import Frame, FrameSize

__all__ = ["read_ppm", "write_ppm"]


def write_ppm(frame: Frame, path: Union[str, Path]) -> int:
    """Write a frame as binary PPM (P6, maxval 255); returns bytes written."""
    header = f"P6\n{frame.width} {frame.height}\n255\n".encode("ascii")
    data = header + frame.tobytes()
    Path(path).write_bytes(data)
    return len(data)


def read_ppm(path: Union[str, Path]) -> Frame:
    """Read a binary PPM written by :func:`write_ppm` (strict P6 subset)."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P6"):
        raise ValueError("not a P6 PPM file")
    # Parse exactly three whitespace-separated header tokens after P6,
    # skipping comment lines.
    pos = 2
    tokens = []
    while len(tokens) < 3:
        while pos < len(raw) and raw[pos : pos + 1].isspace():
            pos += 1
        if raw[pos : pos + 1] == b"#":
            while pos < len(raw) and raw[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(raw) and not raw[pos : pos + 1].isspace():
            pos += 1
        tokens.append(raw[start:pos])
    pos += 1  # single whitespace after maxval
    try:
        width, height, maxval = (int(t) for t in tokens)
    except ValueError as exc:
        raise ValueError(f"bad PPM header: {exc}") from exc
    if maxval != 255:
        raise ValueError(f"unsupported maxval {maxval}")
    size = FrameSize(width, height)
    pixels = raw[pos : pos + size.pixels * 3]
    return Frame.frombytes(pixels, size)
