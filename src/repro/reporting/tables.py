"""Result tables and experiment records.

Every benchmark prints its results through :func:`format_table` so the
rows EXPERIMENTS.md quotes are exactly what the harness emits, and
records paper-claim-vs-measured verdicts as :class:`ExperimentRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

__all__ = ["ExperimentRecord", "format_table", "records_to_markdown"]


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Plain-text aligned table from homogeneous dict rows."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(cols[i]), max(len(row[i]) for row in cells))
        for i in range(len(cols))
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    )
    out = f"{header}\n{sep}\n{body}"
    return f"{title}\n{out}" if title else out


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


@dataclass(frozen=True, slots=True)
class ExperimentRecord:
    """One paper-claim-vs-measured entry for EXPERIMENTS.md."""

    experiment_id: str   #: e.g. "E6 / §2.2 engagement claim"
    paper_claim: str     #: what the paper asserts/shows
    measured: str        #: what this reproduction measured
    verdict: str         #: "reproduced" | "shape-reproduced" | "diverged"

    def __post_init__(self) -> None:
        if self.verdict not in ("reproduced", "shape-reproduced", "diverged"):
            raise ValueError(f"unknown verdict {self.verdict!r}")


def records_to_markdown(records: Sequence[ExperimentRecord]) -> str:
    """Markdown table of experiment records."""
    lines = [
        "| Experiment | Paper claim | Measured | Verdict |",
        "|---|---|---|---|",
    ]
    for r in records:
        lines.append(
            f"| {r.experiment_id} | {r.paper_claim} | {r.measured} | {r.verdict} |"
        )
    return "\n".join(lines)
