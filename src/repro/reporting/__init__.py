"""Reporting: headless interface screenshots (Figs. 1-2) and result
tables / experiment records."""

from .images import read_ppm, write_ppm
from .tables import ExperimentRecord, format_table, records_to_markdown
from .tui import (
    Canvas,
    frame_to_ascii,
    render_authoring_screenshot,
    render_dashboard,
    render_runtime_screenshot,
    render_waterfall,
    sparkline,
)

__all__ = [
    "Canvas",
    "ExperimentRecord",
    "format_table",
    "frame_to_ascii",
    "read_ppm",
    "records_to_markdown",
    "write_ppm",
    "render_authoring_screenshot",
    "render_dashboard",
    "render_runtime_screenshot",
    "render_waterfall",
    "sparkline",
]
