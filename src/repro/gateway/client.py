"""Async gateway client: timeouts, heartbeats, backoff, resume.

The client half of the wire protocol, built for flaky networks rather
than loopback demos:

* **connect timeout** — ``asyncio.open_connection`` is bounded, never
  hangs on a black-holed SYN;
* **bounded exponential backoff** — connection attempts retry on a
  deterministic ``base * factor^k`` schedule capped at ``max_delay``
  (:func:`backoff_delays` is pure, so tests assert the schedule with a
  fake sleeper);
* **heartbeats** — an optional background task PINGs the server inside
  the idle window and records round-trip time in the
  ``repro_gateway_rtt_seconds`` histogram; a heartbeat that gets no
  reply within ``idle_timeout_s`` declares the connection dead;
* **reconnect-resume** — the client remembers every player id it has
  submitted; a reconnect HELLOs with that list and the server
  re-attaches live sessions (or immediately re-delivers END for ones
  that finished while the client was away).  Kill the client, restart
  it, resume by player id: the session never noticed.

Request/response matching uses a ``seq`` stamped into SUBMIT/INPUT
payloads and echoed by STATE/ERROR; END frames are matched by player
id, so they arrive whether or not a request is in flight.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import attribution as _attr
from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..persist.records import op_to_dict, ops_to_dicts
from .protocol import (
    END,
    ERROR,
    HELLO,
    INPUT,
    PING,
    QUERY,
    STATE,
    SUBMIT,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)

__all__ = [
    "GatewayClient",
    "GatewayClosed",
    "GatewayError",
    "GatewayRejected",
    "backoff_delays",
]

_M_RTT = _obs.histogram(
    "repro_gateway_rtt_seconds",
    "Client-observed PING round-trip time through the gateway",
)
_M_RETRIES = _obs.counter(
    "repro_gateway_client_retries_total",
    "Connection attempts beyond the first (reconnects and backoff retries)",
)

_LOG = _obslog.get_logger("gateway.client")


class GatewayError(RuntimeError):
    """Server answered with an ERROR frame; ``code`` is machine-readable."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class GatewayRejected(GatewayError):
    """Admission control refused the session (backpressure)."""


class GatewayClosed(ConnectionError):
    """The connection died and auto-reconnect was off (or exhausted)."""


def backoff_delays(
    attempts: int,
    base: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 2.0,
) -> List[float]:
    """The bounded exponential retry schedule, as plain data.

    ``attempts`` is the number of *re*tries, i.e. sleeps between
    attempts; deterministic so the schedule itself is unit-testable.
    """
    if attempts < 0:
        raise ValueError("attempts must be >= 0")
    if base <= 0 or factor < 1.0 or max_delay < base:
        raise ValueError("need base > 0, factor >= 1, max_delay >= base")
    return [min(base * factor**k, max_delay) for k in range(attempts)]


#: (host, port) -> (reader, writer); injectable for tests
Connector = Callable[
    [str, int], Awaitable[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]
]


async def _tcp_connector(
    host: str, port: int
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    return await asyncio.open_connection(host, port)


class GatewayClient:
    """One logical client; survives reconnects, remembers its players."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_name: str = "repro-client",
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 30.0,
        idle_timeout_s: float = 30.0,
        heartbeat_s: float = 0.0,
        retries: int = 4,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        auto_reconnect: bool = False,
        trace_sample: float = 0.0,
        connector: Optional[Connector] = None,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.client_name = client_name
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.idle_timeout_s = idle_timeout_s
        self.heartbeat_s = heartbeat_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.auto_reconnect = auto_reconnect
        #: fraction of submits stamped with a fresh trace id (server
        #: attributes the request's phases under it; END echoes it)
        self.trace_sample = trace_sample
        self._trace_sampler = (
            _attr.Sampler(trace_sample) if trace_sample > 0 else None
        )
        self._connector = connector or _tcp_connector
        self._sleep = sleep
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._decoder = FrameDecoder()
        self._seq = 0
        self._acks: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._ends: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._players: List[str] = []
        #: player id -> trace id for in-flight traced sessions; rides
        #: the resume HELLO so a reconnect re-attributes under the
        #: same id
        self._traces: Dict[str, str] = {}
        self._server_info: Dict[str, Any] = {}
        self._closing = False
        self._last_recv = 0.0

    # -- connection management -----------------------------------------
    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    @property
    def server_info(self) -> Dict[str, Any]:
        """The server's HELLO payload from the latest handshake."""
        return dict(self._server_info)

    async def connect(
        self,
        resume: Optional[Sequence[str]] = None,
        traces: Optional[Dict[str, str]] = None,
    ) -> Dict[str, str]:
        """Connect (with bounded backoff retry) and handshake.

        Returns the resume-status map from the server's HELLO:
        player id → ``live`` / ``done`` / ``unknown``.  Player ids
        submitted earlier on this client are always resumed.

        ``traces`` maps resumed player ids to request-trace ids from a
        previous process, so a restart can keep attributing under the
        ids it handed out before the crash (this client's own in-flight
        trace ids ride the resume HELLO automatically).
        """
        self._closing = False
        if traces:
            self._traces.update(traces)
        delays = backoff_delays(
            self.retries, self.backoff_base_s,
            self.backoff_factor, self.backoff_max_s,
        )
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                _M_RETRIES.inc()
                await self._sleep(delays[attempt - 1])
            try:
                reader, writer = await asyncio.wait_for(
                    self._connector(self.host, self.port),
                    timeout=self.connect_timeout_s,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_exc = exc
                continue
            self._reader, self._writer = reader, writer
            self._decoder = FrameDecoder()
            self._last_recv = perf_counter()
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )
            try:
                statuses = await self._handshake(resume)
            except (GatewayError, ConnectionError, OSError,
                    asyncio.TimeoutError) as exc:
                last_exc = exc
                await self._teardown()
                continue
            if self.heartbeat_s > 0:
                stale = self._heartbeat_task
                if stale is not None and stale.done():
                    # The previous loop died with its connection (e.g.
                    # its own auto-reconnect exhausted every retry and
                    # returned).  Clear the corpse, or this — and every
                    # future — connection would run unheartbeated.
                    self._heartbeat_task = None
                if self._heartbeat_task is None:
                    self._heartbeat_task = (
                        asyncio.get_running_loop().create_task(
                            self._heartbeat_loop()
                        )
                    )
            return statuses
        raise GatewayClosed(
            f"cannot reach gateway {self.host}:{self.port} after "
            f"{self.retries + 1} attempts: {last_exc}"
        )

    async def _handshake(
        self, resume: Optional[Sequence[str]]
    ) -> Dict[str, str]:
        pids = list(dict.fromkeys([*(resume or []), *self._players]))
        hello: Dict[str, Any] = {"client": self.client_name, "resume": pids}
        traces = {pid: self._traces[pid] for pid in pids if pid in self._traces}
        if traces:
            hello["traces"] = traces
        ack = await self._request(HELLO, hello)
        self._server_info = ack
        for pid in pids:
            if pid not in self._players:
                self._players.append(pid)
        return dict(ack.get("resumed") or {})

    async def reconnect(self) -> Dict[str, str]:
        """Tear down whatever is left and dial again, resuming players."""
        await self._teardown()
        return await self.connect()

    async def close(self) -> None:
        self._closing = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        await self._teardown()

    async def _teardown(self) -> None:
        task, self._reader_task = self._reader_task, None
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._fail_pending(GatewayClosed("connection closed"))

    def _fail_pending(self, exc: BaseException) -> None:
        acks, self._acks = self._acks, {}
        for future in acks.values():
            if not future.done():
                future.set_exception(exc)
        # END futures survive: a reconnect-resume can still deliver them

    # -- frame plumbing ------------------------------------------------
    async def _read_loop(self) -> None:
        reader = self._reader
        assert reader is not None
        cancelled = False
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                self._last_recv = perf_counter()
                for ftype, payload in self._decoder.feed(data):
                    self._on_frame(ftype, payload)
        except (ConnectionError, OSError, ProtocolError) as exc:
            _LOG.warning("gateway.client.read_failed", detail=str(exc))
        except asyncio.CancelledError:
            cancelled = True  # a deliberate teardown, not a dead server
            raise
        finally:
            if not cancelled and not self._closing:
                self._fail_pending(GatewayClosed("server closed the connection"))
                if self.auto_reconnect:
                    asyncio.get_running_loop().create_task(self._auto_reconnect())

    async def _auto_reconnect(self) -> None:
        try:
            await self.reconnect()
        except GatewayClosed:
            # give up loudly: outstanding waits fail fast
            for future in self._ends.values():
                if not future.done():
                    future.set_exception(
                        GatewayClosed("auto-reconnect exhausted its retries")
                    )

    def _on_frame(self, ftype: int, payload: Dict[str, Any]) -> None:
        seq = payload.get("seq")
        if ftype == END:
            pid = payload.get("player")
            future = self._ends.get(pid) if isinstance(pid, str) else None
            if future is None and isinstance(pid, str):
                future = self._end_future(pid)
            if future is not None and not future.done():
                future.set_result(payload)
            return
        if seq is not None and seq in self._acks:
            future = self._acks.pop(seq)
            if not future.done():
                if ftype == ERROR:
                    code = str(payload.get("code", "error"))
                    exc_cls = (
                        GatewayRejected if code in ("rejected", "draining")
                        else GatewayError
                    )
                    future.set_exception(
                        exc_cls(code, str(payload.get("detail", "")))
                    )
                else:
                    future.set_result(payload)
            return
        if ftype == ERROR:
            _LOG.warning("gateway.client.server_error",
                         code=payload.get("code"),
                         detail=payload.get("detail"))

    def _send(self, ftype: int, payload: Dict[str, Any]) -> None:
        if self._writer is None or self._writer.is_closing():
            raise GatewayClosed("not connected")
        self._writer.write(encode_frame(ftype, payload))

    async def _request(
        self, ftype: int, payload: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        self._seq += 1
        seq = self._seq
        payload = dict(payload)
        payload["seq"] = seq
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._acks[seq] = future
        try:
            self._send(ftype, payload)
            assert self._writer is not None
            await self._writer.drain()
            return await asyncio.wait_for(
                future, timeout or self.request_timeout_s
            )
        finally:
            self._acks.pop(seq, None)

    def _end_future(self, pid: str) -> "asyncio.Future[Dict[str, Any]]":
        future = self._ends.get(pid)
        if future is None:
            future = asyncio.get_running_loop().create_future()
            self._ends[pid] = future
        return future

    # -- public API ----------------------------------------------------
    async def submit(
        self,
        player_id: str,
        ops: Sequence[Any],
        dt: float = 0.25,
        timeout: Optional[float] = None,
        trace: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit one scripted session; returns the admission STATE.

        Raises :class:`GatewayRejected` when admission control says no
        — callers decide whether to back off and retry.

        ``trace`` forces a request-trace id onto the submission;
        without it, the client's ``trace_sample`` may stamp one.  The
        STATE ack echoes whichever id the server actually attributes
        under (it may also be server-sampled), and
        :meth:`trace_for` remembers it until END.
        """
        self._end_future(player_id)  # register before the race can start
        trace_id = trace
        if trace_id is None and self._trace_sampler is not None \
                and self._trace_sampler():
            trace_id = _attr.new_trace_id()
        payload: Dict[str, Any] = {
            "player": player_id, "dt": dt, "ops": ops_to_dicts(ops),
        }
        if trace_id is not None:
            payload["trace"] = trace_id
        ack = await self._request(SUBMIT, payload, timeout=timeout)
        echoed = ack.get("trace")
        if isinstance(echoed, str) and echoed:
            trace_id = echoed
        if trace_id is not None:
            self._traces[player_id] = trace_id
        if player_id not in self._players:
            self._players.append(player_id)
        return ack

    def trace_for(self, player_id: str) -> Optional[str]:
        """The trace id of an in-flight traced session (None otherwise)."""
        return self._traces.get(player_id)

    async def send_input(
        self, player_id: str, op: Any, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Append one op to a live session (acknowledged best-effort)."""
        return await self._request(INPUT, {
            "player": player_id, "op": op_to_dict(op),
        }, timeout=timeout)

    async def query(
        self, player_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Read-only session status lookup (protocol v3).

        Against a read-replica gateway this answers from the standby's
        lag-bounded view (raising :class:`GatewayError` with code
        ``replica_lagging`` when the replica is too far behind);
        against a primary it reports live/done status.
        """
        return await self._request(QUERY, {"player": player_id},
                                   timeout=timeout)

    async def ping(self, timeout: Optional[float] = None) -> float:
        """Round-trip one PING; returns (and records) the RTT seconds."""
        t0 = perf_counter()
        await self._request(PING, {}, timeout=timeout)
        rtt = perf_counter() - t0
        _M_RTT.observe(rtt)
        return rtt

    async def resume(self, player_id: str) -> str:
        """Attach to a session by player id; ``live``/``done``/``unknown``.

        A ``done`` answer is followed by the END frame, so a
        :meth:`wait_end` after this returns immediately.
        """
        self._end_future(player_id)
        ack = await self._request(HELLO, {
            "client": self.client_name, "resume": [player_id],
        })
        if player_id not in self._players:
            self._players.append(player_id)
        return str((ack.get("resumed") or {}).get(player_id, "unknown"))

    async def wait_end(
        self, player_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block until the session's END frame arrives; returns it."""
        future = self._end_future(player_id)
        payload = await asyncio.wait_for(
            asyncio.shield(future), timeout or self.request_timeout_s
        )
        self._ends.pop(player_id, None)
        self._traces.pop(player_id, None)
        if player_id in self._players:
            self._players.remove(player_id)
        return payload

    # -- heartbeats ----------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        try:
            while not self._closing:
                await self._sleep(self.heartbeat_s)
                if self._closing or not self.connected:
                    continue
                idle = perf_counter() - self._last_recv
                if idle > self.idle_timeout_s:
                    _LOG.warning("gateway.client.idle", idle_s=round(idle, 3))
                    await self._teardown()
                    if self.auto_reconnect:
                        try:
                            await self.connect()
                        except GatewayClosed:
                            return
                    continue
                try:
                    await self.ping(timeout=self.idle_timeout_s)
                except (GatewayError, GatewayClosed, asyncio.TimeoutError):
                    continue  # the idle check above decides liveness
        except asyncio.CancelledError:
            raise

    async def __aenter__(self) -> "GatewayClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()
