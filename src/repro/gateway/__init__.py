"""Network gateway: the TCP wire edge of the VGBL serving layer.

``repro.gateway`` puts the sharded session server
(:mod:`repro.serve`) behind a real socket — the delivery gap between
an in-process benchmark and the paper's remote students:

* :mod:`repro.gateway.protocol` — length-prefixed, CRC-checked binary
  frames (HELLO / SUBMIT / INPUT / STATE / END / ERROR / PING) with a
  protocol version byte;
* :class:`~repro.gateway.server.GatewayServer` — an asyncio TCP server
  bridging the event loop to the shard threads (submit is
  lock-protected and cheap; completion hops back via
  ``call_soon_threadsafe``), with per-connection bounded outbound
  queues (slow readers are disconnected, not buffered) and graceful
  drain that flushes shard journals before closing sockets;
* :class:`~repro.gateway.client.GatewayClient` — connect/idle
  timeouts, PING heartbeats, bounded exponential-backoff retry, and
  reconnect-resume of live sessions by player id;
* :func:`~repro.gateway.bench.run_gateway_benchmark` — the loopback
  shard sweep behind ``repro gateway bench`` and
  ``benchmarks/bench_gateway.py``.

Everything is instrumented through :mod:`repro.obs`
(``repro_gateway_*`` connection/frame/byte counters, handshake and RTT
histograms) and asserted by the gateway rules in ``examples/slo.toml``.
"""

from .bench import GatewaySweepResult, run_gateway_benchmark
from .client import (
    GatewayClient,
    GatewayClosed,
    GatewayError,
    GatewayRejected,
    backoff_delays,
)
from .protocol import (
    FrameDecoder,
    FrameTooLarge,
    MAX_FRAME_BYTES,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ProtocolError,
    SUPPORTED_VERSIONS,
    VersionMismatch,
    encode_frame,
    negotiate_version,
)
from .server import GatewayConfig, GatewayServer, GatewayThread
from .telemetry import TelemetryServer

__all__ = [
    "FrameDecoder",
    "FrameTooLarge",
    "GatewayClient",
    "GatewayClosed",
    "GatewayConfig",
    "GatewayError",
    "GatewayRejected",
    "GatewayServer",
    "GatewaySweepResult",
    "GatewayThread",
    "MAX_FRAME_BYTES",
    "MIN_PROTOCOL_VERSION",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SUPPORTED_VERSIONS",
    "TelemetryServer",
    "VersionMismatch",
    "backoff_delays",
    "encode_frame",
    "negotiate_version",
    "run_gateway_benchmark",
]
