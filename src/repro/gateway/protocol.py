"""Wire protocol of the network gateway: length-prefixed binary frames.

The gateway speaks a small, versioned, CRC-checked binary protocol over
TCP.  Every frame is::

    +--------+--------+----------+---------------+--------------+
    | u8 ver | u8 typ | u32 len  | u32 crc(pay)  | u32 crc(hdr) |  header (14 B, LE)
    +--------+--------+----------+---------------+--------------+
    |                payload: `len` bytes of JSON                |
    +------------------------------------------------------------+

``crc(hdr)`` is the CRC32 of the first 10 header bytes, so a reader can
reject a corrupt or misaligned header *before* trusting its length
field; ``crc(pay)`` covers the payload.  Payloads are compact JSON
objects — the same codec family as the WAL records, so scripted ops
travel the wire with :func:`repro.persist.records.op_to_dict`.

Frame types (client → server unless noted):

``HELLO``
    Handshake; must be the first frame on a connection.  Carries the
    client name and an optional ``resume`` list of player ids to
    re-attach (live sessions keep running server-side across client
    disconnects).  The server answers with its own HELLO.
``SUBMIT``
    A full scripted session: player id, pacing ``dt`` and the op list.
    Acknowledged with STATE (admitted) or ERROR (rejected).
``INPUT``
    One extra scripted op appended to a live session (best effort: ops
    racing the session's completion are dropped and the client simply
    sees END).
``STATE`` (server → client)
    Acknowledgement / session status, echoing the request ``seq``.
``END`` (server → client)
    Pushed when a session finishes: outcome, score, steps and the
    SHA-256 state digest (the bit-identity handle recovery tests use).
``ERROR`` (server → client)
    Request or connection level failure, with a machine ``code``.
``PING``
    Heartbeat; the receiving side echoes the frame back unchanged, so
    round-trip time is measurable from either end.
``QUERY`` (v3+)
    Read-only lookup of one player's session status; answered with
    STATE (live/done/replica view) or ERROR.  On a read-replica
    gateway this is the *only* accepted session verb.

A decoder never guesses across corruption: any header/CRC/JSON fault
raises :class:`ProtocolError` and the connection must be torn down —
resynchronising inside a byte stream is how protocol bugs hide.

Versioning: the header's first byte carries the sender's protocol
version, and a decoder accepts any member of
:data:`SUPPORTED_VERSIONS`.  The server answers HELLO with
``min(its version, the client's version)`` (:func:`negotiate_version`)
and speaks that for the rest of the connection, so old clients keep
working against new servers and vice versa.  Version 2 adds the
optional trace-context field: HELLO (``traces``: player id → trace id
for resumed sessions), SUBMIT and INPUT (``trace``) may carry a
request-trace id which the server threads through the shard and WAL
layers and echoes on STATE/END — see :mod:`repro.obs.attribution`.
Unknown payload keys were always ignored, so the field is also
harmless to v1 peers.  Version 3 adds the ``QUERY`` frame: a read-only
lookup of one player's session state, answered with STATE or ERROR —
the read path a lag-aware replica gateway serves
(:mod:`repro.replicate`).
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Tuple

__all__ = [
    "END",
    "ERROR",
    "FRAME_NAMES",
    "FRAME_TYPES",
    "FrameDecoder",
    "FrameTooLarge",
    "HEADER",
    "HELLO",
    "INPUT",
    "MAX_FRAME_BYTES",
    "MIN_PROTOCOL_VERSION",
    "PING",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUERY",
    "STATE",
    "SUBMIT",
    "SUPPORTED_VERSIONS",
    "VersionMismatch",
    "encode_frame",
    "negotiate_version",
]

#: the newest protocol this build speaks (v2 = optional trace context,
#: v3 = QUERY read path for replicas); every frame header carries the
#: sender's version in byte 0
PROTOCOL_VERSION = 3

#: the oldest version still accepted on the wire
MIN_PROTOCOL_VERSION = 1

#: every version a decoder accepts; anything else is a VersionMismatch
SUPPORTED_VERSIONS = frozenset(
    range(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION + 1)
)


def negotiate_version(peer_version: int) -> int:
    """The version both sides speak: ``min(ours, theirs)``.

    Raises :class:`VersionMismatch` for peers older than
    :data:`MIN_PROTOCOL_VERSION` (a peer *newer* than us is fine — it
    is expected to downgrade to our answer, exactly as we do to its).
    """
    if peer_version < MIN_PROTOCOL_VERSION:
        raise VersionMismatch(
            f"peer protocol version {peer_version} predates the oldest "
            f"supported version {MIN_PROTOCOL_VERSION}"
        )
    return min(PROTOCOL_VERSION, peer_version)

#: ver(u8) typ(u8) payload_len(u32) payload_crc(u32) header_crc(u32)
HEADER = struct.Struct("<BBIII")

#: default sanity bound on one frame's payload (a SUBMIT carrying a
#: full cohort script is ~10 KiB; 1 MiB is generous, not unbounded)
MAX_FRAME_BYTES = 1 << 20

HELLO = 1
SUBMIT = 2
INPUT = 3
STATE = 4
END = 5
ERROR = 6
PING = 7
QUERY = 8

FRAME_NAMES: Dict[int, str] = {
    HELLO: "hello",
    SUBMIT: "submit",
    INPUT: "input",
    STATE: "state",
    END: "end",
    ERROR: "error",
    PING: "ping",
    QUERY: "query",
}
FRAME_TYPES = frozenset(FRAME_NAMES)


class ProtocolError(ValueError):
    """A malformed, corrupt or out-of-contract frame."""


class VersionMismatch(ProtocolError):
    """The peer speaks a different protocol version."""


class FrameTooLarge(ProtocolError):
    """A frame announced a payload beyond the negotiated bound."""


def encode_frame(
    ftype: int,
    payload: Dict[str, Any],
    version: int = PROTOCOL_VERSION,
    frame_types: "frozenset[int]" = FRAME_TYPES,
    versions: "frozenset[int]" = SUPPORTED_VERSIONS,
) -> bytes:
    """Frame one payload dict; raises :class:`ProtocolError` on misuse.

    ``frame_types``/``versions`` default to the gateway's vocabulary;
    the replication protocol passes its own (same framing, different
    frame-type and version sets).
    """
    if ftype not in frame_types:
        raise ProtocolError(f"unknown frame type {ftype}")
    if version not in versions:
        raise VersionMismatch(f"cannot encode protocol version {version}")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"{FRAME_NAMES.get(ftype, ftype)} payload is {len(body)} bytes"
        )
    head = struct.pack("<BBII", version, ftype, len(body), zlib.crc32(body))
    return head + struct.pack("<I", zlib.crc32(head)) + body


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever the socket produced; it returns every complete
    frame and buffers the rest.  A partial frame is not an error (more
    bytes may arrive); a *provably corrupt* one is, and poisons the
    decoder — once the framing is lost there is no trustworthy way to
    find the next frame boundary.
    """

    __slots__ = (
        "_buf", "max_frame_bytes", "_poisoned", "last_version",
        "frame_types", "versions",
    )

    def __init__(
        self,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        frame_types: "frozenset[int]" = FRAME_TYPES,
        versions: "frozenset[int]" = SUPPORTED_VERSIONS,
    ) -> None:
        self._buf = bytearray()
        self.max_frame_bytes = max_frame_bytes
        #: accepted frame types / version bytes — the gateway's by
        #: default; the replication protocol reuses this decoder with
        #: its own sets (same framing, different vocabulary)
        self.frame_types = frame_types
        self.versions = versions
        self._poisoned = False
        #: version byte of the most recent accepted frame (None before
        #: the first) — what the server negotiates against at HELLO
        self.last_version: "int | None" = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet parsed into a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Tuple[int, Dict[str, Any]]]:
        """Absorb ``data``; return all complete ``(type, payload)`` frames."""
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier corrupt frame")
        self._buf.extend(data)
        frames: List[Tuple[int, Dict[str, Any]]] = []
        while len(self._buf) >= HEADER.size:
            version, ftype, length, pay_crc, head_crc = HEADER.unpack_from(self._buf)
            if zlib.crc32(bytes(self._buf[: HEADER.size - 4])) != head_crc:
                self._fail("corrupt frame header (CRC mismatch)")
            if version not in self.versions:
                self._fail(
                    f"protocol version {version}, supported "
                    f"{sorted(self.versions)}",
                    VersionMismatch,
                )
            if ftype not in self.frame_types:
                self._fail(f"unknown frame type {ftype}")
            if length > self.max_frame_bytes:
                self._fail(
                    f"frame payload {length} bytes exceeds bound "
                    f"{self.max_frame_bytes}",
                    FrameTooLarge,
                )
            end = HEADER.size + length
            if len(self._buf) < end:
                break  # truncated so far; more bytes may still arrive
            body = bytes(self._buf[HEADER.size:end])
            if zlib.crc32(body) != pay_crc:
                self._fail("frame payload CRC mismatch")
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                self._fail("frame payload is not valid JSON")
            if not isinstance(payload, dict):
                self._fail("frame payload is not a JSON object")
            del self._buf[:end]
            self.last_version = version
            frames.append((ftype, payload))
        return frames

    def _fail(self, detail: str, exc: type = ProtocolError) -> None:
        self._poisoned = True
        raise exc(detail)
