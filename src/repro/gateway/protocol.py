"""Wire protocol of the network gateway: length-prefixed binary frames.

The gateway speaks a small, versioned, CRC-checked binary protocol over
TCP.  Every frame is::

    +--------+--------+----------+---------------+--------------+
    | u8 ver | u8 typ | u32 len  | u32 crc(pay)  | u32 crc(hdr) |  header (14 B, LE)
    +--------+--------+----------+---------------+--------------+
    |                payload: `len` bytes of JSON                |
    +------------------------------------------------------------+

``crc(hdr)`` is the CRC32 of the first 10 header bytes, so a reader can
reject a corrupt or misaligned header *before* trusting its length
field; ``crc(pay)`` covers the payload.  Payloads are compact JSON
objects — the same codec family as the WAL records, so scripted ops
travel the wire with :func:`repro.persist.records.op_to_dict`.

Frame types (client → server unless noted):

``HELLO``
    Handshake; must be the first frame on a connection.  Carries the
    client name and an optional ``resume`` list of player ids to
    re-attach (live sessions keep running server-side across client
    disconnects).  The server answers with its own HELLO.
``SUBMIT``
    A full scripted session: player id, pacing ``dt`` and the op list.
    Acknowledged with STATE (admitted) or ERROR (rejected).
``INPUT``
    One extra scripted op appended to a live session (best effort: ops
    racing the session's completion are dropped and the client simply
    sees END).
``STATE`` (server → client)
    Acknowledgement / session status, echoing the request ``seq``.
``END`` (server → client)
    Pushed when a session finishes: outcome, score, steps and the
    SHA-256 state digest (the bit-identity handle recovery tests use).
``ERROR`` (server → client)
    Request or connection level failure, with a machine ``code``.
``PING``
    Heartbeat; the receiving side echoes the frame back unchanged, so
    round-trip time is measurable from either end.

A decoder never guesses across corruption: any header/CRC/JSON fault
raises :class:`ProtocolError` and the connection must be torn down —
resynchronising inside a byte stream is how protocol bugs hide.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Tuple

__all__ = [
    "END",
    "ERROR",
    "FRAME_NAMES",
    "FRAME_TYPES",
    "FrameDecoder",
    "FrameTooLarge",
    "HEADER",
    "HELLO",
    "INPUT",
    "MAX_FRAME_BYTES",
    "PING",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "STATE",
    "SUBMIT",
    "VersionMismatch",
    "encode_frame",
]

#: bump on any incompatible wire change; HELLO carries it implicitly in
#: every header byte 0
PROTOCOL_VERSION = 1

#: ver(u8) typ(u8) payload_len(u32) payload_crc(u32) header_crc(u32)
HEADER = struct.Struct("<BBIII")

#: default sanity bound on one frame's payload (a SUBMIT carrying a
#: full cohort script is ~10 KiB; 1 MiB is generous, not unbounded)
MAX_FRAME_BYTES = 1 << 20

HELLO = 1
SUBMIT = 2
INPUT = 3
STATE = 4
END = 5
ERROR = 6
PING = 7

FRAME_NAMES: Dict[int, str] = {
    HELLO: "hello",
    SUBMIT: "submit",
    INPUT: "input",
    STATE: "state",
    END: "end",
    ERROR: "error",
    PING: "ping",
}
FRAME_TYPES = frozenset(FRAME_NAMES)


class ProtocolError(ValueError):
    """A malformed, corrupt or out-of-contract frame."""


class VersionMismatch(ProtocolError):
    """The peer speaks a different protocol version."""


class FrameTooLarge(ProtocolError):
    """A frame announced a payload beyond the negotiated bound."""


def encode_frame(
    ftype: int,
    payload: Dict[str, Any],
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Frame one payload dict; raises :class:`ProtocolError` on misuse."""
    if ftype not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {ftype}")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"{FRAME_NAMES[ftype]} payload is {len(body)} bytes")
    head = struct.pack("<BBII", version, ftype, len(body), zlib.crc32(body))
    return head + struct.pack("<I", zlib.crc32(head)) + body


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever the socket produced; it returns every complete
    frame and buffers the rest.  A partial frame is not an error (more
    bytes may arrive); a *provably corrupt* one is, and poisons the
    decoder — once the framing is lost there is no trustworthy way to
    find the next frame boundary.
    """

    __slots__ = ("_buf", "max_frame_bytes", "_poisoned")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buf = bytearray()
        self.max_frame_bytes = max_frame_bytes
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet parsed into a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Tuple[int, Dict[str, Any]]]:
        """Absorb ``data``; return all complete ``(type, payload)`` frames."""
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier corrupt frame")
        self._buf.extend(data)
        frames: List[Tuple[int, Dict[str, Any]]] = []
        while len(self._buf) >= HEADER.size:
            version, ftype, length, pay_crc, head_crc = HEADER.unpack_from(self._buf)
            if zlib.crc32(bytes(self._buf[: HEADER.size - 4])) != head_crc:
                self._fail("corrupt frame header (CRC mismatch)")
            if version != PROTOCOL_VERSION:
                self._fail(
                    f"protocol version {version}, expected {PROTOCOL_VERSION}",
                    VersionMismatch,
                )
            if ftype not in FRAME_TYPES:
                self._fail(f"unknown frame type {ftype}")
            if length > self.max_frame_bytes:
                self._fail(
                    f"frame payload {length} bytes exceeds bound "
                    f"{self.max_frame_bytes}",
                    FrameTooLarge,
                )
            end = HEADER.size + length
            if len(self._buf) < end:
                break  # truncated so far; more bytes may still arrive
            body = bytes(self._buf[HEADER.size:end])
            if zlib.crc32(body) != pay_crc:
                self._fail("frame payload CRC mismatch")
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                self._fail("frame payload is not valid JSON")
            if not isinstance(payload, dict):
                self._fail("frame payload is not a JSON object")
            del self._buf[:end]
            frames.append((ftype, payload))
        return frames

    def _fail(self, detail: str, exc: type = ProtocolError) -> None:
        self._poisoned = True
        raise exc(detail)
