"""Live telemetry endpoint: the gateway's observable surface over HTTP.

A deliberately minimal asyncio HTTP/1.1 server (GET only, one request
per connection, ``Connection: close``) that shares the gateway's event
loop and exposes what an operator — or the CI endpoint-smoke step —
needs while the gateway is serving:

``/metrics``
    The process metrics registry as Prometheus text exposition
    (:func:`repro.obs.export.render_prometheus`) — scrapeable by any
    real collector.
``/healthz``
    A JSON liveness/readiness summary: shard count, open connections,
    in-flight sessions, drain state.  Always 200 while the process is
    alive; ``status`` flips to ``draining`` during shutdown so the
    endpoint stays scrapeable through the whole drain.
``/trace/<id>``
    One request's phase timeline as JSON
    (:meth:`repro.obs.attribution.TraceStore.get`) — the payload
    ``repro obs trace`` renders as a waterfall.
``/traces``
    Recently finished trace ids plus the open-trace count, so tooling
    can find a sampled request without prior knowledge of its id.
``/history``
    The bounded time-series ring (:class:`repro.obs.metrics.TimeSeriesRing`)
    as JSON — metric history, not a point snapshot.

The server also owns the ring's sampling cadence: while running it
appends one registry sample every ``sample_interval_s``, so history
exists even when nobody is scraping.

Stdlib-only on purpose: pulling an HTTP framework into the serving
stack for five read-only routes would be the tail wagging the dog.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs.attribution import get_store
from ..obs.export import render_prometheus

__all__ = ["TelemetryServer"]

_M_HTTP = _obs.counter(
    "repro_gateway_telemetry_requests_total",
    "Telemetry HTTP requests served, by route",
)

_LOG = _obslog.get_logger("gateway.telemetry")

#: cap on request-line + header bytes we are willing to buffer
_MAX_REQUEST_BYTES = 8192
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed"}


def _json_body(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class TelemetryServer:
    """The gateway's read-only HTTP sidecar (same event loop)."""

    def __init__(
        self,
        gateway: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        sample_interval_s: float = 0.5,
        history_limit: int = 256,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.gateway = gateway
        self.host = host
        self._port = port
        self.sample_interval_s = sample_interval_s
        self.history_limit = history_limit
        self._server: Optional[asyncio.AbstractServer] = None
        self._sampler_task: Optional[asyncio.Task] = None

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("telemetry server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "TelemetryServer":
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._port
        )
        self._sampler_task = asyncio.get_running_loop().create_task(
            self._sample_loop()
        )
        _LOG.info("telemetry.listening", host=self.host, port=self.port)
        return self

    async def stop(self) -> None:
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- ring cadence --------------------------------------------------
    async def _sample_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sample_interval_s)
            if _obs.enabled():
                _obs.get_ring().sample()

    # -- request handling ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, ctype, body = await self._respond(reader)
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, bytes]:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except asyncio.IncompleteReadError as exc:
            request = exc.partial
        except asyncio.LimitOverrunError:
            return 400, "text/plain", b"request too large\n"
        if len(request) > _MAX_REQUEST_BYTES:
            return 400, "text/plain", b"request too large\n"
        parts = request.split(b"\r\n", 1)[0].decode("latin-1").split()
        if len(parts) < 2:
            return 400, "text/plain", b"malformed request line\n"
        method, target = parts[0], parts[1]
        if method != "GET":
            return 405, "text/plain", b"GET only\n"
        return self._route(target.split("?", 1)[0])

    def _route(self, path: str) -> Tuple[int, str, bytes]:
        if path == "/metrics":
            _M_HTTP.inc(route="metrics")
            body = render_prometheus(_obs.snapshot()).encode("utf-8")
            return 200, "text/plain; version=0.0.4; charset=utf-8", body
        if path == "/healthz":
            _M_HTTP.inc(route="healthz")
            return 200, "application/json", _json_body(self._health())
        if path.startswith("/trace/"):
            _M_HTTP.inc(route="trace")
            trace_id = path[len("/trace/"):]
            timeline = get_store().get(trace_id)
            if timeline is None:
                return 404, "application/json", _json_body(
                    {"error": "unknown trace", "trace_id": trace_id}
                )
            return 200, "application/json", _json_body(timeline)
        if path == "/traces":
            _M_HTTP.inc(route="traces")
            store = get_store()
            return 200, "application/json", _json_body({
                "finished": store.finished_ids(),
                "open": store.open_count,
            })
        if path == "/history":
            _M_HTTP.inc(route="history")
            samples = _obs.get_ring().samples()
            return 200, "application/json", _json_body(
                {"samples": samples[-self.history_limit:]}
            )
        _M_HTTP.inc(route="other")
        return 404, "application/json", _json_body(
            {"error": "unknown path", "path": path}
        )

    def _health(self) -> Dict[str, Any]:
        gw = self.gateway
        manager = gw.manager
        health = {
            "status": "draining" if gw._draining else "ok",
            "shards": manager.config.n_shards,
            "connections": len(gw._connections),
            "in_flight": manager.in_flight,
            "completed": manager.completed_sessions,
            "failed": manager.failed_sessions,
            "obs_enabled": _obs.enabled(),
            "open_traces": get_store().open_count,
            "ring_samples": len(_obs.get_ring()),
        }
        replica = getattr(gw, "read_replica", None)
        if replica is not None:
            # read-replica gateway: surface per-shard shipping lag so a
            # scraper can tell "healthy standby" from "falling behind"
            try:
                health["replication"] = replica.status()
                health["status"] = "replica"
            except Exception:  # pragma: no cover - replica mid-teardown
                health["replication"] = {"error": "unavailable"}
        return health
