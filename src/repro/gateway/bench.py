"""Gateway benchmark harness: shard sweeps measured through real sockets.

Shared by ``repro gateway bench`` and ``benchmarks/bench_gateway.py``,
the same way the serve sweep is shared — CLI, CI smoke and a laptop all
measure the same thing.  Per sweep point a fresh
:class:`~repro.serve.manager.SessionManager` of the given shard count
is fronted by a :class:`~repro.gateway.server.GatewayServer` on a
loopback ephemeral port, a :class:`~repro.serve.loadgen.SocketLoadGenerator`
offers a fixed load over ``clients`` TCP connections, and the report
carries completed sessions/second plus the p95 PING round trip.

Per-shard capacity is fixed across the sweep, so sessions/second
differences isolate shard count — the acceptance bar (>= 2x going
1 → 4 shards *through the gateway*) proves the wire edge does not
serialise what the shards parallelise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..core.project import CompiledGame
from ..persist import PersistenceConfig
from ..serve.loadgen import SocketLoadGenerator, SocketLoadReport
from ..serve.manager import ServeConfig, SessionManager
from ..students.scripts import PlayerScript, cohort_scripts
from .server import GatewayConfig, GatewayServer, GatewayThread

__all__ = ["GatewaySweepResult", "run_gateway_benchmark"]


@dataclass(slots=True)
class GatewaySweepResult:
    """One sweep point: a full socket load run at a fixed shard count."""

    shards: int
    report: SocketLoadReport

    def as_row(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {"shards": self.shards}
        row.update(self.report.as_row())
        return row


def run_gateway_benchmark(
    game: CompiledGame,
    shard_counts: Sequence[int],
    sessions: int = 120,
    scripts: Optional[Sequence[PlayerScript]] = None,
    n_scripts: int = 12,
    seed: int = 2007,
    clients: int = 4,
    arrival_rate: float = 0.0,
    tick_interval_s: float = 0.01,
    max_steps_per_tick: int = 20,
    max_sessions: int = 100_000,
    timeout: float = 120.0,
    persistence: Optional[PersistenceConfig] = None,
    gateway_config: Optional[GatewayConfig] = None,
    trace_sample: float = 0.0,
) -> List[GatewaySweepResult]:
    """Run the fixed socket load once per shard count.

    ``trace_sample`` stamps that fraction of submissions with a
    request-trace id; the ids come back on
    ``GatewaySweepResult.report.trace_ids`` and each one's phase
    waterfall is readable from the in-process trace store (or over
    ``/trace/<id>`` when the gateway config binds a telemetry port).
    """
    if not shard_counts:
        raise ValueError("need at least one shard count")
    if scripts is None:
        scripts = cohort_scripts(game, n_scripts, seed=seed)
    results: List[GatewaySweepResult] = []
    for n_shards in shard_counts:
        sweep_persist = persistence
        if persistence is not None and len(shard_counts) > 1:
            from dataclasses import replace as _replace
            from pathlib import Path as _Path

            sweep_persist = _replace(
                persistence,
                directory=_Path(persistence.directory) / f"shards-{n_shards}",
            )
        manager = SessionManager(ServeConfig(
            n_shards=n_shards,
            max_sessions=max_sessions,
            tick_interval_s=tick_interval_s,
            max_steps_per_tick=max_steps_per_tick,
            persistence=sweep_persist,
        ))
        server = GatewayServer(manager, game, config=gateway_config)
        with GatewayThread(server) as handle:
            gen = SocketLoadGenerator(
                handle.host, handle.port, scripts,
                clients=clients, arrival_rate=arrival_rate,
                trace_sample=trace_sample,
            )
            report = gen.run(sessions, timeout=timeout)
        results.append(GatewaySweepResult(shards=n_shards, report=report))
    return results
