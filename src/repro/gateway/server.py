"""Asyncio TCP gateway: the wire edge of the sharded session server.

The :class:`~repro.serve.manager.SessionManager` is thread-based and
in-process; this module puts a network front on it without touching its
concurrency model.  One asyncio event loop owns every socket; the shard
threads keep owning every engine.  The two worlds meet at exactly two
thread-safe seams:

* **submit** — ``SessionManager.submit`` is lock-protected and cheap,
  so the event loop calls it directly when a SUBMIT frame arrives.
* **completion** — each gateway-built session carries an ``on_done``
  callback; the owning shard fires it (on the shard thread) after the
  final step, and the callback hops back onto the event loop with
  ``loop.call_soon_threadsafe`` to push the END frame.

Backpressure is explicit on both sides of a connection:

* **inbound** — frames are read one at a time and dispatched before the
  next read, so a flooding client is paced by its own socket buffer;
* **outbound** — every connection owns a *bounded* frame queue drained
  by a writer task.  A reader too slow to keep up fills the queue and
  is disconnected (counted in
  ``repro_gateway_slow_reader_drops_total``) rather than growing the
  server's heap — the same reject-don't-buffer stance the manager's
  admission control takes.

Graceful drain mirrors the serve layer: ``shutdown(drain=True)`` stops
accepting connections, waits for in-flight sessions (which flushes and
fsyncs every shard journal via ``SessionManager.shutdown``), flushes
each connection's outbound queue, and only then closes sockets — a
client watching its socket sees every END it is owed before EOF.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional

from .. import faultline as _fl
from ..obs import attribution as _attr
from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs.tracing import span as _span
from ..persist.records import PersistError, op_from_dict, ops_from_dicts, state_digest
from ..serve.manager import SessionManager
from ..serve.session import ServedSession
from .protocol import (
    END,
    ERROR,
    FRAME_NAMES,
    HELLO,
    INPUT,
    PING,
    PROTOCOL_VERSION,
    QUERY,
    STATE,
    SUBMIT,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    negotiate_version,
)

__all__ = ["GatewayConfig", "GatewayServer", "GatewayThread"]

_M_CONNS = _obs.counter(
    "repro_gateway_connections_total",
    "TCP connections accepted by the gateway",
)
_M_ACTIVE = _obs.gauge(
    "repro_gateway_connections_active",
    "Currently open gateway connections",
)
_M_FRAMES = _obs.counter(
    "repro_gateway_frames_total",
    "Protocol frames processed, by direction and frame type",
)
_M_BYTES = _obs.counter(
    "repro_gateway_bytes_total",
    "Wire bytes moved through the gateway, by direction",
)
_M_HANDSHAKE = _obs.histogram(
    "repro_gateway_handshake_seconds",
    "Accept-to-HELLO-reply latency of one connection",
)
_M_SESSIONS = _obs.counter(
    "repro_gateway_sessions_total",
    "Sessions finished through the gateway, by outcome",
)
_M_REJECTED = _obs.counter(
    "repro_gateway_rejected_total",
    "SUBMIT frames rejected by admission control",
)
_M_PROTOERR = _obs.counter(
    "repro_gateway_protocol_errors_total",
    "Connections dropped for speaking the protocol wrong",
)
_M_DISCONNECTS = _obs.counter(
    "repro_gateway_disconnects_total",
    "Connections closed, by reason",
)
_M_SLOW = _obs.counter(
    "repro_gateway_slow_reader_drops_total",
    "Connections dropped because their outbound queue overflowed",
)

_LOG = _obslog.get_logger("gateway")


@dataclass(frozen=True, slots=True)
class GatewayConfig:
    """Knobs of the network edge (per connection unless noted)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``server.port``)
    port: int = 0
    #: reject any frame announcing a payload beyond this
    max_frame_bytes: int = 1 << 20
    #: bounded outbound frame queue; overflow = slow-reader disconnect
    outbound_queue_frames: int = 256
    #: a connection that sends nothing for this long is dropped
    #: (clients heartbeat with PING well inside it)
    idle_timeout_s: float = 60.0
    #: the HELLO frame must arrive this quickly after accept
    handshake_timeout_s: float = 10.0
    #: END payloads kept for clients that resume after completion
    finished_cache: int = 1024
    #: server-initiated request-trace sampling of SUBMITs that carry no
    #: client trace id (0.0 = only client-chosen traces; 1.0 = all)
    trace_sample: float = 0.0
    #: bind the live telemetry HTTP endpoint on this port (None =
    #: disabled, 0 = ephemeral; read it back from ``telemetry_port``)
    telemetry_port: Optional[int] = None
    #: telemetry bind address; None reuses ``host``
    telemetry_host: Optional[str] = None
    #: how often the telemetry server appends a metrics sample to the
    #: time-series ring
    telemetry_sample_interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be >= 1024")
        if self.outbound_queue_frames < 1:
            raise ValueError("outbound_queue_frames must be >= 1")
        if self.idle_timeout_s <= 0 or self.handshake_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.finished_cache < 0:
            raise ValueError("finished_cache must be >= 0")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be within [0, 1]")
        if self.telemetry_sample_interval_s <= 0:
            raise ValueError("telemetry_sample_interval_s must be positive")


class _LiveSession(ServedSession):
    """A served session that also drains gateway INPUT frames.

    ``extra`` is a deque shared with the event loop: the gateway
    appends ops from INPUT frames, the shard thread absorbs them into
    the script whenever it checks ``done``.  ``deque.popleft`` /
    ``list.append`` are atomic under the GIL, so no lock is needed; an
    op racing the session's completion is simply never absorbed (the
    client has already been sent END by then).
    """

    __slots__ = ("extra",)

    def __init__(
        self, *args: Any, extra: Optional[Deque[Any]] = None, **kwargs: Any
    ) -> None:
        super().__init__(*args, **kwargs)
        #: may be shared with the gateway's player entry, so ops that
        #: arrived before the factory ran are already queued here
        self.extra: Deque[Any] = deque() if extra is None else extra

    def _absorb_extra(self) -> None:
        while True:
            try:
                op = self.extra.popleft()
            except IndexError:
                return
            self.ops.append(op)

    @property
    def done(self) -> bool:
        self._absorb_extra()
        return ServedSession.done.fget(self)  # type: ignore[attr-defined]


class _PlayerEntry:
    """Gateway-side bookkeeping for one submitted/resumed player."""

    __slots__ = ("player_id", "session", "conn", "done_payload", "extra",
                 "trace_id")

    def __init__(self, player_id: str) -> None:
        self.player_id = player_id
        #: set by the factory on the shard thread once the engine exists
        self.session: Optional[ServedSession] = None
        #: the connection owed STATE/END frames for this player
        self.conn: Optional["_Connection"] = None
        self.done_payload: Optional[Dict[str, Any]] = None
        #: INPUT-frame op queue shared with the (future) _LiveSession —
        #: allocated at SUBMIT time so ops arriving before the shard
        #: thread has even built the engine are not lost; None for
        #: recovered sessions, which replay a fixed script
        self.extra: Optional[Deque[Any]] = None
        #: request-trace id for this player's session (sampled requests
        #: only) — survives disconnects alongside the session itself
        self.trace_id: Optional[str] = None


class _Connection:
    """One accepted socket: reader loop + bounded writer queue."""

    def __init__(
        self,
        server: "GatewayServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.config = server.config
        self.decoder = FrameDecoder(self.config.max_frame_bytes)
        #: (frame_bytes, trace_id, trace_status) — None is the flush
        #: marker; a trace id rides with its END frame so the writer
        #: can close the trace's flush phase after the actual drain
        self.outbound: "asyncio.Queue[Optional[tuple]]" = asyncio.Queue(
            maxsize=self.config.outbound_queue_frames
        )
        self.peer = writer.get_extra_info("peername")
        self.closed = False
        self.close_reason = "eof"
        self.players: List[str] = []
        #: negotiated at HELLO: min(our version, the client's)
        self.version = PROTOCOL_VERSION
        self._writer_task: Optional[asyncio.Task] = None

    # -- outbound ------------------------------------------------------
    def send(
        self,
        ftype: int,
        payload: Dict[str, Any],
        trace: Optional[str] = None,
        trace_status: str = "ok",
    ) -> bool:
        """Enqueue one frame; a full queue drops the whole connection."""
        if self.closed:
            return False
        frame = encode_frame(ftype, payload, version=self.version)
        try:
            self.outbound.put_nowait((frame, trace, trace_status))
        except asyncio.QueueFull:
            _M_SLOW.inc()
            _LOG.warning("gateway.slow_reader", peer=str(self.peer),
                         queued=self.outbound.qsize())
            self.abort("slow_reader")
            return False
        _M_FRAMES.inc(direction="out", type=FRAME_NAMES[ftype])
        return True

    def send_error(
        self,
        code: str,
        detail: str = "",
        seq: Optional[int] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        payload: Dict[str, Any] = {"code": code}
        if detail:
            payload["detail"] = detail
        if seq is not None:
            payload["seq"] = seq
        if extra:
            payload.update(extra)
        self.send(ERROR, payload)

    async def _write_loop(self) -> None:
        try:
            while True:
                item = await self.outbound.get()
                if item is None:
                    break
                frame, trace, trace_status = item
                self.writer.write(frame)
                _M_BYTES.inc(len(frame), direction="out")
                await self.writer.drain()
                if trace is not None:
                    # the END frame is in the kernel's hands: close the
                    # flush phase and the whole request trace
                    store = _attr.get_store()
                    store.mark(trace, "flush")
                    store.finish(trace, status=trace_status)
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass

    # -- teardown ------------------------------------------------------
    def abort(self, reason: str) -> None:
        """Mark the connection dead; the reader loop finishes teardown."""
        if self.closed:
            return
        self.closed = True
        self.close_reason = reason
        if self._writer_task is not None:
            self._writer_task.cancel()
        self.writer.close()

    async def _finish(self) -> None:
        """Flush what the peer is still owed, then close the socket."""
        if not self.closed:
            self.closed = True
            try:
                self.outbound.put_nowait(None)  # flush marker
            except asyncio.QueueFull:
                if self._writer_task is not None:
                    self._writer_task.cancel()
        if self._writer_task is not None:
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self.server._detach(self)
        _M_DISCONNECTS.inc(reason=self.close_reason)
        if _obs.enabled():
            _M_ACTIVE.set(len(self.server._connections))

    # -- inbound -------------------------------------------------------
    async def _read_frames(self, timeout: float) -> List[Any]:
        """One socket read, decoded; [] on clean EOF mid-nothing."""
        data = await asyncio.wait_for(self.reader.read(65536), timeout=timeout)
        if data:
            _M_BYTES.inc(len(data), direction="in")
            frames = self.decoder.feed(data)
        else:
            frames = []
        # A peer that hung up inside a frame left bytes the decoder can
        # never complete (mid-handshake disconnects land here): noted,
        # but not a protocol crime worth a counter that SLO-gates to
        # zero.  Checked on EOF, not just empty reads — on a fast
        # loopback the final data and the FIN arrive together, so the
        # read that drains the last bytes already observes at_eof().
        if self.reader.at_eof() and self.decoder.pending_bytes:
            self.close_reason = "truncated"
        return frames

    async def run(self) -> None:
        t_accept = perf_counter()
        _M_CONNS.inc()
        if _obs.enabled():
            _M_ACTIVE.set(len(self.server._connections))
        self._writer_task = asyncio.get_running_loop().create_task(
            self._write_loop()
        )
        try:
            with _span("gateway.handshake"):
                greeted = await self._handshake(t_accept)
            if greeted:
                await self._serve_frames()
        except asyncio.TimeoutError:
            self.close_reason = "idle"
            self.send_error("idle", "no frames within the idle timeout")
        except ProtocolError as exc:
            _M_PROTOERR.inc()
            self.close_reason = "protocol_error"
            _LOG.warning("gateway.protocol_error", peer=str(self.peer),
                         detail=str(exc))
            self.send_error("bad_frame", str(exc))
        except (ConnectionError, OSError):
            self.close_reason = "io_error"
        finally:
            await self._finish()

    async def _handshake(self, t_accept: float) -> bool:
        """First frame must be HELLO; reply in kind.  False on EOF."""
        frames: List[Any] = []
        while not frames:
            frames = await self._read_frames(self.config.handshake_timeout_s)
            if not frames and self.reader.at_eof():
                return False
        ftype, payload = frames[0]
        _M_FRAMES.inc(direction="in", type=FRAME_NAMES.get(ftype, "?"))
        if ftype != HELLO:
            raise ProtocolError(
                f"first frame must be HELLO, got {FRAME_NAMES.get(ftype, ftype)}"
            )
        # the decoder vouched the client's version is supported; speak
        # the lower of the two for the rest of the connection
        self.version = negotiate_version(
            self.decoder.last_version or PROTOCOL_VERSION
        )
        resumed = self.server._attach_players(
            self, payload.get("resume") or [],
            traces=payload.get("traces") if self.version >= 2 else None,
        )
        self.send(HELLO, {
            "server": "repro-gateway",
            "version": self.version,
            "shards": self.server.manager.config.n_shards,
            "resumed": resumed,
            "seq": payload.get("seq"),
        })
        _M_HANDSHAKE.observe(perf_counter() - t_accept)
        # END frames owed to already-finished resumed players
        for pid, status in resumed.items():
            if status == "done":
                self.server._push_end(self, pid)
        for ftype, payload in frames[1:]:
            self._dispatch(ftype, payload)
        return True

    def _live_trace_ids(self) -> List[str]:
        """Trace ids of the in-flight sessions riding this connection."""
        out: List[str] = []
        for pid in self.players:
            entry = self.server._players.get(pid)
            if entry is not None and entry.trace_id is not None \
                    and entry.done_payload is None:
                out.append(entry.trace_id)
        return out

    async def _serve_frames(self) -> None:
        while not self.closed:
            frames = await self._read_frames(self.config.idle_timeout_s)
            if not frames and self.reader.at_eof():
                return
            for ftype, payload in frames:
                if self.closed:
                    return
                if _fl.ACTIVE:
                    action = _fl.fire(
                        "gateway.frame", traces=self._live_trace_ids(),
                        peer=str(self.peer),
                        frame=FRAME_NAMES.get(ftype, "?"),
                    )
                    if action is not None:
                        if action.kind == "delay" and action.seconds > 0:
                            await asyncio.sleep(action.seconds)
                        elif action.kind == "drop":
                            # the wire died mid-frame-stream: this frame
                            # (and everything after it) is lost, the
                            # peer sees an abrupt disconnect
                            self.abort("fault_injected")
                            return
                self._dispatch(ftype, payload)

    def _dispatch(self, ftype: int, payload: Dict[str, Any]) -> None:
        _M_FRAMES.inc(direction="in", type=FRAME_NAMES.get(ftype, "?"))
        seq = payload.get("seq")
        if ftype == PING:
            self.send(PING, payload)  # echo, payload and all
        elif ftype == SUBMIT:
            self.server._handle_submit(self, payload)
        elif ftype == INPUT:
            self.server._handle_input(self, payload)
        elif ftype == QUERY:
            self.server._handle_query(self, payload)
        elif ftype == HELLO:
            resumed = self.server._attach_players(
                self, payload.get("resume") or [],
                traces=payload.get("traces") if self.version >= 2 else None,
            )
            self.send(HELLO, {
                "server": "repro-gateway",
                "version": self.version,
                "shards": self.server.manager.config.n_shards,
                "resumed": resumed,
                "seq": seq,
            })
            for pid, status in resumed.items():
                if status == "done":
                    self.server._push_end(self, pid)
        else:
            self.send_error(
                "unexpected_frame",
                f"{FRAME_NAMES.get(ftype, ftype)} is server-to-client",
                seq=seq,
            )


#: the single source of the standby-gateway write-refusal text; the
#: placement map (when one is attached) appends the current primary's
#: address so clients can re-route instead of guessing
READ_ONLY_DETAIL = (
    "this gateway serves a standby replica; writes go to the primary"
)


class GatewayServer:
    """The asyncio front-end; owns the listener and the player table.

    All mutable state (player table, connection set) is confined to the
    event loop; shard threads reach it only through
    ``call_soon_threadsafe``.  The manager may be passed unstarted —
    ``start()`` starts it — and with persistence configured,
    :meth:`recover` re-arms completion callbacks on every session the
    WAL rebuilds, so resumed clients still get their END frames.
    """

    def __init__(
        self,
        manager: SessionManager,
        game: Any,
        config: Optional[GatewayConfig] = None,
        with_video: bool = False,
        read_replica: Optional[Any] = None,
        placement: Optional[Any] = None,
    ) -> None:
        self.manager = manager
        self.game = game
        self.config = config or GatewayConfig()
        self.with_video = with_video
        #: a :class:`repro.replicate.StandbyReplica` (or anything with
        #: its ``query``/``status`` shape).  When set, this gateway is
        #: a *read replica*: SUBMIT/INPUT are rejected with a
        #: ``read_only`` error and QUERY answers from the replica's
        #: lag-bounded view instead of the live player table.
        self.read_replica = read_replica
        #: a :class:`repro.cluster.PlacementMap` (or anything with its
        #: ``primary_address`` shape); lets read-only refusals name the
        #: current primary so clients can re-route
        self.placement = placement
        self._players: Dict[str, _PlayerEntry] = {}
        self._finished: "OrderedDict[str, None]" = OrderedDict()
        self._connections: List[_Connection] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        #: deterministic head sampling of untraced SUBMITs
        self._sampler = (
            _attr.Sampler(self.config.trace_sample)
            if self.config.trace_sample > 0 else None
        )
        #: live telemetry endpoint (started with the listener when
        #: ``config.telemetry_port`` is set)
        self.telemetry: Optional[Any] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``GatewayConfig(port=0)``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("gateway is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def telemetry_port(self) -> Optional[int]:
        """The telemetry endpoint's bound port (None when disabled)."""
        return self.telemetry.port if self.telemetry is not None else None

    def recover(self) -> List[Any]:
        """Rebuild persisted sessions and re-arm their END callbacks."""
        return self.manager.recover(
            self.game,
            with_video=self.with_video,
            session_hook=self._adopt_recovered,
        )

    def _adopt_recovered(self, session: ServedSession) -> None:
        entry = _PlayerEntry(session.player_id)
        entry.session = session
        self._players[session.player_id] = entry
        session.on_done = self._on_session_done

    async def start(self) -> "GatewayServer":
        """Bind the listener (and start the manager if needed)."""
        self._loop = asyncio.get_running_loop()
        if not self.manager._started:
            self.manager.start()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        if self.config.telemetry_port is not None:
            from .telemetry import TelemetryServer

            self.telemetry = TelemetryServer(
                self,
                host=self.config.telemetry_host or self.config.host,
                port=self.config.telemetry_port,
                sample_interval_s=self.config.telemetry_sample_interval_s,
            )
            await self.telemetry.start()
        _LOG.info("gateway.listening", host=self.config.host, port=self.port,
                  shards=self.manager.config.n_shards,
                  telemetry=self.telemetry_port)
        return self

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        if _fl.ACTIVE:
            action = _fl.fire(
                "gateway.accept",
                peer=str(writer.get_extra_info("peername")),
            )
            if action is not None:
                if action.kind == "delay" and action.seconds > 0:
                    await asyncio.sleep(action.seconds)
                elif action.kind == "partition":
                    # a network partition: every established connection
                    # is severed and the new one never gets through
                    for other in list(self._connections):
                        other.abort("fault_injected")
                    writer.close()
                    return
                elif action.kind == "drop":
                    writer.close()
                    return
        conn = _Connection(self, reader, writer)
        self._connections.append(conn)
        await conn.run()

    def _detach(self, conn: _Connection) -> None:
        if conn in self._connections:
            self._connections.remove(conn)
        for pid in conn.players:
            entry = self._players.get(pid)
            if entry is not None and entry.conn is conn:
                entry.conn = None  # session keeps running; resumable

    async def shutdown(self, drain: bool = True, timeout: float = 30.0) -> bool:
        """Drain sessions, flush journals, flush sockets, close.

        The ordering is the durability contract: the manager shuts
        down first (draining flushes and fsyncs every shard journal),
        so by the time any socket sees EOF the sessions it carried are
        either finished-and-durable or deliberately discarded.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, lambda: self.manager.shutdown(drain=drain, timeout=timeout)
        )
        for conn in list(self._connections):
            await conn._finish()
        if self._server is not None:
            await self._server.wait_closed()
        if self.telemetry is not None:
            # last: /healthz stays scrapeable through the whole drain
            await self.telemetry.stop()
            self.telemetry = None
        _LOG.info("gateway.shutdown", drained=drained)
        return drained

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's ``repro gateway serve`` body)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # -- player table (event loop only) --------------------------------
    def _attach_players(
        self,
        conn: _Connection,
        resume: List[str],
        traces: Optional[Dict[str, str]] = None,
    ) -> Dict[str, str]:
        """Attach ``conn`` to each resumed player; report each status.

        ``traces`` (protocol v2) maps player id → the trace id the
        client used before its connection (or the whole gateway
        process) died; a live resumed session is re-attributed under
        the same id, so the waterfall a client fetches after a
        kill-and-reconnect still answers for the request it actually
        made.
        """
        statuses: Dict[str, str] = {}
        traces = traces if isinstance(traces, dict) else {}
        for pid in resume:
            pid = str(pid)
            entry = self._players.get(pid)
            if entry is None:
                statuses[pid] = "unknown"
                continue
            entry.conn = conn
            if pid not in conn.players:
                conn.players.append(pid)
            statuses[pid] = "done" if entry.done_payload is not None else "live"
            tid = traces.get(pid)
            if (
                isinstance(tid, str) and tid
                and statuses[pid] == "live"
                and entry.trace_id is None
            ):
                session = entry.session
                if session is not None and _attr.get_store().start(
                    tid, player=pid, source="gateway", resumed=True
                ):
                    entry.trace_id = tid
                    # plain attribute store: visible to the shard thread
                    # by its next done-check; phases recorded from here
                    # on re-attribute to the resumed session
                    session.trace_id = tid
        return statuses

    def _push_end(self, conn: _Connection, pid: str) -> None:
        entry = self._players.get(pid)
        if entry is not None and entry.done_payload is not None:
            conn.send(END, entry.done_payload)

    def _read_only_detail(self) -> str:
        """The write-refusal text, naming the primary when it's known."""
        detail = READ_ONLY_DETAIL
        if self.placement is not None:
            try:
                addr = self.placement.primary_address()
            except Exception:
                addr = None
            if addr:
                detail += f" (current primary: {addr})"
        return detail

    def _handle_submit(self, conn: _Connection, payload: Dict[str, Any]) -> None:
        seq = payload.get("seq")
        pid = payload.get("player")
        if not pid or not isinstance(pid, str):
            conn.send_error("bad_submit", "missing player id", seq=seq)
            return
        if self.read_replica is not None:
            conn.send_error("read_only", self._read_only_detail(), seq=seq)
            return
        if self._draining:
            conn.send_error("draining", "gateway is shutting down", seq=seq)
            return
        entry = self._players.get(pid)
        if entry is not None and entry.done_payload is None:
            conn.send_error("duplicate", f"session {pid!r} is live", seq=seq)
            return
        # Trace context: the client's id wins (v2 payload field), else
        # the server's own sampler may pick the request up.  Opening
        # the trace *before* parsing charges parse+admission to the
        # accept phase — the partition starts at frame receipt.
        store = _attr.get_store()
        trace_id = payload.get("trace") if conn.version >= 2 else None
        if not (isinstance(trace_id, str) and trace_id):
            trace_id = None
        if trace_id is None and self._sampler is not None and self._sampler():
            trace_id = _attr.new_trace_id()
        if trace_id is not None and not store.start(
            trace_id, player=pid, source="gateway"
        ):
            trace_id = None  # recording off, or a duplicate id
        try:
            ops = ops_from_dicts(payload.get("ops") or [])
            dt = float(payload.get("dt", 0.25))
        except (PersistError, KeyError, TypeError, ValueError) as exc:
            store.finish(trace_id, status="invalid")
            conn.send_error("bad_op", str(exc), seq=seq)
            return
        entry = _PlayerEntry(pid)
        entry.conn = conn
        entry.extra = deque()
        entry.trace_id = trace_id
        extra = entry.extra
        game, with_video, on_done = self.game, self.with_video, self._on_session_done
        finish = self._finish_session_threadsafe

        def factory(player_id: str) -> ServedSession:
            # Runs on the owning shard's thread: engine construction is
            # sharded, exactly like in-process submissions.
            try:
                engine = game.new_engine(with_video=with_video)
                session = _LiveSession(player_id, engine, ops, dt=dt,
                                       extra=extra)
            except Exception as exc:
                fail_payload: Dict[str, Any] = {
                    "player": player_id, "failed": True, "outcome": None,
                    "score": 0, "steps": 0, "digest": None,
                    "error": type(exc).__name__,
                }
                if trace_id is not None:
                    fail_payload["trace"] = trace_id
                finish(player_id, fail_payload)
                raise
            session.trace_id = trace_id
            session.on_done = on_done
            entry.session = session
            return session

        if not self.manager.submit(pid, factory):
            _M_REJECTED.inc()
            store.finish(trace_id, status="rejected")
            conn.send_error("rejected", "admission control refused", seq=seq)
            return
        # admission accepted: everything since frame receipt was accept
        store.mark(trace_id, "accept")
        self._players[pid] = entry
        if pid not in conn.players:
            conn.players.append(pid)
        ack: Dict[str, Any] = {
            "player": pid, "status": "admitted",
            "shard": self.manager.shard_for(pid), "seq": seq,
        }
        if trace_id is not None and conn.version >= 2:
            ack["trace"] = trace_id
        conn.send(STATE, ack)

    def _handle_input(self, conn: _Connection, payload: Dict[str, Any]) -> None:
        seq = payload.get("seq")
        pid = payload.get("player")
        if self.read_replica is not None:
            conn.send_error("read_only", self._read_only_detail(), seq=seq)
            return
        entry = self._players.get(pid) if isinstance(pid, str) else None
        if entry is None:
            conn.send_error("unknown_player", f"no session {pid!r}", seq=seq)
            return
        if entry.done_payload is not None:
            conn.send_error("finished", f"session {pid!r} already ended", seq=seq)
            return
        try:
            op = op_from_dict(payload.get("op") or {})
        except (PersistError, KeyError, TypeError) as exc:
            conn.send_error("bad_op", str(exc), seq=seq)
            return
        if entry.extra is not None:
            # shared with the _LiveSession (which may not be built yet:
            # the factory runs on the shard thread, and an INPUT racing
            # it must not be lost)
            entry.extra.append(op)
            if entry.trace_id is not None:
                _attr.get_store().increment(entry.trace_id, "live_inputs")
        else:
            # recovered sessions replay a fixed script; late ops
            # cannot be spliced in deterministically
            conn.send_error("not_interactive", f"session {pid!r} "
                            "does not accept live input", seq=seq)
            return
        conn.send(STATE, {"player": pid, "status": "queued", "seq": seq})

    def _handle_query(self, conn: _Connection, payload: Dict[str, Any]) -> None:
        """Read-only session status (protocol v3).

        On a read-replica gateway the answer comes from the standby's
        lag-bounded view; on a primary it reflects the live player
        table — either way QUERY never mutates anything.
        """
        seq = payload.get("seq")
        pid = payload.get("player")
        if not pid or not isinstance(pid, str):
            conn.send_error("bad_query", "missing player id", seq=seq)
            return
        if self.read_replica is not None:
            from ..replicate import ReplicaLagging

            try:
                view = self.read_replica.query(pid)
            except ReplicaLagging as exc:
                # lag_ticks + shard ride the ERROR frame so a load
                # balancer can back off proportionally, not blindly
                conn.send_error(
                    "replica_lagging", str(exc), seq=seq,
                    extra={
                        "lag_ticks": getattr(exc, "lag_ticks", None),
                        "shard": getattr(exc, "shard", None),
                    },
                )
                return
            except KeyError:
                conn.send_error("unknown_player", f"no session {pid!r}", seq=seq)
                return
            view = dict(view)
            view["seq"] = seq
            conn.send(STATE, view)
            return
        entry = self._players.get(pid)
        if entry is None:
            conn.send_error("unknown_player", f"no session {pid!r}", seq=seq)
            return
        if entry.done_payload is not None:
            ack = {
                "player": pid, "status": "done", "seq": seq,
                "digest": entry.done_payload.get("digest"),
                "outcome": entry.done_payload.get("outcome"),
            }
        else:
            ack = {
                "player": pid, "status": "live", "seq": seq,
                "shard": self.manager.shard_for(pid),
            }
        conn.send(STATE, ack)

    # -- completion bridge ---------------------------------------------
    def _on_session_done(self, session: ServedSession) -> None:
        """Shard-thread side of the bridge: snapshot, then hop loops."""
        state = session.engine.state
        payload = {
            "player": session.player_id,
            "failed": bool(session.failed),
            "outcome": None if session.failed else state.outcome,
            "score": 0 if session.failed else state.score,
            "steps": session.steps,
            "digest": None if session.failed else state_digest(state),
        }
        if session.trace_id is not None:
            payload["trace"] = session.trace_id
        self._finish_session_threadsafe(session.player_id, payload)

    def _finish_session_threadsafe(
        self, pid: str, payload: Dict[str, Any]
    ) -> None:
        if self._loop is None or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._finish_session, pid, payload)
        except RuntimeError:  # loop shut down mid-flight
            pass

    def _finish_session(self, pid: str, payload: Dict[str, Any]) -> None:
        """Event-loop side: record the END payload and push it out."""
        _M_SESSIONS.inc(
            outcome="failed" if payload.get("failed") else "completed"
        )
        entry = self._players.get(pid)
        if entry is None:  # recovered session nobody resumed yet
            entry = self._players[pid] = _PlayerEntry(pid)
        entry.done_payload = payload
        entry.session = None
        tid = payload.get("trace")
        tid = tid if isinstance(tid, str) and tid else None
        status = "failed" if payload.get("failed") else "ok"
        sent = False
        if entry.conn is not None:
            sent = entry.conn.send(END, payload, trace=tid,
                                   trace_status=status)
        if tid is not None and not sent:
            # nobody connected to flush to: the trace ends here with a
            # zero-width flush (the END is parked for a later resume)
            store = _attr.get_store()
            store.mark(tid, "flush")
            store.finish(tid, status=status)
        # Bounded memory for unclaimed results: oldest finished
        # sessions age out of the resume window first.
        self._finished[pid] = None
        self._finished.move_to_end(pid)
        while len(self._finished) > self.config.finished_cache:
            old, _ = self._finished.popitem(last=False)
            self._players.pop(old, None)


class GatewayThread:
    """Run a :class:`GatewayServer` on a dedicated event-loop thread.

    The synchronous façade the CLI bench, the benchmarks and the tests
    use: ``start()`` returns once the port is bound; ``stop()`` drains
    and joins.  Usable as a context manager.
    """

    def __init__(self, server: GatewayServer) -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def telemetry_port(self) -> Optional[int]:
        return self.server.telemetry_port

    def start(self, timeout: float = 10.0) -> "GatewayThread":
        loop = asyncio.new_event_loop()
        self._loop = loop

        def runner() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surfaced to the caller below
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            loop.run_forever()
            # cancel stragglers so the loop closes clean
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-gateway", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("gateway thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("gateway startup failed") from self._startup_error
        return self

    def stop(self, drain: bool = True, timeout: float = 60.0) -> bool:
        if self._loop is None or self._thread is None:
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain, timeout=timeout), self._loop
        )
        try:
            drained = future.result(timeout=timeout + 10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None
        return drained

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop(drain=not any(exc))
