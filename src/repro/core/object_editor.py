"""The Object Editor (§4.2).

"Users can set the properties and events of objects in video and produce
adequate feedback when users' trigger them."

The editor wraps a project with the Fig. 1 right-hand panes: an object
palette (place image / button / text / web link / item / NPC / reward),
a property panel, and an event panel that writes
:class:`~repro.events.model.EventBinding` rows.  High-level helpers
(``link_scenes``, ``feedback_on``, ``fetch_puzzle``) bundle the common
authoring idioms so a course designer never sees the raw binding model —
those helpers are exactly what the wizard (:mod:`repro.core.wizard`)
exposes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..events import (
    Action,
    AwardBonus,
    EndGame,
    EventBinding,
    SetProperty,
    ShowText,
    SwitchScenario,
    TakeItem,
    Trigger,
)
from ..objects import (
    ButtonObject,
    Hotspot,
    ImageObject,
    InteractiveObject,
    ItemObject,
    NPCObject,
    RectHotspot,
    RewardObject,
    TextObject,
    WebLinkObject,
)
from ..runtime import Dialogue
from .effort import AuthoringLedger
from .project import GameProject, ProjectError

__all__ = ["ObjectEditor"]


class ObjectEditor:
    """Point-and-click object & event authoring over a project."""

    def __init__(self, project: GameProject, ledger: Optional[AuthoringLedger] = None) -> None:
        self.project = project
        self.ledger = ledger if ledger is not None else AuthoringLedger()

    # ------------------------------------------------------------------
    # Placement (the palette)
    # ------------------------------------------------------------------
    def place_image(
        self,
        scenario_id: str,
        object_id: str,
        name: str,
        hotspot: Hotspot,
        pixels: Optional[np.ndarray] = None,
        description: str = "",
        **kwargs: Any,
    ) -> ImageObject:
        obj = ImageObject(
            object_id=object_id, name=name, hotspot=hotspot,
            pixels=pixels, description=description, **kwargs,
        )
        self._mount(scenario_id, obj)
        return obj

    def place_button(
        self,
        scenario_id: str,
        object_id: str,
        label: str,
        hotspot: Hotspot,
        **kwargs: Any,
    ) -> ButtonObject:
        obj = ButtonObject(
            object_id=object_id, name=label, label=label, hotspot=hotspot, **kwargs
        )
        self._mount(scenario_id, obj)
        return obj

    def place_text(self, scenario_id: str, object_id: str, text: str, hotspot: Hotspot) -> TextObject:
        obj = TextObject(object_id=object_id, name=f"text:{object_id}", text=text, hotspot=hotspot)
        self._mount(scenario_id, obj)
        return obj

    def place_weblink(self, scenario_id: str, object_id: str, name: str, url: str, hotspot: Hotspot) -> WebLinkObject:
        obj = WebLinkObject(object_id=object_id, name=name, url=url, hotspot=hotspot)
        self._mount(scenario_id, obj)
        return obj

    def place_item(
        self,
        scenario_id: str,
        object_id: str,
        name: str,
        hotspot: Hotspot,
        description: str = "",
        pixels: Optional[np.ndarray] = None,
    ) -> ItemObject:
        obj = ItemObject(
            object_id=object_id, name=name, hotspot=hotspot,
            description=description, pixels=pixels,
        )
        self._mount(scenario_id, obj)
        return obj

    def place_npc(
        self,
        scenario_id: str,
        object_id: str,
        name: str,
        hotspot: Hotspot,
        dialogue: Dialogue,
        description: str = "",
    ) -> NPCObject:
        """Place an NPC and register its conversation in one step."""
        if dialogue.dialogue_id not in self.project.dialogues:
            self.project.add_dialogue(dialogue)
            self.ledger.record("author_dialogue", "novice", detail=dialogue.dialogue_id)
        obj = NPCObject(
            object_id=object_id, name=name, hotspot=hotspot,
            dialogue_id=dialogue.dialogue_id, description=description,
        )
        self._mount(scenario_id, obj)
        return obj

    def place_reward(
        self,
        scenario_id: str,
        object_id: str,
        name: str,
        hotspot: Hotspot,
        bonus: int = 10,
    ) -> RewardObject:
        obj = RewardObject(object_id=object_id, name=name, hotspot=hotspot, bonus=bonus)
        self._mount(scenario_id, obj)
        return obj

    def _mount(self, scenario_id: str, obj: InteractiveObject) -> None:
        # Object ids are global: events, conditions and the inventory all
        # reference objects without naming a scenario.
        try:
            home, _ = self.project.find_object(obj.object_id)
        except ProjectError:
            pass
        else:
            raise ProjectError(
                f"object id {obj.object_id!r} already used in scenario {home!r}"
            )
        self.project.get_scenario(scenario_id).add_object(obj)
        self.ledger.record(f"place_{obj.kind}", "novice", detail=obj.object_id)

    # ------------------------------------------------------------------
    # Property panel
    # ------------------------------------------------------------------
    def set_property(self, object_id: str, key: str, value: Any) -> None:
        _, obj = self.project.find_object(object_id)
        obj.properties.set(key, value)
        self.ledger.record("set_property", "novice", detail=f"{object_id}.{key}")

    def set_description(self, object_id: str, text: str) -> None:
        """The examine feedback text."""
        _, obj = self.project.find_object(object_id)
        obj.description = text
        self.ledger.record("set_description", "novice", detail=object_id)

    def set_z_order(self, object_id: str, z: int) -> None:
        _, obj = self.project.find_object(object_id)
        obj.z_order = int(z)
        self.ledger.record("set_z_order", "novice", detail=object_id)

    # ------------------------------------------------------------------
    # Event panel
    # ------------------------------------------------------------------
    def bind(
        self,
        scenario_id: str,
        trigger: str,
        actions: Sequence[Action],
        object_id: Optional[str] = None,
        item_id: Optional[str] = None,
        condition: str = "",
        once: bool = False,
        priority: int = 0,
        timer_seconds: float = 0.0,
        skill: str = "editor",
    ) -> str:
        """Write one raw event binding (the advanced event panel).

        ``skill`` is the effort level charged; the high-level idioms
        below pass ``"novice"`` because the tool, not the author, builds
        the binding.
        """
        binding = EventBinding(
            scenario_id=scenario_id,
            trigger=trigger,
            object_id=object_id,
            item_id=item_id,
            condition=condition,
            once=once,
            priority=priority,
            timer_seconds=timer_seconds,
            actions=list(actions),
        )
        bid = self.project.events.add(binding)
        self.ledger.record("bind_event", skill, detail=bid)
        return bid

    # ------------------------------------------------------------------
    # High-level idioms (what the wizard exposes)
    # ------------------------------------------------------------------
    def link_scenes(
        self,
        from_scenario: str,
        to_scenario: str,
        label: str,
        hotspot: Optional[Hotspot] = None,
        button_id: Optional[str] = None,
    ) -> str:
        """Drop a navigation button that switches scenarios on click."""
        if to_scenario not in self.project.scenarios:
            raise ProjectError(f"no scenario {to_scenario!r} to link to")
        oid = button_id or f"{from_scenario}-go-{to_scenario}"
        if hotspot is None:
            n_existing = sum(
                1 for o in self.project.get_scenario(from_scenario).objects
                if o.kind == "button"
            )
            fw = (self.project.frame_size.width if self.project.frame_size else 320)
            hotspot = RectHotspot(fw - 70, 8 + 20 * n_existing, 62, 16)
        self.place_button(from_scenario, oid, label, hotspot)
        return self.bind(
            from_scenario,
            Trigger.CLICK,
            object_id=oid,
            actions=[SwitchScenario(target=to_scenario)],
            skill="novice",
        )

    def feedback_on(
        self,
        scenario_id: str,
        object_id: str,
        text: str,
        trigger: str = Trigger.CLICK,
        condition: str = "",
        once: bool = False,
    ) -> str:
        """Attach feedback text to a trigger — the §4.2 "adequate
        feedback when users trigger them"."""
        return self.bind(
            scenario_id,
            trigger,
            object_id=object_id,
            condition=condition,
            once=once,
            actions=[ShowText(text=text)],
            skill="novice",
        )

    def fetch_puzzle(
        self,
        target_scenario: str,
        target_object: str,
        item_id: str,
        success_text: str,
        bonus: int = 10,
        reward_id: Optional[str] = None,
        consume_item: bool = True,
        set_prop: Optional[Tuple[str, Any]] = None,
        end_outcome: Optional[str] = None,
        wrong_item_text: str = "That does not work here.",
        wrong_items: Sequence[str] = (),
    ) -> str:
        """Author the paper's worked example in one operation:

        "players move to another scenario … to get the components they
        needed and return … and fix the computer" (§3.2).  Using
        ``item_id`` on ``target_object`` pays out; using any of
        ``wrong_items`` produces corrective feedback instead — the
        "different feedback" the paper attributes to authoring.
        """
        actions: List[Action] = []
        if set_prop is not None:
            key, value = set_prop
            actions.append(SetProperty(object_id=target_object, key=key, value=value))
        if consume_item:
            actions.append(TakeItem(item_id=item_id))
        actions.append(AwardBonus(points=bonus, reward_id=reward_id))
        actions.append(ShowText(text=success_text))
        if end_outcome is not None:
            actions.append(EndGame(outcome=end_outcome))
        bid = self.bind(
            target_scenario,
            Trigger.USE_ITEM,
            object_id=target_object,
            item_id=item_id,
            once=True,
            actions=actions,
            skill="novice",
        )
        for wrong in wrong_items:
            self.bind(
                target_scenario,
                Trigger.USE_ITEM,
                object_id=target_object,
                item_id=wrong,
                actions=[ShowText(text=wrong_item_text)],
                skill="novice",
            )
        return bid
