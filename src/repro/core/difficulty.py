"""Difficulty estimation: tell the designer how hard their game is.

A course designer cannot judge difficulty from inside their own head —
they know the solution.  This module estimates difficulty from things
the platform can measure mechanically:

* **solution length** — the solver's shortest winning script;
* **state-space size** — how many distinct game states BFS reaches
  (decision surface the player navigates);
* **distractor ratio** — fraction of interactive objects that are *not*
  touched by the shortest solution (red herrings to examine);
* **random-rollout cost** — mean moves a uniformly-random player needs
  to stumble into the win (capped), the upper anchor of the difficulty
  scale; with the solver's length as the lower anchor, their ratio is
  the *guidance gap* a designer can close with hints/NPC lines.

The combined score maps onto the labels teachers actually use (warm-up /
lesson / challenge); weights are documented constants, swept by the
difficulty bench to show label stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from .project import CompiledGame
from .solver import Move, SolveResult, _apply, _legal_moves, solve

__all__ = ["DifficultyReport", "estimate_difficulty", "random_rollout"]

#: score = w_len * solution_length + w_states * log2(states)
#:       + w_gap * guidance_gap + w_distract * distractor_ratio * 10
WEIGHTS = {"len": 1.0, "states": 0.8, "gap": 1.2, "distract": 0.6}

#: label thresholds on the combined score
LABELS: List[Tuple[float, str]] = [
    (8.0, "warm-up"),
    (16.0, "lesson"),
    (float("inf"), "challenge"),
]


@dataclass(frozen=True, slots=True)
class DifficultyReport:
    """The designer-facing difficulty estimate."""

    solution_length: int
    states_explored: int
    distractor_ratio: float    #: in [0, 1]
    mean_random_moves: float   #: capped mean of random rollouts
    random_win_rate: float     #: fraction of rollouts that won within cap
    guidance_gap: float        #: mean_random_moves / solution_length
    score: float
    label: str


def random_rollout(
    game: CompiledGame,
    rng: np.random.Generator,
    max_actions: int = 300,
) -> Tuple[bool, int]:
    """One uniformly-random player; returns (won, moves_used)."""
    engine = game.new_engine(with_video=False)
    engine.start()
    for step in range(max_actions):
        if engine.state.outcome == "won":
            return True, step
        if engine.state.finished:
            return False, step
        moves = _legal_moves(engine)
        if not moves:
            return False, step
        move = moves[int(rng.integers(0, len(moves)))]
        try:
            _apply(engine, move)
        except Exception:
            continue
    return engine.state.outcome == "won", max_actions


def _solution_objects(script: List[Move]) -> Set[str]:
    out: Set[str] = set()
    for m in script:
        if m.object_id:
            out.add(m.object_id)
        if m.item_id:
            out.add(m.item_id)
    return out


def estimate_difficulty(
    game: CompiledGame,
    seed: int = 0,
    n_rollouts: int = 20,
    max_actions: int = 300,
    solver_max_states: int = 20000,
) -> DifficultyReport:
    """Estimate difficulty; raises if the game is not provably winnable."""
    result: SolveResult = solve(game, max_states=solver_max_states)
    if not result.winnable:
        raise ValueError(
            "cannot estimate difficulty: the game is not provably winnable "
            f"(winnable={result.winnable})"
        )
    solution = result.winning_script
    used = _solution_objects(solution)
    all_objects = [
        o.object_id for sc in game.scenarios.values() for o in sc.objects
    ]
    distractors = [o for o in all_objects if o not in used]
    distractor_ratio = len(distractors) / len(all_objects) if all_objects else 0.0

    rng = np.random.default_rng(seed)
    rollout_moves: List[int] = []
    wins = 0
    for _ in range(n_rollouts):
        won, moves = random_rollout(game, rng, max_actions=max_actions)
        wins += won
        rollout_moves.append(moves if won else max_actions)
    mean_random = float(np.mean(rollout_moves)) if rollout_moves else 0.0
    gap = mean_random / max(1, len(solution))

    score = (
        WEIGHTS["len"] * len(solution)
        + WEIGHTS["states"] * float(np.log2(max(2, result.states_explored)))
        + WEIGHTS["gap"] * gap
        + WEIGHTS["distract"] * distractor_ratio * 10.0
    )
    label = next(lbl for bound, lbl in LABELS if score < bound)
    return DifficultyReport(
        solution_length=len(solution),
        states_explored=result.states_explored,
        distractor_ratio=distractor_ratio,
        mean_random_moves=mean_random,
        random_win_rate=wins / n_rollouts if n_rollouts else 0.0,
        guidance_gap=gap,
        score=score,
        label=label,
    )
