"""The paper's primary contribution: the VGBL authoring tool.

``GameProject`` is the document; ``ScenarioEditor`` and ``ObjectEditor``
are the two §4 editing surfaces; ``GameWizard`` is the friendly top
layer; ``validate``/``solve`` prove a game is sound and winnable;
``save_project``/``load_project`` persist it; templates generate
complete parametric games.
"""

from .difficulty import DifficultyReport, estimate_difficulty, random_rollout
from .effort import SKILL_WEIGHTS, AuthoringLedger, EffortReport, Op
from .i18n import LocalePack, extract_strings, localize_game, missing_translations
from .object_editor import ObjectEditor
from .project import CompiledGame, GameProject, ProjectError
from .scenario_editor import ScenarioEditor
from .serialize import load_project, project_to_dict, save_project
from .solver import Move, SolveResult, enumerate_dialogue_paths, solve
from .templates import exploration_game, fetch_quest_game, quiz_game, scene_footage
from .undo import Command, CommandRecorder, UndoError, UndoStack
from .validation import Issue, Severity, ValidationReport, validate
from .wizard import GameWizard, WizardError

__all__ = [
    "AuthoringLedger",
    "Command",
    "CommandRecorder",
    "CompiledGame",
    "DifficultyReport",
    "UndoError",
    "UndoStack",
    "estimate_difficulty",
    "random_rollout",
    "EffortReport",
    "GameProject",
    "GameWizard",
    "Issue",
    "LocalePack",
    "Move",
    "extract_strings",
    "localize_game",
    "missing_translations",
    "ObjectEditor",
    "Op",
    "ProjectError",
    "SKILL_WEIGHTS",
    "ScenarioEditor",
    "Severity",
    "SolveResult",
    "ValidationReport",
    "WizardError",
    "enumerate_dialogue_paths",
    "exploration_game",
    "fetch_quest_game",
    "load_project",
    "project_to_dict",
    "quiz_game",
    "save_project",
    "scene_footage",
    "solve",
    "validate",
]
