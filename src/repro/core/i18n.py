"""Localisation: one authored game, many languages.

The VGBL platform targets "general users" producing "unspecified
contents" (§1) — in Taiwanese classrooms of 2007 that meant bilingual
course material.  Localisation here is a *compile-time* transform: the
designer authors in a base language; a :class:`LocalePack` maps every
player-visible string to its translation; ``localize_game`` produces a
new :class:`~repro.core.project.CompiledGame` with every string swapped.

Player-visible strings live in known places — ``ShowText`` actions,
``EndGame`` outcomes stay internal, object names/descriptions, button
labels, dialogue lines and choice texts — so extraction
(:func:`extract_strings`) is mechanical, and
:func:`missing_translations` gives the validator-style completeness
check before shipping a locale.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..events import EventBinding, EventTable, ShowText
from ..graph import Scenario
from ..runtime import Dialogue, DialogueChoice, DialogueNode
from .project import CompiledGame

__all__ = [
    "LocalePack",
    "extract_strings",
    "localize_game",
    "missing_translations",
]


@dataclass(slots=True)
class LocalePack:
    """A translation table for one target locale."""

    locale: str
    translations: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.locale:
            raise ValueError("locale tag must be non-empty")

    def translate(self, text: str) -> str:
        """Translate, falling back to the source text."""
        return self.translations.get(text, text)

    def add(self, source: str, target: str) -> None:
        if not source:
            raise ValueError("source string must be non-empty")
        self.translations[source] = target

    def __len__(self) -> int:
        return len(self.translations)


def extract_strings(game: CompiledGame) -> List[str]:
    """Every player-visible string of a game, deduplicated, in a stable
    order (the translator's worklist)."""
    seen: Set[str] = set()
    ordered: List[str] = []

    def visit(text: Optional[str]) -> None:
        if text and text not in seen:
            seen.add(text)
            ordered.append(text)

    visit(game.title)
    for sc in game.scenarios.values():
        visit(sc.title)
        for obj in sc.objects:
            visit(obj.name)
            visit(obj.description)
            visit(getattr(obj, "label", None))
            visit(getattr(obj, "text", None))
    for binding in game.events:
        for action in binding.actions:
            if isinstance(action, ShowText):
                visit(action.text)
    for dlg in game.dialogues.values():
        for node in dlg.nodes.values():
            visit(node.line)
            for choice in node.choices:
                visit(choice.text)
    return ordered


def missing_translations(game: CompiledGame, pack: LocalePack) -> List[str]:
    """Source strings the pack does not cover (ship blocker check)."""
    return [s for s in extract_strings(game) if s not in pack.translations]


def localize_game(game: CompiledGame, pack: LocalePack) -> CompiledGame:
    """A deep-copied game with every player-visible string translated.

    The video container and all ids are shared/unchanged; only display
    strings differ, so save-games and analytics remain comparable across
    locales.
    """
    t = pack.translate

    scenarios: Dict[str, Scenario] = {}
    for sid, sc in game.scenarios.items():
        new_sc = Scenario(
            sc.scenario_id, t(sc.title), sc.segment_ref,
            loop=sc.loop, on_finish=sc.on_finish,
        )
        for obj in sc.objects:
            clone = copy.deepcopy(obj)
            clone.name = t(clone.name)
            clone.description = t(clone.description) if clone.description else ""
            if hasattr(clone, "label"):
                clone.label = t(clone.label)
            if hasattr(clone, "text") and isinstance(getattr(clone, "text"), str):
                clone.text = t(clone.text)
            new_sc.add_object(clone)
        scenarios[sid] = new_sc

    events = EventTable()
    for binding in game.events:
        actions = []
        for action in binding.actions:
            if isinstance(action, ShowText):
                actions.append(ShowText(text=t(action.text)))
            else:
                actions.append(action)
        events.add(EventBinding(
            binding_id=binding.binding_id,
            scenario_id=binding.scenario_id,
            trigger=binding.trigger,
            object_id=binding.object_id,
            item_id=binding.item_id,
            condition=binding.condition,
            once=binding.once,
            priority=binding.priority,
            timer_seconds=binding.timer_seconds,
            actions=actions,
        ))

    dialogues: Dict[str, Dialogue] = {}
    for did, dlg in game.dialogues.items():
        nodes = [
            DialogueNode(
                node_id=node.node_id,
                line=t(node.line),
                choices=[
                    DialogueChoice(
                        text=t(c.text), next_node=c.next_node,
                        actions=list(c.actions),
                    )
                    for c in node.choices
                ],
            )
            for node in dlg.nodes.values()
        ]
        dialogues[did] = Dialogue(dlg.dialogue_id, nodes, dlg.root)

    return CompiledGame(
        title=t(game.title),
        scenarios=scenarios,
        events=events,
        dialogues=dialogues,
        start=game.start,
        container=game.container,
    )
