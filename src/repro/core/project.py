"""GameProject: the document the authoring tool edits.

A project gathers everything a course designer produces (§4):

* imported *footage* (named clips with fps) — the raw material;
* *committed segments* — footage cut into scenario components, in
  container order;
* *scenarios* — segments promoted to interactive scenes with objects;
* the *event table* and *dialogues*;
* game metadata (title, author, start scenario, codec choice).

``compile()`` freezes the project into a :class:`CompiledGame`: segments
are encoded into an RVID container and the runtime pieces are bundled so
``new_engine()`` can mint independent play sessions — the separation
between the authoring tool and the gaming platform that §4 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..events import EventTable
from ..graph import Scenario, ScenarioGraph, build_graph
from ..runtime import Dialogue, GameEngine
from ..video import Frame, FrameSize, VideoReader, VideoSegment, VideoWriter
from ..video.player import Clock

__all__ = ["CompiledGame", "GameProject", "ProjectError"]


class ProjectError(ValueError):
    """Raised on inconsistent project operations."""


@dataclass(slots=True)
class _Footage:
    """One imported clip."""

    name: str
    frames: List[Frame]
    fps: float


class GameProject:
    """The authoring document.  Mutated through the editors in
    :mod:`repro.core.scenario_editor` / :mod:`repro.core.object_editor`;
    direct mutation is allowed but bypasses effort accounting."""

    def __init__(
        self,
        title: str,
        author: str = "",
        frame_size: Optional[FrameSize] = None,
        fps: float = 24.0,
        codec_name: str = "delta",
        codec_params: Optional[Dict] = None,
    ) -> None:
        if not title:
            raise ProjectError("project title must be non-empty")
        if fps <= 0:
            raise ProjectError("fps must be positive")
        self.title = title
        self.author = author
        self.frame_size = frame_size  # fixed by the first imported footage
        self.fps = float(fps)
        self.codec_name = codec_name
        self.codec_params = dict(codec_params or {})
        self.footage: Dict[str, _Footage] = {}
        self.segments: List[VideoSegment] = []
        self.scenarios: Dict[str, Scenario] = {}
        self.events = EventTable()
        self.dialogues: Dict[str, Dialogue] = {}
        self.start_scenario: Optional[str] = None

    # ------------------------------------------------------------------
    # Footage
    # ------------------------------------------------------------------
    def import_footage(self, name: str, frames: Sequence[Frame], fps: Optional[float] = None) -> None:
        """Register a clip under ``name`` (the §4.1 "select video files")."""
        if not name:
            raise ProjectError("footage name must be non-empty")
        if name in self.footage:
            raise ProjectError(f"footage {name!r} already imported")
        if not frames:
            raise ProjectError(f"footage {name!r} has no frames")
        size = frames[0].size
        if self.frame_size is None:
            self.frame_size = size
        elif size != self.frame_size:
            raise ProjectError(
                f"footage {name!r} is {size}, project is {self.frame_size}"
            )
        self.footage[name] = _Footage(name=name, frames=list(frames), fps=fps or self.fps)

    def get_footage_frames(self, name: str) -> List[Frame]:
        try:
            return self.footage[name].frames
        except KeyError:
            raise ProjectError(f"no footage named {name!r}") from None

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    def commit_segment(self, segment: VideoSegment) -> int:
        """Append a segment to the container order; returns its ref."""
        if self.frame_size is None:
            self.frame_size = segment.size
        elif segment.size != self.frame_size:
            raise ProjectError(
                f"segment {segment.name!r} is {segment.size}, project is {self.frame_size}"
            )
        if any(s.name == segment.name for s in self.segments):
            raise ProjectError(f"segment name {segment.name!r} already committed")
        self.segments.append(segment)
        return len(self.segments) - 1

    def segment_ref(self, name: str) -> int:
        """Container index of a committed segment by name."""
        for i, s in enumerate(self.segments):
            if s.name == name:
                return i
        raise ProjectError(f"no committed segment named {name!r}")

    # ------------------------------------------------------------------
    # Scenarios / dialogues
    # ------------------------------------------------------------------
    def add_scenario(self, scenario: Scenario) -> None:
        if scenario.scenario_id in self.scenarios:
            raise ProjectError(f"scenario {scenario.scenario_id!r} already exists")
        if scenario.segment_ref >= len(self.segments):
            raise ProjectError(
                f"scenario {scenario.scenario_id!r} references segment "
                f"{scenario.segment_ref}, only {len(self.segments)} committed"
            )
        self.scenarios[scenario.scenario_id] = scenario
        if self.start_scenario is None:
            self.start_scenario = scenario.scenario_id

    def get_scenario(self, scenario_id: str) -> Scenario:
        try:
            return self.scenarios[scenario_id]
        except KeyError:
            raise ProjectError(f"no scenario {scenario_id!r}") from None

    def add_dialogue(self, dialogue: Dialogue) -> None:
        if dialogue.dialogue_id in self.dialogues:
            raise ProjectError(f"dialogue {dialogue.dialogue_id!r} already exists")
        self.dialogues[dialogue.dialogue_id] = dialogue

    def set_start(self, scenario_id: str) -> None:
        if scenario_id not in self.scenarios:
            raise ProjectError(f"no scenario {scenario_id!r}")
        self.start_scenario = scenario_id

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def graph(self) -> ScenarioGraph:
        """The derived branching graph (editor pane / validator input)."""
        if self.start_scenario is None:
            raise ProjectError("project has no scenarios yet")
        return build_graph(self.scenarios, self.events, self.start_scenario)

    def find_object(self, object_id: str) -> Tuple[str, object]:
        """Locate an object anywhere: returns (scenario_id, object)."""
        for sid, sc in self.scenarios.items():
            if sc.has_object(object_id):
                return sid, sc.get_object(object_id)
        raise ProjectError(f"no object {object_id!r} in any scenario")

    @property
    def object_count(self) -> int:
        return sum(len(sc) for sc in self.scenarios.values())

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledGame":
        """Freeze into a playable game (encodes the video container)."""
        if not self.segments:
            raise ProjectError("cannot compile: no committed segments")
        if self.start_scenario is None:
            raise ProjectError("cannot compile: no scenarios")
        if self.frame_size is None:
            raise ProjectError("cannot compile: frame size undetermined")
        writer = VideoWriter(
            self.frame_size,
            fps=self.fps,
            codec_name=self.codec_name,
            codec_params=self.codec_params,
        )
        for seg in self.segments:
            writer.add_segment(seg.frames)
        container = writer.tobytes()
        return CompiledGame(
            title=self.title,
            scenarios=dict(self.scenarios),
            events=self.events,
            dialogues=dict(self.dialogues),
            start=self.start_scenario,
            container=container,
        )


@dataclass(slots=True)
class CompiledGame:
    """An immutable playable bundle produced by ``GameProject.compile``."""

    title: str
    scenarios: Dict[str, Scenario]
    events: EventTable
    dialogues: Dict[str, Dialogue]
    start: str
    container: bytes

    def new_engine(
        self,
        clock: Optional[Clock] = None,
        with_video: bool = True,
        inventory_capacity: int = 12,
    ) -> GameEngine:
        """Mint a fresh play session.

        ``with_video=False`` skips container decode for logic-only runs
        (cohort simulations) — the engine behaves identically except for
        rendering.
        """
        reader = VideoReader(self.container) if with_video else None
        size = VideoReader(self.container).size if not with_video else None
        return GameEngine(
            scenarios=self.scenarios,
            events=self.events,
            start=self.start,
            reader=reader,
            dialogues=self.dialogues,
            clock=clock,
            frame_size=size,
            inventory_capacity=inventory_capacity,
        )

    @property
    def container_bytes(self) -> int:
        return len(self.container)
