"""Game templates: parametric generators of complete projects.

The authoring tool ships templates so designers start from a working
game instead of a blank canvas; the benchmarks also use them to produce
games of controlled size (scenario count, chain depth) for the scaling
experiments.

``fetch_quest_game``
    The paper's worked example generalised: a chain of N fetch quests
    across M scenes (find item_k in scene a_k, use it on target_k in
    scene b_k), ending in a win.  Depth-parameterised for E4/E6.
``quiz_game``
    Linear video lesson punctuated by question scenes whose answer
    buttons branch to "correct"/"incorrect" feedback and award bonuses —
    the knowledge-assessment pattern.
``exploration_game``
    A hub-and-spoke museum: a hub scene with doors to K exhibit scenes,
    each with examinable props and a web link; visiting everything wins.
    The engagement baseline for curious play styles.

All generators synthesise their own footage deterministically from a
seed, so templates are runnable with zero assets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..events import AwardBonus, EndGame, SetFlag, ShowText, Trigger
from ..objects import RectHotspot
from ..video import Frame, FrameSize, ShotSpec, generate_clip
from .wizard import GameWizard

__all__ = ["exploration_game", "fetch_quest_game", "quiz_game", "scene_footage"]


def scene_footage(
    size: FrameSize, seed: int, duration: int = 12, noise: int = 0
) -> List[Frame]:
    """Deterministic one-shot footage for a template scene.

    ``noise`` adds camera grain (peak amplitude in grey levels); grainy
    footage encodes orders of magnitude larger, which the streaming
    experiments use to model real camera material.
    """
    rng = np.random.default_rng(seed)
    top = tuple(int(v) for v in rng.integers(30, 226, size=3))
    bottom = tuple(int(v) for v in rng.integers(30, 226, size=3))
    clip = generate_clip(
        size,
        [ShotSpec(duration=duration, top_color=top, bottom_color=bottom,
                  noise_level=noise)],
        seed=seed if noise else None,
    )
    return clip.frames


def fetch_quest_game(
    n_quests: int = 2,
    size: FrameSize = FrameSize(160, 120),
    seed: int = 1234,
    title: str = "Fetch Quest Chain",
    noise: int = 0,
) -> GameWizard:
    """A chain of ``n_quests`` fetch quests across ``n_quests + 1`` scenes.

    Quest *k*: the item lives in scene ``k+1``; it must be used on the
    target prop in scene ``0`` (the hub classroom).  Completing quest
    ``n_quests`` wins.  Returns the wizard (callers can keep editing or
    ``build()``).
    """
    if n_quests < 1:
        raise ValueError("n_quests must be >= 1")
    wiz = GameWizard(title, author="template")
    wiz.scene("hub", "Hub room", scene_footage(size, seed, noise=noise))
    for k in range(n_quests):
        sid = f"place-{k}"
        wiz.scene(sid, f"Place {k}", scene_footage(size, seed + 1 + k, noise=noise))
        wiz.connect("hub", sid, f"Go to place {k}", "Back to hub")
        wiz.item(
            sid,
            f"part-{k}",
            f"Part {k}",
            at=(20 + 10 * (k % 6), 60, 10, 10),
            description=f"Component number {k}.",
        )
        wiz.prop(
            "hub",
            f"machine-{k}",
            f"Machine {k}",
            at=(14 + 22 * (k % 6), 20 + 26 * (k // 6), 18, 18),
            description=f"Machine {k} is missing a part.",
            properties={"state": "broken"},
        )
    for k in range(n_quests):
        wiz.fetch_quest(
            item=f"part-{k}",
            target=f"machine-{k}",
            success_text=f"Machine {k} hums back to life!",
            bonus=10,
            reward_name=f"Badge {k}" if k == n_quests - 1 else None,
            win=(k == n_quests - 1),
        )
    wiz.starts_in("hub")
    return wiz


def quiz_game(
    questions: Sequence[Tuple[str, Sequence[str], int]],
    size: FrameSize = FrameSize(160, 120),
    seed: int = 99,
    title: str = "Video Quiz",
    points_per_question: int = 5,
) -> GameWizard:
    """A lesson → question → feedback chain.

    ``questions`` is a list of ``(prompt, options, correct_index)``.
    Each question scene shows the prompt on entry and one button per
    option; the correct button awards points and advances, wrong buttons
    give corrective feedback.  Answering the last question wins.
    """
    if not questions:
        raise ValueError("quiz needs at least one question")
    for q, (prompt, options, correct) in enumerate(questions):
        if not 0 <= correct < len(options):
            raise ValueError(f"question {q}: correct index out of range")
        if len(options) < 2:
            raise ValueError(f"question {q}: need at least two options")

    wiz = GameWizard(title, author="template")
    wiz.scene("lesson", "Lesson", scene_footage(size, seed))
    wiz.narration("lesson", "Watch the lesson, then answer the questions.")
    prev = "lesson"
    for q, (prompt, options, correct) in enumerate(questions):
        sid = f"question-{q}"
        wiz.scene(sid, f"Question {q + 1}", scene_footage(size, seed + q + 1))
        wiz.narration(sid, prompt)
        wiz.connect(prev, sid, "Continue" if q == 0 else "Next question", "")
        editor = wiz._object_editor
        for i, option in enumerate(options):
            oid = f"q{q}-opt{i}"
            editor.place_button(
                sid, oid, option, RectHotspot(10, 16 + 18 * i, 90, 14)
            )
            if i == correct:
                actions = [
                    AwardBonus(points=points_per_question),
                    ShowText(text="Correct!"),
                    SetFlag(name=f"answered-{q}"),
                ]
                if q == len(questions) - 1:
                    actions.append(EndGame(outcome="won"))
                editor.bind(sid, Trigger.CLICK, object_id=oid, once=True, actions=actions)
            else:
                editor.bind(
                    sid,
                    Trigger.CLICK,
                    object_id=oid,
                    actions=[ShowText(text="Not quite - think again.")],
                )
        prev = sid
    wiz.starts_in("lesson")
    return wiz


def exploration_game(
    n_exhibits: int = 4,
    size: FrameSize = FrameSize(160, 120),
    seed: int = 7,
    title: str = "Museum Explorer",
) -> GameWizard:
    """Hub-and-spoke museum; examining every exhibit prop wins.

    Each exhibit has a prop whose first examine sets a flag; a timer
    binding on the hub checks all flags and ends the game with a bonus —
    demonstrating flag-conjunction conditions and timer triggers.
    """
    if n_exhibits < 1:
        raise ValueError("n_exhibits must be >= 1")
    wiz = GameWizard(title, author="template")
    wiz.scene("hall", "Entrance hall", scene_footage(size, seed))
    wiz.narration("hall", "Explore every exhibit, then return here.")
    editor = wiz._object_editor
    for k in range(n_exhibits):
        sid = f"exhibit-{k}"
        wiz.scene(sid, f"Exhibit {k}", scene_footage(size, seed + 10 + k))
        wiz.connect("hall", sid, f"Exhibit {k}", "Back to hall")
        wiz.prop(
            sid,
            f"artifact-{k}",
            f"Artifact {k}",
            at=(50, 40, 24, 24),
            description=f"A fascinating artifact, number {k}.",
        )
        editor.bind(
            sid,
            Trigger.EXAMINE,
            object_id=f"artifact-{k}",
            once=True,
            actions=[
                SetFlag(name=f"seen-{k}"),
                AwardBonus(points=2),
                ShowText(text=f"You studied artifact {k} closely."),
            ],
        )
    all_seen = " and ".join(f"flag('seen-{k}')" for k in range(n_exhibits))
    editor.bind(
        "hall",
        Trigger.ENTER,
        condition=all_seen,
        once=True,
        actions=[
            AwardBonus(points=10),
            ShowText(text="You explored the whole museum!"),
            EndGame(outcome="won"),
        ],
    )
    wiz.starts_in("hall")
    return wiz
