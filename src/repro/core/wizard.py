"""GameWizard: the "friendly interface" of the paper's abstract.

"The interactive game authoring tool proposed in this paper provides a
friendly interface to help the users to create their educational games
easily."

The wizard is the highest-level authoring surface: a fluent builder in
course-designer vocabulary (scenes, props, items, helpers, quests) that
drives the scenario editor and object editor underneath.  Every wizard
operation is a *novice*-level ledger entry; experiment E7 compares the
wizard's effort profile against authoring the same game through the raw
editors and against the scripted "programmer" baseline.

Typical flow::

    game = (
        GameWizard("Fix the Computer", author="Ms. Lee")
        .movie(frames, scene_titles=["Classroom", "Market"])
        .helper("classroom", "teacher", "Teacher", at=(5, 20, 14, 30),
                lines=["The computer is broken.",
                       "Find a part at the market!"])
        .prop("classroom", "computer", "Computer", at=(60, 40, 30, 30),
              description="It will not boot.", properties={"state": "broken"})
        .item("market", "ram", "RAM module", at=(70, 70, 10, 10))
        .connect("classroom", "market", "To market", "Back to class")
        .fetch_quest(item="ram", target="computer",
                     success_text="The computer boots!",
                     bonus=20, reward_name="Repair badge", win=True)
        .build()
    )
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..events import ShowText, Trigger
from ..objects import RectHotspot
from ..runtime import Dialogue
from ..video import DetectorConfig, Frame
from .effort import AuthoringLedger
from .object_editor import ObjectEditor
from .project import CompiledGame, GameProject
from .scenario_editor import ScenarioEditor
from .validation import ValidationReport, validate

__all__ = ["GameWizard", "WizardError"]

Rect = Tuple[float, float, float, float]


class WizardError(ValueError):
    """Raised on invalid wizard usage, in designer-friendly terms."""


class GameWizard:
    """Fluent, novice-level game authoring.  See module docstring."""

    def __init__(self, title: str, author: str = "", fps: float = 24.0) -> None:
        self.ledger = AuthoringLedger()
        self.project = GameProject(title=title, author=author, fps=fps)
        self._scenario_editor = ScenarioEditor(self.project, self.ledger)
        self._object_editor = ObjectEditor(self.project, self.ledger)
        self._scene_order: List[str] = []
        self._reward_counter = 0

    # ------------------------------------------------------------------
    # Scenes
    # ------------------------------------------------------------------
    def scene(self, scene_id: str, title: str, frames: Sequence[Frame]) -> "GameWizard":
        """Add one scene whose video is supplied directly."""
        name = f"{scene_id}-video"
        self._scenario_editor.import_footage(name, frames)
        self._scenario_editor.commit_whole(name)
        self._scenario_editor.create_scenario(scene_id, title, name)
        self._scene_order.append(scene_id)
        return self

    def movie(
        self,
        frames: Sequence[Frame],
        scene_titles: Sequence[str],
        scene_ids: Optional[Sequence[str]] = None,
        detector: Optional[DetectorConfig] = None,
    ) -> "GameWizard":
        """Import one movie and split it into scenes automatically.

        The shot detector proposes the cuts; the number of detected
        segments must match ``scene_titles`` (adjust the titles or film
        with clearer cuts otherwise — the error says which).
        """
        if not scene_titles:
            raise WizardError("movie() needs at least one scene title")
        self._scenario_editor.import_footage("movie", frames)
        timeline = self._scenario_editor.auto_segment("movie", detector)
        if len(timeline) != len(scene_titles):
            raise WizardError(
                f"the movie was cut into {len(timeline)} scenes but "
                f"{len(scene_titles)} titles were given; adjust one of them"
            )
        ids = list(
            scene_ids
            or [t.lower().replace(" ", "-") for t in scene_titles]
        )
        if len(ids) != len(scene_titles):
            raise WizardError("scene_ids and scene_titles lengths differ")
        old_names = list(timeline.names)
        for old, sid in zip(old_names, ids):
            self._scenario_editor.rename_segment("movie", old, f"{sid}-video")
        self._scenario_editor.commit("movie")
        for sid, title in zip(ids, scene_titles):
            self._scenario_editor.create_scenario(sid, title, f"{sid}-video")
            self._scene_order.append(sid)
        return self

    def starts_in(self, scene_id: str) -> "GameWizard":
        """Choose the opening scene (default: the first one added)."""
        self._scenario_editor.set_start(scene_id)
        return self

    # ------------------------------------------------------------------
    # Things in scenes
    # ------------------------------------------------------------------
    def prop(
        self,
        scene_id: str,
        object_id: str,
        name: str,
        at: Rect,
        description: str = "",
        properties: Optional[Dict] = None,
    ) -> "GameWizard":
        """A fixed prop the player can examine (image object)."""
        self._object_editor.place_image(
            scene_id, object_id, name, RectHotspot(*at), description=description
        )
        for k, v in (properties or {}).items():
            self._object_editor.set_property(object_id, k, v)
        return self

    def item(
        self,
        scene_id: str,
        object_id: str,
        name: str,
        at: Rect,
        description: str = "",
    ) -> "GameWizard":
        """A collectable item (drag into the backpack)."""
        self._object_editor.place_item(
            scene_id, object_id, name, RectHotspot(*at), description=description
        )
        return self

    def helper(
        self,
        scene_id: str,
        object_id: str,
        name: str,
        at: Rect,
        lines: Sequence[str],
    ) -> "GameWizard":
        """An NPC who speaks the given fixed lines when talked to."""
        if not lines:
            raise WizardError(f"helper {name!r} needs at least one line")
        dlg = Dialogue.linear(f"dlg-{object_id}", list(lines))
        self._object_editor.place_npc(
            scene_id, object_id, name, RectHotspot(*at), dialogue=dlg
        )
        return self

    def website(
        self, scene_id: str, object_id: str, name: str, url: str, at: Rect
    ) -> "GameWizard":
        """A link object that shows a web page when clicked."""
        self._object_editor.place_weblink(scene_id, object_id, name, url, RectHotspot(*at))
        from ..events import OpenWeb

        self._object_editor.bind(
            scene_id, Trigger.CLICK, object_id=object_id, actions=[OpenWeb(url=url)]
        )
        return self

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def connect(
        self,
        scene_a: str,
        scene_b: str,
        label_ab: str,
        label_ba: Optional[str] = None,
    ) -> "GameWizard":
        """Navigation buttons between two scenes (both ways unless
        ``label_ba`` is None-like "")."""
        self._object_editor.link_scenes(scene_a, scene_b, label_ab)
        if label_ba:
            self._object_editor.link_scenes(scene_b, scene_a, label_ba)
        return self

    def narration(self, scene_id: str, text: str, once: bool = True) -> "GameWizard":
        """Text shown when the player enters a scene."""
        self._object_editor.bind(
            scene_id, Trigger.ENTER, once=once, actions=[ShowText(text=text)]
        )
        return self

    def feedback(
        self,
        scene_id: str,
        object_id: str,
        text: str,
        when: str = "",
    ) -> "GameWizard":
        """Feedback text on clicking an object, optionally guarded."""
        self._object_editor.feedback_on(
            scene_id, object_id, text, condition=when
        )
        return self

    def on_approach(
        self,
        scene_id: str,
        object_id: str,
        text: str,
        once_per_visit_only: bool = True,
    ) -> "GameWizard":
        """Text shown when the avatar walks up to an object (§4.3:
        players "manipulate the avatar in a game scenario").

        The approach trigger re-arms when the player re-enters the scene;
        ``once_per_visit_only=False`` additionally limits it to the first
        visit ever (a one-time discovery beat).
        """
        from ..events import Trigger as _T

        self._object_editor.bind(
            scene_id,
            _T.APPROACH,
            object_id=object_id,
            once=not once_per_visit_only,
            actions=[ShowText(text=text)],
            skill="novice",
        )
        return self

    def fetch_quest(
        self,
        item: str,
        target: str,
        success_text: str,
        bonus: int = 10,
        reward_name: Optional[str] = None,
        win: bool = False,
        wrong_items: Sequence[str] = (),
        wrong_item_text: str = "That does not work here.",
        mark_fixed: Optional[Tuple[str, object]] = ("state", "fixed"),
    ) -> "GameWizard":
        """The paper's worked example: fetch ``item``, use it on
        ``target``, get rewarded (optionally winning the game)."""
        target_scene, _ = self.project.find_object(target)
        reward_id: Optional[str] = None
        if reward_name is not None:
            self._reward_counter += 1
            reward_id = f"reward-{self._reward_counter}"
            self._object_editor.place_reward(
                target_scene, reward_id, reward_name,
                RectHotspot(2, 2, 8, 8), bonus=0,
            )
        self._object_editor.fetch_puzzle(
            target_scenario=target_scene,
            target_object=target,
            item_id=item,
            success_text=success_text,
            bonus=bonus,
            reward_id=reward_id,
            set_prop=mark_fixed,
            end_outcome="won" if win else None,
            wrong_items=wrong_items,
            wrong_item_text=wrong_item_text,
        )
        return self

    # ------------------------------------------------------------------
    # Finish
    # ------------------------------------------------------------------
    def check(self, prove_winnable: bool = True) -> ValidationReport:
        """Validate without building."""
        return validate(self.project, check_winnable=prove_winnable)

    def build(self, require_valid: bool = True) -> CompiledGame:
        """Validate and compile the game.

        With ``require_valid`` (default) any validation *error* raises
        :class:`WizardError` listing every finding — the wizard refuses
        to hand a broken game to students.
        """
        report = self.check()
        if require_valid and not report.ok:
            details = "\n".join(f"  - {i}" for i in report.errors)
            raise WizardError(f"the game has problems:\n{details}")
        return self.project.compile()
