"""Authoring-time validation: catch broken games before students do.

The paper's pitch is that non-programmers author games; the safety net
that makes that viable is a validator that explains, in editor terms,
everything wrong with a project:

* **errors** — the game cannot run or cannot be finished: unresolvable
  ids (scenarios, objects, items, dialogues, segments), no scenarios,
  an unwinnable game (proved by the solver);
* **warnings** — the game runs but something is probably unintended:
  unreachable scenarios, dead-end scenarios with no ending, items that
  can never be obtained, rewards never granted, objects with no events
  and no description (mute props), conditions referencing unknown ids.

Every issue carries a machine-readable code, the location, and a
human message.  ``validate(project)`` is pure — it never mutates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..events import (
    AwardBonus,
    EndGame,
    EventTable,
    GiveItem,
    PopupImage,
    SetObjectVisible,
    SetProperty,
    StartDialogue,
    SwitchScenario,
    TakeItem,
    Trigger,
)
from ..events.conditions import Pred, parse_condition
from .project import GameProject
from .solver import solve

__all__ = ["Issue", "Severity", "ValidationReport", "validate"]


class Severity:
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Issue:
    """One validation finding."""

    severity: str
    code: str
    where: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.severity}] {self.code} @ {self.where}: {self.message}"


@dataclass(slots=True)
class ValidationReport:
    """All findings plus the winnability verdict."""

    issues: List[Issue]
    winnable: Optional[bool] = None  #: None when the solver was skipped/bounded
    solution_length: Optional[int] = None

    @property
    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the project has no errors (warnings allowed)."""
        return not self.errors


def _collect_object_ids(project: GameProject) -> Dict[str, str]:
    """object id → scenario id, across the whole project."""
    out: Dict[str, str] = {}
    for sid, sc in project.scenarios.items():
        for obj in sc.objects:
            out[obj.object_id] = sid
    return out


def _obtainable_items(project: GameProject) -> Set[str]:
    """Items a player could ever hold: portable objects + GiveItem targets
    (from event bindings and dialogue choices)."""
    items: Set[str] = set()
    for sc in project.scenarios.values():
        for obj in sc.objects:
            if obj.portable:
                items.add(obj.object_id)
    for binding in project.events:
        for a in binding.actions:
            if isinstance(a, GiveItem):
                items.add(a.item_id)
    for dlg in project.dialogues.values():
        for node in dlg.nodes.values():
            for choice in node.choices:
                for a in choice.actions:
                    if isinstance(a, GiveItem):
                        items.add(a.item_id)
    return items


def validate(
    project: GameProject,
    check_winnable: bool = True,
    solver_max_states: int = 20000,
) -> ValidationReport:
    """Run all checks; see module docstring for the catalogue."""
    issues: List[Issue] = []

    if not project.scenarios:
        issues.append(
            Issue(Severity.ERROR, "no-scenarios", "project", "project has no scenarios")
        )
        return ValidationReport(issues=issues)
    if project.start_scenario is None:
        issues.append(
            Issue(Severity.ERROR, "no-start", "project", "start scenario unset")
        )
        return ValidationReport(issues=issues)

    object_home: Dict[str, str] = {}
    for sid, sc in project.scenarios.items():
        for obj in sc.objects:
            if obj.object_id in object_home:
                issues.append(
                    Issue(
                        Severity.ERROR,
                        "duplicate-object-id",
                        f"object:{obj.object_id}",
                        f"object id used in both {object_home[obj.object_id]!r} "
                        f"and {sid!r}; ids must be globally unique",
                    )
                )
            else:
                object_home[obj.object_id] = sid
    obtainable = _obtainable_items(project)

    # --- scenario-level checks -------------------------------------------
    for sid, sc in project.scenarios.items():
        if sc.segment_ref >= len(project.segments):
            issues.append(
                Issue(
                    Severity.ERROR,
                    "bad-segment-ref",
                    f"scenario:{sid}",
                    f"references segment {sc.segment_ref}, only "
                    f"{len(project.segments)} committed",
                )
            )
        if sc.on_finish is not None and sc.on_finish not in project.scenarios:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "bad-on-finish",
                    f"scenario:{sid}",
                    f"on_finish targets unknown scenario {sc.on_finish!r}",
                )
            )
        for obj in sc.objects:
            if obj.kind == "npc":
                dlg = getattr(obj, "dialogue_id", None)
                if dlg not in project.dialogues:
                    issues.append(
                        Issue(
                            Severity.ERROR,
                            "missing-dialogue",
                            f"object:{obj.object_id}",
                            f"NPC references unknown dialogue {dlg!r}",
                        )
                    )

    # --- event-table checks ----------------------------------------------
    scenario_events: Set[str] = set()
    granted_rewards: Set[str] = set()
    for binding in project.events:
        where = f"binding:{binding.binding_id}"
        if binding.scenario_id != "*" and binding.scenario_id not in project.scenarios:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "bad-binding-scenario",
                    where,
                    f"binding scoped to unknown scenario {binding.scenario_id!r}",
                )
            )
            continue
        if binding.object_id is not None:
            home = object_home.get(binding.object_id)
            if home is None:
                issues.append(
                    Issue(
                        Severity.ERROR,
                        "bad-binding-object",
                        where,
                        f"binding references unknown object {binding.object_id!r}",
                    )
                )
            elif binding.scenario_id != "*" and home != binding.scenario_id:
                issues.append(
                    Issue(
                        Severity.ERROR,
                        "object-wrong-scenario",
                        where,
                        f"object {binding.object_id!r} lives in {home!r}, "
                        f"binding is scoped to {binding.scenario_id!r}",
                    )
                )
            scenario_events.add(binding.object_id)
        if binding.trigger == Trigger.USE_ITEM and binding.item_id not in obtainable:
            issues.append(
                Issue(
                    Severity.WARNING,
                    "unobtainable-item",
                    where,
                    f"use_item binding needs {binding.item_id!r} which no "
                    "object or action can provide",
                )
            )
        # Condition predicates referencing unknown ids.
        _check_condition_refs(binding.condition, where, project, object_home, obtainable, issues)
        # Action targets.
        for a in binding.actions:
            if isinstance(a, SwitchScenario) and a.target not in project.scenarios:
                issues.append(
                    Issue(
                        Severity.ERROR,
                        "bad-switch-target",
                        where,
                        f"switch_scenario targets unknown scenario {a.target!r}",
                    )
                )
            elif isinstance(a, (PopupImage, SetObjectVisible, SetProperty)):
                oid = a.object_id
                if oid not in object_home:
                    issues.append(
                        Issue(
                            Severity.ERROR,
                            "bad-action-object",
                            where,
                            f"{a.kind} references unknown object {oid!r}",
                        )
                    )
            elif isinstance(a, StartDialogue) and a.dialogue_id not in project.dialogues:
                issues.append(
                    Issue(
                        Severity.ERROR,
                        "bad-action-dialogue",
                        where,
                        f"start_dialogue references unknown dialogue {a.dialogue_id!r}",
                    )
                )
            elif isinstance(a, TakeItem) and a.item_id not in obtainable:
                issues.append(
                    Issue(
                        Severity.WARNING,
                        "take-unobtainable",
                        where,
                        f"take_item removes {a.item_id!r} which can never be held",
                    )
                )
            if isinstance(a, AwardBonus) and a.reward_id is not None:
                granted_rewards.add(a.reward_id)
                if a.reward_id not in object_home:
                    issues.append(
                        Issue(
                            Severity.WARNING,
                            "unknown-reward",
                            where,
                            f"award_bonus grants {a.reward_id!r} which is not a "
                            "defined object (it will appear with a bare id)",
                        )
                    )

    # --- graph checks ------------------------------------------------------
    # Unknown switch targets / binding scenarios were already reported
    # above; the graph cannot be built until they are fixed.
    try:
        graph = project.graph()
    except Exception:
        return ValidationReport(issues=issues)
    for sid in sorted(graph.unreachable()):
        issues.append(
            Issue(
                Severity.WARNING,
                "unreachable-scenario",
                f"scenario:{sid}",
                "players can never reach this scenario",
            )
        )
    endgame_scenarios = _scenarios_with_endgame(project.events, project)
    for sid in sorted(graph.dead_ends()):
        if sid not in endgame_scenarios:
            issues.append(
                Issue(
                    Severity.WARNING,
                    "dead-end",
                    f"scenario:{sid}",
                    "no way out and no ending can fire here",
                )
            )

    # --- mute props ---------------------------------------------------------
    for sid, sc in project.scenarios.items():
        for obj in sc.objects:
            if (
                obj.object_id not in scenario_events
                and not obj.description
                and obj.kind in ("image", "item")
            ):
                issues.append(
                    Issue(
                        Severity.WARNING,
                        "mute-object",
                        f"object:{obj.object_id}",
                        "object has no events and no examine text; players "
                        "get no feedback from it",
                    )
                )

    # --- rewards never granted ----------------------------------------------
    for sid, sc in project.scenarios.items():
        for obj in sc.objects:
            if obj.kind == "reward" and obj.object_id not in granted_rewards:
                issues.append(
                    Issue(
                        Severity.WARNING,
                        "ungranted-reward",
                        f"object:{obj.object_id}",
                        "reward object is never granted by any award_bonus",
                    )
                )

    # --- winnability ----------------------------------------------------------
    report = ValidationReport(issues=issues)
    structural_errors = [i for i in issues if i.severity == Severity.ERROR]
    if check_winnable and not structural_errors:
        try:
            compiled = project.compile()
        except Exception as exc:
            issues.append(
                Issue(Severity.ERROR, "compile-failed", "project", str(exc))
            )
            return report
        result = solve(compiled, max_states=solver_max_states)
        report.winnable = result.winnable
        if result.winnable:
            report.solution_length = len(result.winning_script)
        elif result.winnable is False:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "unwinnable",
                    "project",
                    f"no sequence of interactions ends in a win "
                    f"(explored {result.states_explored} states; outcomes "
                    f"seen: {sorted(result.outcomes_seen) or 'none'})",
                )
            )
    return report


def _check_condition_refs(
    condition: str,
    where: str,
    project: GameProject,
    object_home: Dict[str, str],
    obtainable: Set[str],
    issues: List[Issue],
) -> None:
    """Warn about condition predicates naming unknown ids."""
    if not condition.strip():
        return
    ast = parse_condition(condition)

    def walk(node) -> None:
        if isinstance(node, Pred):
            if node.name in ("has", "count") and node.args[0] not in obtainable:
                issues.append(
                    Issue(
                        Severity.WARNING,
                        "condition-unknown-item",
                        where,
                        f"condition tests item {node.args[0]!r} which can "
                        "never be held",
                    )
                )
            elif node.name == "visited" and node.args[0] not in project.scenarios:
                issues.append(
                    Issue(
                        Severity.WARNING,
                        "condition-unknown-scenario",
                        where,
                        f"condition tests unknown scenario {node.args[0]!r}",
                    )
                )
            elif node.name == "prop" and node.args[0] not in object_home:
                issues.append(
                    Issue(
                        Severity.WARNING,
                        "condition-unknown-object",
                        where,
                        f"condition reads property of unknown object "
                        f"{node.args[0]!r}",
                    )
                )
        for attr in ("left", "right", "operand"):
            child = getattr(node, attr, None)
            if child is not None:
                walk(child)

    walk(ast)


def _scenarios_with_endgame(events: EventTable, project: GameProject) -> Set[str]:
    """Scenarios in which some binding (or reachable dialogue) can end
    the game."""
    out: Set[str] = set()
    for binding in events:
        if any(isinstance(a, EndGame) for a in binding.actions):
            if binding.scenario_id == "*":
                out.update(project.scenarios)
            else:
                out.add(binding.scenario_id)
    # Dialogue choices can also end the game; NPCs tie them to scenarios.
    dialogue_ends: Set[str] = set()
    for dlg in project.dialogues.values():
        for node in dlg.nodes.values():
            for choice in node.choices:
                if any(isinstance(a, EndGame) for a in choice.actions):
                    dialogue_ends.add(dlg.dialogue_id)
    if dialogue_ends:
        for sid, sc in project.scenarios.items():
            for obj in sc.objects:
                if getattr(obj, "dialogue_id", None) in dialogue_ends:
                    out.add(sid)
    return out
