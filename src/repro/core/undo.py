"""Undo/redo for the authoring tool.

A friendly interface for non-programmers (§1) must forgive mistakes —
every editor operation should be one Ctrl-Z away from never having
happened.  The classic command pattern: a :class:`Command` couples an
action with its exact inverse; the :class:`UndoStack` executes commands,
records them, and replays inverses/actions on undo/redo.

The editors' high-level operations are already small and invertible
(place/remove object, set/unset property, add/remove binding, rename),
so :class:`CommandRecorder` wraps an editor pair and exposes undoable
variants of the common operations without the editors themselves knowing
about history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..events import EventBinding
from ..objects import InteractiveObject
from .object_editor import ObjectEditor
from .project import GameProject

__all__ = ["Command", "CommandRecorder", "UndoError", "UndoStack"]


class UndoError(RuntimeError):
    """Raised on invalid undo/redo operations."""


@dataclass(frozen=True, slots=True)
class Command:
    """An executed, invertible operation."""

    label: str
    do: Callable[[], None]
    undo: Callable[[], None]


class UndoStack:
    """Linear undo/redo history with a size bound.

    Executing a new command truncates the redo branch (standard linear
    history).  ``limit`` bounds memory on long sessions; the oldest
    commands fall off and become permanent.
    """

    def __init__(self, limit: int = 200) -> None:
        if limit < 1:
            raise UndoError("history limit must be >= 1")
        self.limit = limit
        self._done: List[Command] = []
        self._undone: List[Command] = []

    def execute(self, command: Command) -> None:
        """Run a command and record it."""
        command.do()
        self._done.append(command)
        if len(self._done) > self.limit:
            self._done.pop(0)
        self._undone.clear()

    def push_executed(self, command: Command) -> None:
        """Record a command whose ``do`` already ran (editor call-sites
        that perform the action first and build the inverse after)."""
        self._done.append(command)
        if len(self._done) > self.limit:
            self._done.pop(0)
        self._undone.clear()

    @property
    def can_undo(self) -> bool:
        return bool(self._done)

    @property
    def can_redo(self) -> bool:
        return bool(self._undone)

    @property
    def undo_label(self) -> Optional[str]:
        return self._done[-1].label if self._done else None

    @property
    def redo_label(self) -> Optional[str]:
        return self._undone[-1].label if self._undone else None

    def undo(self) -> str:
        """Revert the most recent command; returns its label."""
        if not self._done:
            raise UndoError("nothing to undo")
        command = self._done.pop()
        command.undo()
        self._undone.append(command)
        return command.label

    def redo(self) -> str:
        """Re-apply the most recently undone command."""
        if not self._undone:
            raise UndoError("nothing to redo")
        command = self._undone.pop()
        command.do()
        self._done.append(command)
        return command.label

    def clear(self) -> None:
        self._done.clear()
        self._undone.clear()

    def __len__(self) -> int:
        return len(self._done)


class CommandRecorder:
    """Undoable wrappers over the object editor's mutating operations.

    Only operations with clean inverses are wrapped; operations that
    create irreversible artifacts (committing segments into container
    order) are deliberately not undoable, matching how NLE tools scope
    their history to the edit layer.
    """

    def __init__(self, project: GameProject, editor: ObjectEditor,
                 stack: Optional[UndoStack] = None) -> None:
        self.project = project
        self.editor = editor
        self.stack = stack or UndoStack()

    # -- objects ---------------------------------------------------------
    def place(self, place_fn: Callable[..., InteractiveObject], scenario_id: str,
              *args: Any, **kwargs: Any) -> InteractiveObject:
        """Place via any ``editor.place_*`` function, undoably."""
        obj = place_fn(scenario_id, *args, **kwargs)

        def redo() -> None:
            self.project.get_scenario(scenario_id).add_object(obj)

        def undo() -> None:
            self.project.get_scenario(scenario_id).remove_object(obj.object_id)

        self.stack.push_executed(
            Command(label=f"place {obj.object_id}", do=redo, undo=undo)
        )
        return obj

    def remove_object(self, object_id: str) -> None:
        """Remove an object from wherever it lives, undoably."""
        scenario_id, obj = self.project.find_object(object_id)

        def do() -> None:
            self.project.get_scenario(scenario_id).remove_object(object_id)

        def undo() -> None:
            self.project.get_scenario(scenario_id).add_object(obj)

        self.stack.execute(Command(label=f"remove {object_id}", do=do, undo=undo))

    def move_object(self, object_id: str, x: float, y: float) -> None:
        """Reposition an object's hotspot, undoably."""
        _, obj = self.project.find_object(object_id)
        old = obj.hotspot

        def do() -> None:
            obj.move_to(x, y)

        def undo() -> None:
            obj.hotspot = old

        self.stack.execute(Command(label=f"move {object_id}", do=do, undo=undo))

    def set_description(self, object_id: str, text: str) -> None:
        _, obj = self.project.find_object(object_id)
        old = obj.description

        def do() -> None:
            obj.description = text

        def undo() -> None:
            obj.description = old

        self.stack.execute(
            Command(label=f"describe {object_id}", do=do, undo=undo)
        )

    # -- bindings ---------------------------------------------------------
    def bind(self, *args: Any, **kwargs: Any) -> str:
        """``editor.bind`` with undo support; returns the binding id."""
        binding_id = self.editor.bind(*args, **kwargs)
        binding = self.project.events.get(binding_id)

        def redo() -> None:
            self.project.events.add(binding)

        def undo() -> None:
            self.project.events.remove(binding_id)

        self.stack.push_executed(
            Command(label=f"bind {binding_id}", do=redo, undo=undo)
        )
        return binding_id

    def unbind(self, binding_id: str) -> None:
        """Remove an event binding, undoably."""
        binding: EventBinding = self.project.events.get(binding_id)

        def do() -> None:
            self.project.events.remove(binding_id)

        def undo() -> None:
            self.project.events.add(binding)

        self.stack.execute(Command(label=f"unbind {binding_id}", do=do, undo=undo))
