"""Winnability solver: proves an authored game can be completed.

The validator's structural checks (reachable scenarios, resolvable ids)
cannot answer the question a course designer actually cares about: *can a
student still win after my last edit?*  The solver answers it by
breadth-first search over the **game-state space**, using the real
runtime engine as the transition function — whatever quirks the engine
has, the proof inherits them.

Nodes are canonicalised game states (scenario, flags, inventory, fired
once-bindings, visibility and property overrides, score, outcome); moves
are the interactions a player could perform:

* click / examine / talk on any effectively-visible object,
* take any effectively-visible portable object,
* use any held item on any object that has a ``use_item`` binding,
* walk any complete dialogue path of an NPC conversation.

BFS yields the *shortest* winning interaction script, which doubles as
the authoring tool's auto-generated walkthrough.  The search is bounded
(``max_states``); hitting the bound returns ``winnable=None`` (unknown)
rather than a false negative.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..events import Trigger
from ..runtime import Dialogue, DialogueSession, GameEngine, GameState

__all__ = ["Move", "SolveResult", "enumerate_dialogue_paths", "solve"]


@dataclass(frozen=True, slots=True)
class Move:
    """One abstract player interaction."""

    kind: str  #: click | examine | talk | take | use | dialogue | approach
    object_id: Optional[str] = None
    item_id: Optional[str] = None
    dialogue_path: Tuple[int, ...] = ()

    def describe(self) -> str:
        if self.kind == "use":
            return f"use {self.item_id} on {self.object_id}"
        if self.kind == "dialogue":
            return f"talk to {self.object_id} (choices {list(self.dialogue_path)})"
        return f"{self.kind} {self.object_id}"


@dataclass(slots=True)
class SolveResult:
    """Outcome of a solver run."""

    winnable: Optional[bool]  #: True / False / None (search bound hit)
    winning_script: List[Move] = field(default_factory=list)
    states_explored: int = 0
    outcomes_seen: Set[str] = field(default_factory=set)
    hit_bound: bool = False


def enumerate_dialogue_paths(
    dialogue: Dialogue, max_paths: int = 32, max_depth: int = 64
) -> List[Tuple[int, ...]]:
    """All root→end choice-index sequences, bounded.

    Dialogue validation guarantees an exit exists from every node, but
    cycles are legal ("ask again"); ``max_depth`` cuts them.
    """
    paths: List[Tuple[int, ...]] = []
    stack: List[Tuple[Optional[str], Tuple[int, ...]]] = [(dialogue.root, ())]
    while stack and len(paths) < max_paths:
        node_id, prefix = stack.pop()
        if node_id is None or len(prefix) >= max_depth:
            paths.append(prefix)
            continue
        node = dialogue.nodes[node_id]
        if node.terminal:
            paths.append(prefix)
            continue
        for i, choice in enumerate(node.choices):
            stack.append((choice.next_node, prefix + (i,)))
    return paths


def _canonical(state: GameState) -> str:
    """Stable hashable key for a game state (popups excluded: they are
    presentation, not logic; dwell clocks excluded: timers are handled
    as explicit moves by the caller if desired)."""
    d = state.to_dict()
    d.pop("popups", None)
    d.pop("play_time", None)
    d.pop("scenario_time", None)
    d.pop("fired_timers", None)
    d.pop("avatar_xy", None)
    d.pop("web_visits", None)
    d.pop("base_props", None)  # authored constants, identical in every state
    d["inventory"].pop("selected", None)
    return json.dumps(d, sort_keys=True)


def _legal_moves(engine: GameEngine) -> List[Move]:
    """Enumerate candidate interactions in the engine's current state."""
    state = engine.state
    scenario = engine.current_scenario
    moves: List[Move] = []
    visible = [
        o
        for o in scenario.objects
        if state.object_visible(o.object_id, o.visible)
    ]
    visible_ids = {o.object_id for o in visible}

    for obj in visible:
        if obj.portable and not state.inventory.has(obj.object_id):
            moves.append(Move(kind="take", object_id=obj.object_id))
        # Examining is always available in the real UI (description
        # feedback); it rarely changes state, so the BFS dedupe absorbs
        # it, but student policies need it for investigation behaviour.
        moves.append(Move(kind="examine", object_id=obj.object_id))
        if obj.kind == "npc":
            dlg_id = getattr(obj, "dialogue_id", None)
            dlg = engine.dialogues.get(dlg_id) if dlg_id else None
            if dlg is not None:
                for path in enumerate_dialogue_paths(dlg):
                    moves.append(
                        Move(kind="dialogue", object_id=obj.object_id, dialogue_path=path)
                    )

    # Trigger-bearing interactions, from the event table.
    for binding in engine.events.for_scenario(state.current_scenario):
        oid = binding.object_id
        if binding.trigger in (Trigger.CLICK, Trigger.EXAMINE, Trigger.TALK):
            if oid in visible_ids:
                kind = {
                    Trigger.CLICK: "click",
                    Trigger.EXAMINE: "examine",
                    Trigger.TALK: "talk",
                }[binding.trigger]
                moves.append(Move(kind=kind, object_id=oid))
        elif binding.trigger == Trigger.USE_ITEM:
            if oid in visible_ids and binding.item_id and state.inventory.has(binding.item_id):
                moves.append(Move(kind="use", object_id=oid, item_id=binding.item_id))
        elif binding.trigger == Trigger.APPROACH:
            if oid in visible_ids and oid not in state.approached:
                moves.append(Move(kind="approach", object_id=oid))

    # Deduplicate preserving order.
    seen: Set[Tuple] = set()
    unique: List[Move] = []
    for m in moves:
        key = (m.kind, m.object_id, m.item_id, m.dialogue_path)
        if key not in seen:
            seen.add(key)
            unique.append(m)
    return unique


def _apply(engine: GameEngine, move: Move) -> None:
    """Execute a move against the engine's current state."""
    state = engine.state
    if move.kind == "take":
        obj = engine.current_scenario.get_object(move.object_id)
        state.inventory.add(obj.object_id, name=obj.name)
        state.visibility[obj.object_id] = False
        engine.fire(Trigger.TAKE, move.object_id, None)
    elif move.kind == "click":
        engine.fire(Trigger.CLICK, move.object_id, None)
    elif move.kind == "examine":
        engine.fire(Trigger.EXAMINE, move.object_id, None)
    elif move.kind == "talk":
        engine.fire(Trigger.TALK, move.object_id, None)
    elif move.kind == "use":
        engine.fire(Trigger.USE_ITEM, move.object_id, move.item_id)
    elif move.kind == "approach":
        state.approached.add(move.object_id)
        engine.fire(Trigger.APPROACH, move.object_id, None)
    elif move.kind == "dialogue":
        engine.fire(Trigger.TALK, move.object_id, None)
        obj = engine.current_scenario.get_object(move.object_id)
        dlg = engine.dialogues[getattr(obj, "dialogue_id")]
        session = DialogueSession(dlg)
        for idx in move.dialogue_path:
            if not session.active or engine.state.finished:
                break
            actions = session.choose(idx)
            engine.execute_actions(actions, source=f"dialogue:{dlg.dialogue_id}")
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown move kind {move.kind!r}")
    # Popups are presentation; clear so states canonicalise.
    state.popups.clear()
    state.inventory.deselect()


def solve(
    compiled,
    max_states: int = 20000,
    win_outcomes: Sequence[str] = ("won",),
) -> SolveResult:
    """BFS the game's state space for a winning script.

    Parameters
    ----------
    compiled:
        A :class:`~repro.core.project.CompiledGame` (video is skipped).
    max_states:
        Node budget; exceeded → ``winnable=None`` (unknown).
    win_outcomes:
        Outcome labels counted as winning.
    """
    engine = compiled.new_engine(with_video=False)
    engine.start()
    engine.state.popups.clear()

    start_key = _canonical(engine.state)
    start_snapshot = engine.state.to_dict()

    seen: Set[str] = {start_key}
    queue: deque = deque([(start_snapshot, [])])
    result = SolveResult(winnable=False)

    while queue:
        if result.states_explored >= max_states:
            result.hit_bound = True
            result.winnable = None
            return result
        snapshot, script = queue.popleft()
        result.states_explored += 1

        engine.state = GameState.from_dict(snapshot)
        if engine.state.outcome is not None:
            result.outcomes_seen.add(engine.state.outcome)
            if engine.state.outcome in win_outcomes:
                result.winnable = True
                result.winning_script = script
                return result
            continue

        for move in _legal_moves(engine):
            engine.state = GameState.from_dict(snapshot)
            try:
                _apply(engine, move)
            except Exception:
                continue  # a move the real UI would not permit
            key = _canonical(engine.state)
            if key in seen:
                continue
            seen.add(key)
            queue.append((engine.state.to_dict(), script + [move]))

    return result
