"""The Scenario Editor (§4.1).

"The users just need to select video files from network or video cameras
such that video can be divided into scenario components by the authoring
tool."

The editor wraps a :class:`~repro.core.project.GameProject` with the
point-and-click operations of Fig. 1's left-hand pane:

1. **import** footage,
2. **auto-segment** it (shot detection proposes a cut list on a
   :class:`~repro.video.segment.Timeline` the author can adjust),
3. **commit** the timeline's segments to the container order, and
4. **promote** segments to scenarios (title, looping, auto-advance).

Every operation is charged to the ledger at *novice* or *editor* level —
the whole point of the tool is that none of this needs a programmer.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..graph import Scenario
from ..video import (
    DetectorConfig,
    Frame,
    Timeline,
    VideoSegment,
    detect_shots,
    segments_from_boundaries,
)
from ..video.parallel import parallel_difference_signal
from ..video.shots import ShotDetector
from .effort import AuthoringLedger
from .project import GameProject, ProjectError

__all__ = ["ScenarioEditor"]


class ScenarioEditor:
    """Point-and-click scenario authoring over a project."""

    def __init__(self, project: GameProject, ledger: Optional[AuthoringLedger] = None) -> None:
        self.project = project
        self.ledger = ledger if ledger is not None else AuthoringLedger()
        #: per-footage proposed timelines awaiting author adjustment
        self.proposals: Dict[str, Timeline] = {}

    # ------------------------------------------------------------------
    # Step 1: import
    # ------------------------------------------------------------------
    def import_footage(self, name: str, frames: Sequence[Frame], fps: Optional[float] = None) -> None:
        """File-picker import of a clip."""
        self.project.import_footage(name, frames, fps)
        self.ledger.record("import_footage", "novice", detail=name)

    # ------------------------------------------------------------------
    # Step 2: auto-segmentation
    # ------------------------------------------------------------------
    def auto_segment(
        self,
        footage_name: str,
        config: Optional[DetectorConfig] = None,
        parallel_workers: int = 0,
    ) -> Timeline:
        """Run shot detection and propose a segment timeline.

        ``parallel_workers > 1`` computes the difference signal on a
        process pool (useful for long clips; identical results).
        """
        frames = self.project.get_footage_frames(footage_name)
        cfg = config or DetectorConfig()
        if parallel_workers > 1:
            signal, _stats = parallel_difference_signal(
                frames, config=cfg, max_workers=parallel_workers
            )
            boundaries = [
                b.frame_index for b in ShotDetector(cfg).detect_from_signal(signal)
            ]
        else:
            boundaries = detect_shots(frames, cfg)
        timeline = Timeline(
            segments_from_boundaries(
                frames, boundaries, name_prefix=footage_name, source=footage_name
            )
        )
        self.proposals[footage_name] = timeline
        self.ledger.record("auto_segment", "novice", detail=footage_name)
        return timeline

    # ------------------------------------------------------------------
    # Author adjustments on the proposal
    # ------------------------------------------------------------------
    def rename_segment(self, footage_name: str, old: str, new: str) -> None:
        self._proposal(footage_name).rename(old, new)
        self.ledger.record("rename_segment", "novice", detail=f"{old}->{new}")

    def merge_segments(self, footage_name: str, first: str, second: str, name: Optional[str] = None) -> str:
        merged = self._proposal(footage_name).merge(first, second, name=name)
        self.ledger.record("merge_segments", "editor", detail=merged)
        return merged

    def split_segment(self, footage_name: str, name: str, at: int):
        names = self._proposal(footage_name).split(name, at)
        self.ledger.record("split_segment", "editor", detail=f"{name}@{at}")
        return names

    def drop_segment(self, footage_name: str, name: str) -> None:
        """Discard a proposed segment (e.g. a slate or a blooper)."""
        self._proposal(footage_name).remove(name)
        self.ledger.record("drop_segment", "novice", detail=name)

    def _proposal(self, footage_name: str) -> Timeline:
        try:
            return self.proposals[footage_name]
        except KeyError:
            raise ProjectError(
                f"no segmentation proposal for {footage_name!r}; run auto_segment first"
            ) from None

    # ------------------------------------------------------------------
    # Step 3: commit
    # ------------------------------------------------------------------
    def commit(self, footage_name: str) -> Dict[str, int]:
        """Commit the adjusted timeline; returns name → container ref."""
        timeline = self._proposal(footage_name)
        refs: Dict[str, int] = {}
        for seg in timeline:
            refs[seg.name] = self.project.commit_segment(seg)
        del self.proposals[footage_name]
        self.ledger.record("commit_segments", "novice", detail=footage_name)
        return refs

    def commit_whole(self, footage_name: str, segment_name: Optional[str] = None) -> int:
        """Commit an entire clip as a single segment (one-scene footage).

        The common case for designers who film each scene separately —
        no segmentation pass needed, one click.
        """
        frames = self.project.get_footage_frames(footage_name)
        seg = VideoSegment(
            name=segment_name or footage_name,
            frames=list(frames),
            source=footage_name,
            source_span=(0, len(frames)),
        )
        ref = self.project.commit_segment(seg)
        self.ledger.record("commit_whole", "novice", detail=seg.name)
        return ref

    def commit_manual_segment(self, segment: VideoSegment) -> int:
        """Commit a hand-cut segment directly (advanced path)."""
        ref = self.project.commit_segment(segment)
        self.ledger.record("commit_manual_segment", "editor", detail=segment.name)
        return ref

    # ------------------------------------------------------------------
    # Step 4: promote to scenarios
    # ------------------------------------------------------------------
    def create_scenario(
        self,
        scenario_id: str,
        title: str,
        segment_name: str,
        loop: bool = True,
        on_finish: Optional[str] = None,
    ) -> Scenario:
        """Promote a committed segment to an interactive scenario."""
        ref = self.project.segment_ref(segment_name)
        scenario = Scenario(scenario_id, title, ref, loop=loop, on_finish=on_finish)
        self.project.add_scenario(scenario)
        self.ledger.record("create_scenario", "novice", detail=scenario_id)
        return scenario

    def set_start(self, scenario_id: str) -> None:
        self.project.set_start(scenario_id)
        self.ledger.record("set_start", "novice", detail=scenario_id)
