"""Project persistence: save/load authoring documents.

A saved project is a directory with two files:

``project.json``
    Everything structural — metadata, segment names, scenarios with
    their objects, the event table, dialogues, start scenario.
``media.rvid``
    The committed video segments, encoded with the project's codec in
    container order (so ``segment_names[i]`` labels container segment
    ``i``).

Raw *footage* (imported but uncommitted clips) is working material and
is deliberately not saved — matching the authoring tool's behaviour of
freezing only committed scenario components.  Round-trip fidelity for
everything saved is covered by property tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..events import EventTable
from ..graph import Scenario
from ..runtime import Dialogue
from ..video import VideoReader, VideoSegment
from .project import GameProject, ProjectError

__all__ = ["PROJECT_JSON", "MEDIA_FILE", "load_project", "save_project"]

PROJECT_JSON = "project.json"
MEDIA_FILE = "media.rvid"
_FORMAT_VERSION = 1


def project_to_dict(project: GameProject) -> Dict[str, Any]:
    """Structural (JSON-safe) form of a project, excluding pixel data."""
    if project.frame_size is None:
        raise ProjectError("cannot save a project with no media")
    return {
        "format_version": _FORMAT_VERSION,
        "title": project.title,
        "author": project.author,
        "fps": project.fps,
        "codec_name": project.codec_name,
        "codec_params": project.codec_params,
        "frame_size": [project.frame_size.width, project.frame_size.height],
        "start_scenario": project.start_scenario,
        "segment_names": [s.name for s in project.segments],
        "scenarios": [sc.to_dict() for sc in project.scenarios.values()],
        "events": project.events.to_list(),
        "dialogues": [d.to_dict() for d in project.dialogues.values()],
    }


def save_project(project: GameProject, directory: Union[str, Path]) -> Path:
    """Write ``project.json`` + ``media.rvid`` under ``directory``."""
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    compiled = project.compile()  # validates segments exist & encodes media
    (d / MEDIA_FILE).write_bytes(compiled.container)
    (d / PROJECT_JSON).write_text(
        json.dumps(project_to_dict(project), indent=2, sort_keys=True)
    )
    return d


def load_project(directory: Union[str, Path]) -> GameProject:
    """Inverse of :func:`save_project`."""
    d = Path(directory)
    meta_path = d / PROJECT_JSON
    media_path = d / MEDIA_FILE
    if not meta_path.exists():
        raise ProjectError(f"no {PROJECT_JSON} in {d}")
    if not media_path.exists():
        raise ProjectError(f"no {MEDIA_FILE} in {d}")
    meta = json.loads(meta_path.read_text())
    version = meta.get("format_version")
    if version != _FORMAT_VERSION:
        raise ProjectError(f"unsupported project format version {version!r}")

    project = GameProject(
        title=meta["title"],
        author=meta.get("author", ""),
        fps=meta.get("fps", 24.0),
        codec_name=meta.get("codec_name", "delta"),
        codec_params=meta.get("codec_params") or {},
    )

    reader = VideoReader(media_path.read_bytes())
    names = meta.get("segment_names", [])
    if len(names) != reader.segment_count:
        raise ProjectError(
            f"media has {reader.segment_count} segments, project.json names "
            f"{len(names)}"
        )
    for i, name in enumerate(names):
        frames = reader.decode_segment(i)
        project.commit_segment(VideoSegment(name=name, frames=frames))

    for sc_dict in meta.get("scenarios", []):
        project.add_scenario(Scenario.from_dict(sc_dict))
    project.events = EventTable.from_list(meta.get("events", []))
    for dd in meta.get("dialogues", []):
        project.add_dialogue(Dialogue.from_dict(dd))
    start = meta.get("start_scenario")
    if start:
        project.set_start(start)
    return project
