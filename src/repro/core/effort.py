"""Authoring-effort accounting (experiments E7/E8).

The paper's thesis is that the authoring tool lets content providers
"produce educational games without understanding details of computer
graphics, video and even flash technologies" (§1).  To test that claim
quantitatively we attach a ledger to every authoring surface and charge
each operation an *expertise-weighted* cost:

===========  =====  ==============================================
Skill level  Weight  Meaning
===========  =====  ==============================================
novice        1.0   point-and-click operation any teacher can do
editor        2.5   operation needing tool-specific training
programmer   12.0   operation requiring writing/reading code
specialist   30.0   operation needing CG/video/Flash expertise
===========  =====  ==============================================

The weights follow the standard keystroke-level-model intuition that
expert-only steps dominate production cost; their *ratios* (not absolute
values) drive E7's conclusion, and the bench sweeps them to show the
conclusion is weight-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["AuthoringLedger", "EffortReport", "Op", "SKILL_WEIGHTS"]

SKILL_WEIGHTS: Dict[str, float] = {
    "novice": 1.0,
    "editor": 2.5,
    "programmer": 12.0,
    "specialist": 30.0,
}


@dataclass(frozen=True, slots=True)
class Op:
    """One recorded authoring operation."""

    name: str
    skill: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.skill not in SKILL_WEIGHTS:
            raise ValueError(
                f"unknown skill level {self.skill!r}; "
                f"expected one of {sorted(SKILL_WEIGHTS)}"
            )


@dataclass(slots=True)
class EffortReport:
    """Aggregated effort for one authoring workflow."""

    total_ops: int
    weighted_cost: float
    ops_by_skill: Dict[str, int]
    cost_by_skill: Dict[str, float]

    @property
    def max_skill_required(self) -> str:
        """The highest expertise any single operation needed."""
        order = ["novice", "editor", "programmer", "specialist"]
        present = [s for s in order if self.ops_by_skill.get(s, 0) > 0]
        return present[-1] if present else "novice"


class AuthoringLedger:
    """Records authoring operations; one ledger per authoring workflow."""

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self.weights = dict(weights or SKILL_WEIGHTS)
        self.ops: List[Op] = []

    def record(self, name: str, skill: str = "novice", detail: str = "") -> None:
        """Charge one operation."""
        op = Op(name=name, skill=skill, detail=detail)
        if op.skill not in self.weights:
            raise ValueError(f"no weight for skill {op.skill!r}")
        self.ops.append(op)

    def report(self) -> EffortReport:
        ops_by_skill: Dict[str, int] = {}
        cost_by_skill: Dict[str, float] = {}
        for op in self.ops:
            ops_by_skill[op.skill] = ops_by_skill.get(op.skill, 0) + 1
            cost_by_skill[op.skill] = (
                cost_by_skill.get(op.skill, 0.0) + self.weights[op.skill]
            )
        return EffortReport(
            total_ops=len(self.ops),
            weighted_cost=sum(cost_by_skill.values()),
            ops_by_skill=ops_by_skill,
            cost_by_skill=cost_by_skill,
        )

    def __len__(self) -> int:
        return len(self.ops)
