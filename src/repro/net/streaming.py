"""Segment streaming with branch-aware prefetch (experiment E5).

A streamed VGBL session downloads the container index up front, then
fetches segments over the channel as the player moves through the
scenario graph.  The interesting question is what to do with idle link
time while the player explores a scenario: the successors in the graph
are the *possible* next segments, and prefetching them converts
interaction-time stalls into background transfers.

Three policies, in increasing aggressiveness:

``none``
    Fetch a segment only when the player switches to it.  Every branch
    taken stalls for (latency + segment bytes / bandwidth).
``successors``
    After arriving in a scenario, prefetch its graph successors
    (breadth-first, nearest first) while the player dwells.  A taken
    branch that finished prefetching starts instantly.
``all``
    Prefetch the whole container in graph BFS order.  Minimum stalls,
    maximum wasted bytes on paths not taken.

The simulator replays a *path* (a sequence of scenario visits with dwell
times) and reports per-switch startup delay plus traffic, which is what
the E5 table rows are.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..graph import ScenarioGraph
from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs import tracing as _obstrace
from ..video.container import VideoReader
from .channel import Channel

__all__ = ["PREFETCH_POLICIES", "StreamSession", "StreamStats", "SwitchRecord"]

PREFETCH_POLICIES = ("none", "successors", "all")

_M_BYTES = _obs.counter(
    "repro_stream_bytes_fetched_total",
    "Segment bytes requested over the channel, by purpose (demand/prefetch)",
)
_M_FETCHES = _obs.counter(
    "repro_stream_fetches_total",
    "Segment fetch requests issued, by purpose (demand/prefetch)",
)
_M_PREFETCH_OUTCOME = _obs.counter(
    "repro_stream_prefetch_total",
    "Scenario switches by prefetch outcome (hit = segment already resident)",
)
_M_STALLS = _obs.counter(
    "repro_stream_stall_events_total",
    "Switches that stalled playback, by kind (startup/rebuffer)",
)
_M_STARTUP_DELAY = _obs.histogram(
    "repro_stream_startup_delay_seconds",
    "Per-switch startup delay (request to playable)",
)
_M_SWITCHES = _obs.counter(
    "repro_stream_switches_total",
    "Scenario switches replayed through stream sessions",
)

_LOG = _obslog.get_logger("net.stream")


@dataclass(frozen=True, slots=True)
class SwitchRecord:
    """One scenario switch: when requested, when playable, stalls."""

    scenario_id: str
    requested_at: float
    playable_at: float
    rebuffer_seconds: float = 0.0  #: mid-playback stall (progressive mode)

    @property
    def startup_delay(self) -> float:
        return self.playable_at - self.requested_at


@dataclass(slots=True)
class StreamStats:
    """Aggregates of one streamed session."""

    switches: List[SwitchRecord] = field(default_factory=list)
    bytes_fetched: int = 0
    bytes_wasted: int = 0  #: prefetched segments never played

    @property
    def mean_startup_delay(self) -> float:
        if not self.switches:
            return 0.0
        return sum(s.startup_delay for s in self.switches) / len(self.switches)

    @property
    def max_startup_delay(self) -> float:
        return max((s.startup_delay for s in self.switches), default=0.0)

    @property
    def total_rebuffer_seconds(self) -> float:
        """Mid-playback stall time summed over all switches."""
        return sum(s.rebuffer_seconds for s in self.switches)

    @property
    def instant_switch_fraction(self) -> float:
        """Fraction of switches with (near-)zero delay (< 1 ms)."""
        if not self.switches:
            return 0.0
        return sum(1 for s in self.switches if s.startup_delay < 1e-3) / len(
            self.switches
        )


class StreamSession:
    """Simulates streamed playback of a compiled game over a channel.

    Reuse contract
    --------------
    One session may replay several paths (``play_path`` called more than
    once): segments fetched by an earlier path stay resident, so a later
    path starts warm and never re-fetches them.  Per-path statistics are
    still isolated — ``bytes_fetched`` and ``bytes_wasted`` cover only
    traffic *issued during that call*, even when the :class:`Channel` is
    shared with other sessions (the channel's byte counter is
    snapshotted at path start rather than read as an absolute).
    """

    def __init__(
        self,
        reader: VideoReader,
        graph: ScenarioGraph,
        channel: Channel,
        policy: str = "successors",
        prefetch_depth: int = 1,
        progressive: bool = False,
        startup_buffer_s: float = 1.0,
    ) -> None:
        """``progressive`` plays segments while they download: playback
        starts once ``startup_buffer_s`` seconds of content are buffered,
        at the cost of possible mid-playback rebuffering when the channel
        is slower than the content bitrate (the fluid model's
        ``stall = max(0, download_end - play_start - duration)``)."""
        if policy not in PREFETCH_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; known: {PREFETCH_POLICIES}"
            )
        if prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        if startup_buffer_s <= 0:
            raise ValueError("startup_buffer_s must be positive")
        self.reader = reader
        self.graph = graph
        self.channel = channel
        self.policy = policy
        self.prefetch_depth = prefetch_depth
        self.progressive = progressive
        self.startup_buffer_s = startup_buffer_s
        #: segment id → the Transfer covering it (fetched or in flight)
        self._transfers: Dict[int, "object"] = {}
        #: segment id → time the last byte arrived (fetched or in flight)
        self._arrival: Dict[int, float] = {}
        self._played_segments: Set[int] = set()
        #: per-path accounting, reset by every play_path call
        self._path_fetched: Set[int] = set()
        self._path_played: Set[int] = set()

    # ------------------------------------------------------------------
    def _segment_of(self, scenario_id: str) -> int:
        return self.graph.scenarios[scenario_id].segment_ref

    def _segment_bytes(self, segment_id: int) -> int:
        return self.reader.index[segment_id].byte_size

    def _fetch(self, segment_id: int, now: float, purpose: str = "demand") -> float:
        """Ensure a segment is (being) fetched; returns its arrival time."""
        if segment_id in self._arrival:
            return self._arrival[segment_id]
        size = self._segment_bytes(segment_id)
        t = self.channel.request(size, now)
        self._transfers[segment_id] = t
        self._arrival[segment_id] = t.finished_at
        self._path_fetched.add(segment_id)
        _M_FETCHES.inc(purpose=purpose)
        _M_BYTES.inc(size, purpose=purpose)
        if _obs.enabled():
            # Sampled: prefetch storms would otherwise dominate the log.
            _LOG.debug(
                "stream.fetch",
                sample=0.25,
                segment=segment_id,
                bytes=size,
                purpose=purpose,
            )
        return t.finished_at

    def _progressive_schedule(
        self, segment_id: int, now: float
    ) -> Tuple[float, float]:
        """(playable_at, rebuffer_seconds) under progressive playback."""
        finish = self._fetch(segment_id, now)
        transfer = self._transfers[segment_id]
        start = transfer.started_at
        size = self._segment_bytes(segment_id)
        duration = self.reader.segment_duration_seconds(segment_id)
        if finish <= now or finish <= start:
            return now, 0.0  # already resident
        rate = size / (finish - start)  # channel delivery rate for it
        consumption = size / max(duration, 1e-9)
        # Buffer the configured seconds of content, but never more than
        # half the segment — short scenario clips must still start early.
        buffer_s = min(self.startup_buffer_s, duration / 2.0)
        buffer_bytes = min(size, consumption * buffer_s)
        playable_at = max(now, start + buffer_bytes / rate)
        rebuffer = max(0.0, finish - playable_at - duration)
        return playable_at, rebuffer

    def _prefetch_frontier(self, scenario_id: str, now: float) -> None:
        """Queue prefetches according to the policy."""
        if self.policy == "none":
            return
        if self.policy == "all":
            order = self._bfs_order(scenario_id)
            for seg in order:
                self._fetch(seg, now, purpose="prefetch")
            return
        # successors: BFS to prefetch_depth
        depth: Dict[str, int] = {scenario_id: 0}
        q = deque([scenario_id])
        while q:
            sid = q.popleft()
            if depth[sid] >= self.prefetch_depth:
                continue
            for nxt in self.graph.successors(sid):
                if nxt not in depth:
                    depth[nxt] = depth[sid] + 1
                    self._fetch(self._segment_of(nxt), now, purpose="prefetch")
                    q.append(nxt)

    def _bfs_order(self, scenario_id: str) -> List[int]:
        seen: Set[str] = {scenario_id}
        order: List[int] = [self._segment_of(scenario_id)]
        q = deque([scenario_id])
        while q:
            sid = q.popleft()
            for nxt in self.graph.successors(sid):
                if nxt not in seen:
                    seen.add(nxt)
                    order.append(self._segment_of(nxt))
                    q.append(nxt)
        return order

    # ------------------------------------------------------------------
    def play_path(
        self, path: Sequence[Tuple[str, float]], start_time: float = 0.0
    ) -> StreamStats:
        """Replay a visit path: ``[(scenario_id, dwell_seconds), ...]``.

        The first entry is the game start (its fetch is the initial
        loading screen); subsequent entries are player-taken branches.

        Stats cover only this call: the channel byte counter is
        snapshotted at path start (the channel may be shared, or this
        session may have replayed an earlier path), and ``bytes_wasted``
        counts segments fetched during this path but never played by it.
        Segments resident from earlier paths carry over as a warm start.
        """
        if not path:
            raise ValueError("path must not be empty")
        stats = StreamStats()
        now = start_time
        bytes_before = self.channel.bytes_transferred
        self._path_fetched = set()
        self._path_played = set()
        with _obstrace.span(
            "stream.play_path", policy=self.policy, visits=len(path)
        ):
            self._replay(path, stats, now)
        stats.bytes_fetched = self.channel.bytes_transferred - bytes_before
        stats.bytes_wasted = sum(
            self._segment_bytes(seg)
            for seg in self._path_fetched - self._path_played
        )
        return stats

    def _replay(
        self, path: Sequence[Tuple[str, float]], stats: StreamStats, now: float
    ) -> None:
        for scenario_id, dwell in path:
            if dwell < 0:
                raise ValueError("dwell time must be non-negative")
            seg = self._segment_of(scenario_id)
            requested = now
            rebuffer = 0.0
            if _obs.enabled():
                _M_SWITCHES.inc()
                resident = seg in self._arrival and self._arrival[seg] <= now
                _M_PREFETCH_OUTCOME.inc(outcome="hit" if resident else "miss")
            if self.progressive:
                playable, rebuffer = self._progressive_schedule(seg, now)
            else:
                playable = max(now, self._fetch(seg, now))
            if _obs.enabled():
                _M_STARTUP_DELAY.observe(playable - requested)
                delay = playable - requested
                if delay >= 1e-3:
                    _M_STALLS.inc(kind="startup")
                    _LOG.warning(
                        "stream.stall",
                        kind="startup",
                        scenario=scenario_id,
                        segment=seg,
                        delay_s=round(delay, 6),
                        policy=self.policy,
                    )
                if rebuffer > 0.0:
                    _M_STALLS.inc(kind="rebuffer")
                    _LOG.warning(
                        "stream.stall",
                        kind="rebuffer",
                        scenario=scenario_id,
                        segment=seg,
                        delay_s=round(rebuffer, 6),
                        policy=self.policy,
                    )
                _LOG.debug(
                    "stream.switch",
                    scenario=scenario_id,
                    segment=seg,
                    delay_s=round(delay, 6),
                    prefetch="hit" if resident else "miss",
                )
            stats.switches.append(
                SwitchRecord(
                    scenario_id=scenario_id,
                    requested_at=requested,
                    playable_at=playable,
                    rebuffer_seconds=rebuffer,
                )
            )
            self._played_segments.add(seg)
            self._path_played.add(seg)
            now = playable + rebuffer
            # Dwell in the scenario; idle link time is prefetch time.
            self._prefetch_frontier(scenario_id, now)
            now += dwell
