"""Interactive-TV delivery substrate: channel model, segment streaming
with branch prefetch, and control-device models."""

from .cache import CacheStats, EVICTION_POLICIES, SegmentCache, simulate_cached_playback
from .channel import Channel, Transfer
from .devices import (
    Device,
    KeyboardMouse,
    PDA,
    RemoteControl,
    Tablet,
    make_device,
)
from .streaming import PREFETCH_POLICIES, StreamSession, StreamStats, SwitchRecord

__all__ = [
    "CacheStats",
    "Channel",
    "Device",
    "EVICTION_POLICIES",
    "SegmentCache",
    "simulate_cached_playback",
    "KeyboardMouse",
    "PDA",
    "PREFETCH_POLICIES",
    "RemoteControl",
    "StreamSession",
    "StreamStats",
    "SwitchRecord",
    "Tablet",
    "Transfer",
    "make_device",
]
