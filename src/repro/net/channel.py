"""A deterministic bandwidth/latency channel model.

§2 frames the platform in the interactive-TV tradition: video reaches the
player over a network.  The channel is the usual fluid model — a fixed
round-trip latency plus a serialisation rate — made *serially
consistent*: transfers queue on the link, so a prefetch in flight delays
a later urgent fetch (which is exactly the trade-off the E5 prefetch
policies navigate).

Determinism: no randomness; time is the caller's simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Channel", "Transfer"]


@dataclass(frozen=True, slots=True)
class Transfer:
    """One completed/scheduled transfer."""

    nbytes: int
    requested_at: float
    started_at: float   #: when the link began serialising it
    finished_at: float  #: when the last byte arrived


class Channel:
    """FIFO link with latency and bandwidth.

    Parameters
    ----------
    bandwidth_bps:
        Link rate in *bytes* per second.
    latency_s:
        One-way request-to-first-byte latency, charged once per transfer.
    """

    def __init__(self, bandwidth_bps: float, latency_s: float = 0.05) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        #: when the link becomes free (end of the last queued transfer)
        self._link_free_at = 0.0
        self.log: List[Transfer] = []

    def request(self, nbytes: int, now: float) -> Transfer:
        """Queue a transfer at time ``now``; returns its schedule.

        The transfer starts when both the request has propagated
        (``now + latency``) and the link is free; it occupies the link
        for ``nbytes / bandwidth`` seconds.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = max(now + self.latency_s, self._link_free_at)
        finish = start + nbytes / self.bandwidth_bps
        self._link_free_at = finish
        t = Transfer(
            nbytes=nbytes, requested_at=now, started_at=start, finished_at=finish
        )
        self.log.append(t)
        return t

    def busy_until(self) -> float:
        """Time at which all queued transfers complete."""
        return self._link_free_at

    @property
    def bytes_transferred(self) -> int:
        return sum(t.nbytes for t in self.log)

    def reset(self) -> None:
        """Clear the queue and log (new simulation run)."""
        self._link_free_at = 0.0
        self.log.clear()
