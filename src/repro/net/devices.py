"""Control devices: how users deliver interactions (§2).

"Various devices are adopted to provide manipulation to audiences.
Remote control, PDA, tablet, keyboard and mouse are used for delivering
the control made by users."

Each device maps a high-level *intent* ("activate that object", "open
the inventory slot", "move the avatar") to the raw input events the
runtime understands, with a per-device interaction cost model:

* a **pointer** device (mouse, tablet stylus) clicks coordinates
  directly — one event per intent;
* a **remote control** has no pointer: it cycles a focus highlight
  through the scenario's objects with arrow presses and confirms with
  OK — cost grows with the object's focus distance (the classic
  10-foot-UI tax, measured by the E5/devices ablation);
* a **PDA** (touch, small screen) points directly but with a tap-error
  rate: a missed tap produces a no-op click nearby and a retry.

Every device returns the event list plus the simulated seconds the
gesture took, so cohort simulations can charge realistic interaction
costs per device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graph import Scenario
from ..runtime import KeyPress, MouseClick, MouseDrag

__all__ = ["Device", "KeyboardMouse", "PDA", "RemoteControl", "Tablet", "make_device"]


@dataclass(frozen=True, slots=True)
class GesturePlan:
    """The raw events realising one intent, and their duration."""

    events: Tuple[object, ...]
    seconds: float


class Device:
    """Base class: point at an object / drag an object to the window."""

    name: str = "device"

    def activate(
        self, scenario: Scenario, object_id: str, rng: np.random.Generator
    ) -> GesturePlan:
        """Events to click/activate the named object."""
        raise NotImplementedError

    def drag_to_inventory(
        self,
        scenario: Scenario,
        object_id: str,
        inv_y: float,
        rng: np.random.Generator,
    ) -> GesturePlan:
        """Events to drag the named object into the inventory window."""
        raise NotImplementedError

    @staticmethod
    def _center(scenario: Scenario, object_id: str) -> Tuple[float, float]:
        return scenario.get_object(object_id).hotspot.center()


class KeyboardMouse(Device):
    """Desktop mouse: direct, fast, accurate."""

    name = "keyboard_mouse"
    seconds_per_point = 0.9  # Fitts-ish average acquire+click

    def activate(self, scenario, object_id, rng) -> GesturePlan:
        x, y = self._center(scenario, object_id)
        return GesturePlan((MouseClick(x, y),), self.seconds_per_point)

    def drag_to_inventory(self, scenario, object_id, inv_y, rng) -> GesturePlan:
        x, y = self._center(scenario, object_id)
        return GesturePlan(
            (MouseDrag(x, y, x, inv_y + 2),), self.seconds_per_point * 1.6
        )


class Tablet(KeyboardMouse):
    """Stylus tablet: direct pointing, slightly slower drags."""

    name = "tablet"
    seconds_per_point = 1.1


class PDA(Device):
    """Small touch screen: direct but error-prone taps."""

    name = "pda"
    seconds_per_tap = 1.2
    miss_rate = 0.12

    def activate(self, scenario, object_id, rng) -> GesturePlan:
        x, y = self._center(scenario, object_id)
        events: List[object] = []
        seconds = 0.0
        while True:
            seconds += self.seconds_per_tap
            if rng.random() < self.miss_rate:
                # A miss lands just outside the hotspot; harmless no-op.
                events.append(MouseClick(x + 30.0, y + 30.0))
                continue
            events.append(MouseClick(x, y))
            break
        return GesturePlan(tuple(events), seconds)

    def drag_to_inventory(self, scenario, object_id, inv_y, rng) -> GesturePlan:
        x, y = self._center(scenario, object_id)
        plan = self.activate(scenario, object_id, rng)  # acquire first
        return GesturePlan(
            plan.events[:-1] + (MouseDrag(x, y, x, inv_y + 2),),
            plan.seconds + self.seconds_per_tap,
        )


class RemoteControl(Device):
    """TV remote: focus cycling + OK, no pointer.

    Focus order is the scenario's z-sorted object list; the cost of
    activating an object is one OK press plus one arrow press per focus
    step from the top of the list (the worst interactive-TV input mode,
    and why §3.1 games prefer mouse/keyboard).
    """

    name = "remote"
    seconds_per_press = 0.6

    def activate(self, scenario, object_id, rng) -> GesturePlan:
        order = [o.object_id for o in scenario.objects]
        try:
            steps = order.index(object_id)
        except ValueError:
            raise KeyError(f"object {object_id!r} not in scenario") from None
        x, y = self._center(scenario, object_id)
        events: List[object] = [KeyPress("down") for _ in range(steps)]
        # The OK press resolves to a click at the focused object's centre.
        events.append(MouseClick(x, y))
        return GesturePlan(tuple(events), self.seconds_per_press * (steps + 1))

    def drag_to_inventory(self, scenario, object_id, inv_y, rng) -> GesturePlan:
        plan = self.activate(scenario, object_id, rng)
        x, y = self._center(scenario, object_id)
        # "Pick up" on a remote is focus + long-OK: modelled as a drag
        # event after focusing, at double press cost.
        return GesturePlan(
            plan.events[:-1] + (MouseDrag(x, y, x, inv_y + 2),),
            plan.seconds + self.seconds_per_press,
        )


_DEVICES = {
    cls.name: cls for cls in (KeyboardMouse, Tablet, PDA, RemoteControl)
}


def make_device(name: str) -> Device:
    """Instantiate a device by name."""
    try:
        return _DEVICES[name]()
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; known: {sorted(_DEVICES)}"
        ) from None
