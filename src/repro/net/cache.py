"""Client-side segment cache with bounded memory.

``StreamSession`` assumes every fetched segment stays resident — fine
for a classroom game, wrong for a semester-long course on a set-top box
with tens of megabytes of RAM (§2's interactive-TV setting).  The
:class:`SegmentCache` bounds residency in bytes with pluggable eviction:

``lru``
    Evict the least-recently-*played* segment — the default, exploits
    the strong locality of scenario revisits (hub-and-spoke games).
``fifo``
    Evict in arrival order — the ablation baseline.
``graph``
    Evict the segment whose scenario is *farthest* (in transitions) from
    the player's current scenario — uses the branching structure the
    platform uniquely has; never evicts a neighbour the player might
    switch to next.

The cache is a pure bookkeeping model (segments are ids + sizes); the
cached-stream simulator counts *refetches* — every eviction the player
later regrets costs a full segment stall.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..graph import ScenarioGraph
from ..obs import logging as _obslog
from ..obs import metrics as _obs

__all__ = ["CacheStats", "EVICTION_POLICIES", "SegmentCache"]

_LOG = _obslog.get_logger("net.cache")

EVICTION_POLICIES = ("lru", "fifo", "graph")

_M_HITS = _obs.counter(
    "repro_cache_hits_total",
    "Segment-cache playback hits, by eviction policy",
)
_M_MISSES = _obs.counter(
    "repro_cache_misses_total",
    "Segment-cache playback misses, by eviction policy",
)
_M_REFETCHES = _obs.counter(
    "repro_cache_refetches_total",
    "Misses on previously-cached segments (regretted evictions)",
)
_M_EVICTIONS = _obs.counter(
    "repro_cache_evictions_total",
    "Segments evicted, by eviction policy",
)
_M_BYTES_EVICTED = _obs.counter(
    "repro_cache_bytes_evicted_total",
    "Bytes evicted from segment caches, by eviction policy",
)


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    refetches: int = 0  #: misses on segments that were previously cached
    bytes_evicted: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SegmentCache:
    """Byte-bounded segment cache with pluggable eviction."""

    def __init__(
        self,
        capacity_bytes: int,
        policy: str = "lru",
        graph: Optional[ScenarioGraph] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; known: {EVICTION_POLICIES}"
            )
        if policy == "graph" and graph is None:
            raise ValueError("graph policy needs the scenario graph")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.graph = graph
        #: segment id → size; order = recency (most recent last) for lru,
        #: insertion for fifo.
        self._resident: "OrderedDict[int, int]" = OrderedDict()
        #: running byte total of ``_resident`` — the eviction loop used
        #: to re-sum the whole OrderedDict per iteration (O(n) per
        #: evicted segment); kept incrementally instead.
        self._resident_bytes = 0
        self._ever_cached: Set[int] = set()
        #: segment id → scenario id (for the graph policy)
        self._scenario_of: Dict[int, str] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def resident_segments(self) -> List[int]:
        return list(self._resident)

    def contains(self, segment_id: int) -> bool:
        return segment_id in self._resident

    # ------------------------------------------------------------------
    def access(
        self,
        segment_id: int,
        size: int,
        scenario_id: Optional[str] = None,
        current_scenario: Optional[str] = None,
    ) -> bool:
        """Record a playback access; returns True on a cache hit.

        On a miss the segment is admitted, evicting per policy until it
        fits.  ``scenario_id`` labels the segment for the graph policy;
        ``current_scenario`` is the player's position (eviction anchor).
        """
        if size <= 0:
            raise ValueError("segment size must be positive")
        if size > self.capacity_bytes:
            raise ValueError(
                f"segment of {size} bytes cannot fit in a "
                f"{self.capacity_bytes}-byte cache"
            )
        if scenario_id is not None:
            self._scenario_of[segment_id] = scenario_id

        if segment_id in self._resident:
            self.stats.hits += 1
            _M_HITS.inc(policy=self.policy)
            if self.policy == "lru":
                self._resident.move_to_end(segment_id)
            return True

        self.stats.misses += 1
        _M_MISSES.inc(policy=self.policy)
        if segment_id in self._ever_cached:
            self.stats.refetches += 1
            _M_REFETCHES.inc(policy=self.policy)
            if _obs.enabled():
                # A refetch is a regretted eviction: a real player stalls.
                _LOG.warning(
                    "cache.refetch",
                    segment=segment_id,
                    scenario=scenario_id,
                    policy=self.policy,
                )
        self._ever_cached.add(segment_id)
        if self._resident_bytes + size > self.capacity_bytes:
            self._evict_until_fits(size, current_scenario)
        self._resident[segment_id] = size
        self._resident_bytes += size
        return False

    def _evict_until_fits(
        self, incoming: int, current_scenario: Optional[str]
    ) -> None:
        """Evict per policy until ``incoming`` bytes fit.

        The graph policy's distance map is computed once per admission,
        not once per evicted segment — one admission may evict many
        small segments and the shortest-path tree does not change while
        it does.
        """
        distances: Optional[Dict[str, int]] = None
        if self.policy == "graph" and current_scenario is not None:
            distances = dict(
                nx.single_source_shortest_path_length(
                    self.graph._g, current_scenario  # noqa: SLF001 - same package
                )
            )
        while self._resident_bytes + incoming > self.capacity_bytes:
            self._evict_one(current_scenario, distances)

    def _evict_one(
        self,
        current_scenario: Optional[str],
        distances: Optional[Dict[str, int]] = None,
    ) -> None:
        if not self._resident:  # pragma: no cover - guarded by size check
            raise RuntimeError("cache invariant violated: nothing to evict")
        if self.policy in ("lru", "fifo"):
            victim, size = next(iter(self._resident.items()))
        else:
            victim, size = self._graph_victim(current_scenario, distances)
        del self._resident[victim]
        self._resident_bytes -= size
        self.stats.evictions += 1
        self.stats.bytes_evicted += size
        _M_EVICTIONS.inc(policy=self.policy)
        _M_BYTES_EVICTED.inc(size, policy=self.policy)
        if _obs.enabled():
            _LOG.debug(
                "cache.evict",
                sample=0.5,
                segment=victim,
                bytes=size,
                policy=self.policy,
            )

    def _graph_victim(
        self,
        current_scenario: Optional[str],
        distances: Optional[Dict[str, int]] = None,
    ) -> Tuple[int, int]:
        """Farthest-from-player resident segment (ties: oldest)."""
        assert self.graph is not None
        if current_scenario is None:
            return next(iter(self._resident.items()))
        if distances is None:
            distances = dict(
                nx.single_source_shortest_path_length(
                    self.graph._g, current_scenario  # noqa: SLF001 - same package
                )
            )
        best: Optional[Tuple[int, int]] = None
        best_dist = -1
        for seg, size in self._resident.items():
            sid = self._scenario_of.get(seg)
            dist = distances.get(sid, 10**9)  # unreachable = farthest
            if dist > best_dist:
                best_dist = dist
                best = (seg, size)
        assert best is not None
        return best


def simulate_cached_playback(
    reader,
    graph: ScenarioGraph,
    path: Sequence[Tuple[str, float]],
    capacity_bytes: int,
    policy: str = "lru",
) -> CacheStats:
    """Replay a visit path through a bounded cache; returns the stats.

    A convenience driver shared by the cache ablation bench and tests:
    every visit accesses the scenario's segment; misses after the first
    ever access are refetches (a real player would stall).
    """
    cache = SegmentCache(capacity_bytes, policy=policy, graph=graph)
    for scenario_id, _dwell in path:
        seg = graph.scenarios[scenario_id].segment_ref
        size = reader.index[seg].byte_size
        cache.access(
            seg, size, scenario_id=scenario_id, current_scenario=scenario_id
        )
    return cache.stats
