"""Condition expression language for authored events.

§3.2: designers "provide means to players and deliver knowledge in the
process of solving a problem … Students will get different feedback after
they install components into the computer by the content providers'
authoring."  Different feedback for different states needs guards; this
module is the small, total expression language the object editor stores
with each event binding.

Grammar (lowest precedence first)::

    expr     := or
    or       := and ( "or" and )*
    and      := not ( "and" not )*
    not      := "not" not | cmp
    cmp      := term ( ("==" | "!=" | "<" | "<=" | ">" | ">=") term )?
    term     := NUMBER | STRING | "true" | "false" | "score"
              | "(" expr ")"
              | "has"     "(" STRING ")"
              | "flag"    "(" STRING ")"
              | "visited" "(" STRING ")"
              | "count"   "(" STRING ")"
              | "prop"    "(" STRING "," STRING ")"

Predicates read a :class:`ConditionContext`; the language has no
side-effects and always terminates, so authored games cannot hang the
runtime.  Parsing is separate from evaluation: the authoring tool parses
once at save time (rejecting bad expressions with positions) and the
runtime evaluates the cached AST per trigger.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Protocol, Tuple, Union

__all__ = [
    "ConditionContext",
    "ConditionError",
    "Expr",
    "compile_condition",
    "evaluate",
    "parse_condition",
]


class ConditionError(ValueError):
    """Raised on lexical, syntax or evaluation errors (with position)."""


class ConditionContext(Protocol):
    """State the language can observe (implemented by the runtime)."""

    def has_item(self, item_id: str) -> bool: ...  # pragma: no cover
    def item_count(self, item_id: str) -> int: ...  # pragma: no cover
    def get_flag(self, name: str) -> bool: ...  # pragma: no cover
    def has_visited(self, scenario_id: str) -> bool: ...  # pragma: no cover
    def get_score(self) -> int: ...  # pragma: no cover
    def get_prop(self, object_id: str, key: str) -> Any: ...  # pragma: no cover


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<num>-?\d+(?:\.\d+)?)
  | (?P<str>'[^']*'|"[^"]*")
  | (?P<op><=|>=|==|!=|<|>)
  | (?P<lp>\()
  | (?P<rp>\))
  | (?P<comma>,)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true", "false", "score", "has", "flag",
             "visited", "count", "prop"}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    value: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ConditionError(f"unexpected character {text[pos]!r} at {pos}")
        kind = m.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Lit:
    """Literal number/string/bool."""
    value: Union[float, str, bool]


@dataclass(frozen=True, slots=True)
class Score:
    """The player's current score."""


@dataclass(frozen=True, slots=True)
class Pred:
    """Predicate call: has/flag/visited/count/prop with string args."""
    name: str
    args: Tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Cmp:
    """Comparison ``left op right``."""
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Expr"


@dataclass(frozen=True, slots=True)
class And:
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class Or:
    left: "Expr"
    right: "Expr"


Expr = Union[Lit, Score, Pred, Cmp, Not, And, Or]


# ----------------------------------------------------------------------
# Parser (recursive descent)
# ----------------------------------------------------------------------

_PRED_ARITY = {"has": 1, "flag": 1, "visited": 1, "count": 1, "prop": 2}


class _Parser:
    def __init__(self, tokens: List[_Token], text: str) -> None:
        self._toks = tokens
        self._text = text
        self._i = 0

    def _peek(self) -> Optional[_Token]:
        return self._toks[self._i] if self._i < len(self._toks) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise ConditionError(f"unexpected end of expression: {self._text!r}")
        self._i += 1
        return tok

    def _expect(self, kind: str, what: str) -> _Token:
        tok = self._next()
        if tok.kind != kind:
            raise ConditionError(f"expected {what} at {tok.pos}, got {tok.value!r}")
        return tok

    def parse(self) -> Expr:
        expr = self._or()
        tok = self._peek()
        if tok is not None:
            raise ConditionError(f"trailing input at {tok.pos}: {tok.value!r}")
        return expr

    def _or(self) -> Expr:
        left = self._and()
        while self._at_keyword("or"):
            self._next()
            left = Or(left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self._at_keyword("and"):
            self._next()
            left = And(left, self._not())
        return left

    def _not(self) -> Expr:
        if self._at_keyword("not"):
            self._next()
            return Not(self._not())
        return self._cmp()

    def _cmp(self) -> Expr:
        left = self._term()
        tok = self._peek()
        if tok is not None and tok.kind == "op":
            self._next()
            right = self._term()
            return Cmp(tok.value, left, right)
        return left

    def _term(self) -> Expr:
        tok = self._next()
        if tok.kind == "num":
            return Lit(float(tok.value))
        if tok.kind == "str":
            return Lit(tok.value[1:-1])
        if tok.kind == "lp":
            inner = self._or()
            self._expect("rp", "')'")
            return inner
        if tok.kind == "ident":
            word = tok.value
            if word == "true":
                return Lit(True)
            if word == "false":
                return Lit(False)
            if word == "score":
                return Score()
            if word in _PRED_ARITY:
                self._expect("lp", "'('")
                args: List[str] = []
                for k in range(_PRED_ARITY[word]):
                    if k:
                        self._expect("comma", "','")
                    s = self._expect("str", "string argument")
                    args.append(s.value[1:-1])
                self._expect("rp", "')'")
                return Pred(word, tuple(args))
            raise ConditionError(f"unknown identifier {word!r} at {tok.pos}")
        raise ConditionError(f"unexpected token {tok.value!r} at {tok.pos}")

    def _at_keyword(self, kw: str) -> bool:
        tok = self._peek()
        return tok is not None and tok.kind == "ident" and tok.value == kw


def parse_condition(text: str) -> Expr:
    """Parse an expression string to an AST; raises :class:`ConditionError`.

    The empty string (and whitespace) parses to the constant ``true`` —
    an event with no guard always fires.
    """
    if not text or not text.strip():
        return Lit(True)
    return _Parser(_tokenize(text), text).parse()


# ----------------------------------------------------------------------
# Evaluator
# ----------------------------------------------------------------------

def _as_number(v: Any, where: str) -> float:
    if isinstance(v, bool):
        return 1.0 if v else 0.0
    if isinstance(v, (int, float)):
        return float(v)
    raise ConditionError(f"{where}: expected a number, got {type(v).__name__}")


def _compare(op: str, lv: Any, rv: Any) -> bool:
    if op in ("==", "!="):
        # String/number/bool equality; mixed string-vs-number is just unequal.
        if isinstance(lv, str) != isinstance(rv, str):
            eq = False
        else:
            eq = lv == rv
        return eq if op == "==" else not eq
    ln = _as_number(lv, f"left of {op}")
    rn = _as_number(rv, f"right of {op}")
    if op == "<":
        return ln < rn
    if op == "<=":
        return ln <= rn
    if op == ">":
        return ln > rn
    if op == ">=":
        return ln >= rn
    raise ConditionError(f"unknown comparison operator {op!r}")


def _eval_value(expr: Expr, ctx: ConditionContext) -> Any:
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Score):
        return ctx.get_score()
    if isinstance(expr, Pred):
        if expr.name == "has":
            return ctx.has_item(expr.args[0])
        if expr.name == "flag":
            return ctx.get_flag(expr.args[0])
        if expr.name == "visited":
            return ctx.has_visited(expr.args[0])
        if expr.name == "count":
            return ctx.item_count(expr.args[0])
        if expr.name == "prop":
            return ctx.get_prop(expr.args[0], expr.args[1])
        raise ConditionError(f"unknown predicate {expr.name!r}")
    if isinstance(expr, Cmp):
        return _compare(expr.op, _eval_value(expr.left, ctx), _eval_value(expr.right, ctx))
    if isinstance(expr, Not):
        return not _truthy(_eval_value(expr.operand, ctx))
    if isinstance(expr, And):
        return _truthy(_eval_value(expr.left, ctx)) and _truthy(
            _eval_value(expr.right, ctx)
        )
    if isinstance(expr, Or):
        return _truthy(_eval_value(expr.left, ctx)) or _truthy(
            _eval_value(expr.right, ctx)
        )
    raise ConditionError(f"unknown AST node {type(expr).__name__}")


def _truthy(v: Any) -> bool:
    if isinstance(v, bool):
        return v
    if isinstance(v, (int, float)):
        return v != 0
    if isinstance(v, str):
        return bool(v)
    raise ConditionError(f"value of type {type(v).__name__} is not truthy-testable")


def evaluate(expr: Expr, ctx: ConditionContext) -> bool:
    """Evaluate an AST against a context, returning a boolean."""
    return _truthy(_eval_value(expr, ctx))


class compile_condition:
    """Parse once, evaluate many times; also keeps the source text.

    Used by event bindings: ``compile_condition("has('screwdriver')")``
    is callable with a context.  Equality and hashing are by source text
    so bindings stay comparable/serialisable.
    """

    __slots__ = ("source", "ast")

    def __init__(self, source: str) -> None:
        self.source = source
        self.ast = parse_condition(source)

    def __call__(self, ctx: ConditionContext) -> bool:
        return evaluate(self.ast, ctx)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, compile_condition):
            return NotImplemented
        return self.source == other.source

    def __hash__(self) -> int:
        return hash(self.source)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"compile_condition({self.source!r})"
