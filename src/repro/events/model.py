"""Event bindings: (trigger, guard) → actions, authored per scenario.

This is the table the object editor writes (§4.2: "set the properties and
events of objects in video and produce adequate feedback when users'
trigger them") and the runtime engine reads on every interaction.

A binding names

* where it applies — a scenario id, or ``"*"`` for global bindings;
* what triggers it — a :class:`Trigger` kind plus the object involved
  (and, for USE_ITEM, which inventory item was used on it);
* when it may fire — a compiled condition over the game state;
* what happens — an ordered list of :class:`~repro.events.actions.Action`;
* ``once`` — whether it disarms after its first firing (most knowledge-
  delivery feedback fires once; ambient examine text fires always).

Matching (see :meth:`EventTable.match`) is deterministic: scenario-local
bindings beat global ones, then higher ``priority``, then authoring
order.  The runtime fires *all* matching bindings in that order — the
paper's "different feedback" branches are expressed as multiple bindings
with disjoint guards.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from ..obs import metrics as _obs
from .actions import Action, action_from_dict
from .conditions import ConditionContext, compile_condition

__all__ = ["EventBinding", "EventError", "EventTable", "Trigger"]

_M_MATCH_CACHE_HITS = _obs.counter(
    "repro_engine_condition_cache_hits_total",
    "Interaction dispatches served from the structural match cache",
)
_M_MATCH_CACHE_MISSES = _obs.counter(
    "repro_engine_condition_cache_misses_total",
    "Interaction dispatches that had to scan and sort the binding table",
)

_binding_counter = itertools.count(1)

GLOBAL_SCOPE = "*"


class EventError(ValueError):
    """Raised on invalid event bindings."""


class Trigger:
    """Trigger kinds the runtime can deliver."""

    CLICK = "click"          #: left-click an object
    EXAMINE = "examine"      #: right-click / examine gesture
    TAKE = "take"            #: drag a portable object into the inventory
    USE_ITEM = "use_item"    #: use an inventory item on an object
    ENTER = "enter"          #: scenario becomes active (object_id is None)
    TIMER = "timer"          #: dwell time in a scenario exceeds a bound
    TALK = "talk"            #: click an NPC (engine also opens dialogue)
    APPROACH = "approach"    #: the avatar walks into an object's hotspot

    ALL = (CLICK, EXAMINE, TAKE, USE_ITEM, ENTER, TIMER, TALK, APPROACH)

    #: triggers that require an object id
    OBJECT_SCOPED = (CLICK, EXAMINE, TAKE, USE_ITEM, TALK, APPROACH)


@dataclass(slots=True)
class EventBinding:
    """One authored event rule.  See module docstring for semantics."""

    scenario_id: str
    trigger: str
    actions: List[Action]
    object_id: Optional[str] = None
    item_id: Optional[str] = None
    condition: str = ""
    once: bool = False
    priority: int = 0
    binding_id: str = ""
    timer_seconds: float = 0.0
    _compiled: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.binding_id:
            self.binding_id = f"ev-{next(_binding_counter)}"
        if self.trigger not in Trigger.ALL:
            raise EventError(f"unknown trigger {self.trigger!r}")
        if self.trigger in Trigger.OBJECT_SCOPED and not self.object_id:
            raise EventError(f"trigger {self.trigger!r} requires an object_id")
        if self.trigger == Trigger.USE_ITEM and not self.item_id:
            raise EventError("use_item trigger requires an item_id")
        if self.trigger == Trigger.TIMER and self.timer_seconds <= 0:
            raise EventError("timer trigger requires timer_seconds > 0")
        if not self.scenario_id:
            raise EventError("binding requires a scenario id (or '*')")
        if not self.actions:
            raise EventError("binding requires at least one action")
        self._compiled = compile_condition(self.condition)

    # ------------------------------------------------------------------
    def matches(
        self,
        scenario_id: str,
        trigger: str,
        object_id: Optional[str],
        item_id: Optional[str],
    ) -> bool:
        """Structural match (ignores the condition)."""
        if self.trigger != trigger:
            return False
        if self.scenario_id not in (GLOBAL_SCOPE, scenario_id):
            return False
        if self.trigger in Trigger.OBJECT_SCOPED and self.object_id != object_id:
            return False
        if self.trigger == Trigger.USE_ITEM and self.item_id != item_id:
            return False
        return True

    def guard_passes(self, ctx: ConditionContext) -> bool:
        """Evaluate the compiled condition against the game state."""
        return bool(self._compiled(ctx))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "binding_id": self.binding_id,
            "scenario_id": self.scenario_id,
            "trigger": self.trigger,
            "object_id": self.object_id,
            "item_id": self.item_id,
            "condition": self.condition,
            "once": self.once,
            "priority": self.priority,
            "timer_seconds": self.timer_seconds,
            "actions": [a.to_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "EventBinding":
        return cls(
            binding_id=d.get("binding_id", ""),
            scenario_id=d["scenario_id"],
            trigger=d["trigger"],
            object_id=d.get("object_id"),
            item_id=d.get("item_id"),
            condition=d.get("condition", ""),
            once=d.get("once", False),
            priority=d.get("priority", 0),
            timer_seconds=d.get("timer_seconds", 0.0),
            actions=[action_from_dict(a) for a in d["actions"]],
        )


class EventTable:
    """All bindings of a project, with deterministic matching.

    The table preserves authoring order; ``fired`` ids of ``once``
    bindings are tracked by the *game state*, not here, so one table can
    serve many concurrent sessions.
    """

    def __init__(self, bindings: Optional[Iterable[EventBinding]] = None) -> None:
        self._bindings: List[EventBinding] = []
        self._ids: Set[str] = set()
        #: structural-match memo: (scenario, trigger, object, item) →
        #: pre-sorted candidate bindings.  Guards and once-exclusion are
        #: per-session state and stay outside the cache.
        self._match_cache: Dict[tuple, List[EventBinding]] = {}
        for b in bindings or []:
            self.add(b)

    def invalidate_cache(self) -> None:
        """Drop the structural match memo (after editing bindings in place)."""
        self._match_cache.clear()

    def add(self, binding: EventBinding) -> str:
        """Add a binding; returns its id."""
        if binding.binding_id in self._ids:
            raise EventError(f"duplicate binding id {binding.binding_id!r}")
        self._bindings.append(binding)
        self._ids.add(binding.binding_id)
        self._match_cache.clear()
        return binding.binding_id

    def remove(self, binding_id: str) -> EventBinding:
        """Remove and return a binding by id."""
        for i, b in enumerate(self._bindings):
            if b.binding_id == binding_id:
                self._ids.discard(binding_id)
                self._match_cache.clear()
                return self._bindings.pop(i)
        raise EventError(f"no binding {binding_id!r}")

    def get(self, binding_id: str) -> EventBinding:
        for b in self._bindings:
            if b.binding_id == binding_id:
                return b
        raise EventError(f"no binding {binding_id!r}")

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self):
        return iter(self._bindings)

    def for_scenario(self, scenario_id: str) -> List[EventBinding]:
        """All bindings that can apply in a scenario (local + global)."""
        return [
            b
            for b in self._bindings
            if b.scenario_id in (GLOBAL_SCOPE, scenario_id)
        ]

    def timers_for(self, scenario_id: str) -> List[EventBinding]:
        """Timer bindings applicable to a scenario, ascending deadline."""
        timers = [
            b
            for b in self.for_scenario(scenario_id)
            if b.trigger == Trigger.TIMER
        ]
        return sorted(timers, key=lambda b: b.timer_seconds)

    def match(
        self,
        scenario_id: str,
        trigger: str,
        object_id: Optional[str] = None,
        item_id: Optional[str] = None,
        ctx: Optional[ConditionContext] = None,
        exclude_ids: Optional[Set[str]] = None,
    ) -> List[EventBinding]:
        """Bindings that fire for an interaction, in firing order.

        Order: scenario-local before global, then descending ``priority``,
        then authoring order.  ``exclude_ids`` carries the game state's
        set of already-fired ``once`` bindings.  When ``ctx`` is given,
        guards are evaluated; otherwise only structural matching is done
        (used by the validator).

        The structural part (scan + sort) depends only on the lookup key,
        not on session state, so it is memoised per table; mutating a
        binding *after* insertion requires :meth:`invalidate_cache`.
        """
        key = (scenario_id, trigger, object_id, item_id)
        ordered = self._match_cache.get(key)
        if ordered is None:
            _M_MATCH_CACHE_MISSES.inc()
            hits: List[tuple] = []
            for order, b in enumerate(self._bindings):
                if not b.matches(scenario_id, trigger, object_id, item_id):
                    continue
                local = 0 if b.scenario_id != GLOBAL_SCOPE else 1
                hits.append((local, -b.priority, order, b))
            hits.sort(key=lambda t: t[:3])
            ordered = [t[3] for t in hits]
            self._match_cache[key] = ordered
        else:
            _M_MATCH_CACHE_HITS.inc()
        out: List[EventBinding] = []
        for b in ordered:
            if exclude_ids and b.once and b.binding_id in exclude_ids:
                continue
            if ctx is not None and not b.guard_passes(ctx):
                continue
            out.append(b)
        return out

    def to_list(self) -> List[Dict[str, Any]]:
        return [b.to_dict() for b in self._bindings]

    @classmethod
    def from_list(cls, items: Sequence[Dict[str, Any]]) -> "EventTable":
        return cls(EventBinding.from_dict(d) for d in items)
