"""Actions: the effects an authored event can produce.

§2.1/§4.3 enumerate the observable effects of triggering objects:
"change the play sequence of a video", "text messages, images and webpage
are also popped up", items enter the inventory, flags/properties change,
bonuses are awarded (§3.3), dialogues start (§3.1), and the game can end.

Actions are *data*, not behaviour: the authoring tool serialises them
into the project file and the runtime engine interprets them.  Keeping
them declarative is what makes authored games analysable — the
authoring-time validator (:mod:`repro.core.validation`) walks action
lists to prove reachability and winnability without running the game.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Type

__all__ = [
    "Action",
    "ActionError",
    "AwardBonus",
    "EndGame",
    "GiveItem",
    "OpenWeb",
    "PopupImage",
    "SetFlag",
    "SetObjectVisible",
    "SetProperty",
    "ShowText",
    "StartDialogue",
    "SwitchScenario",
    "TakeItem",
    "action_from_dict",
    "register_action",
]


class ActionError(ValueError):
    """Raised on invalid action definitions."""


@dataclass(frozen=True, slots=True)
class Action:
    """Base class; concrete actions are frozen dataclasses with a kind."""

    kind = "action"

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            d[f.name] = getattr(self, f.name)
        return d


@dataclass(frozen=True, slots=True)
class SwitchScenario(Action):
    """Change the play sequence: jump to another scenario."""

    target: str
    kind = "switch_scenario"

    def __post_init__(self) -> None:
        if not self.target:
            raise ActionError("switch_scenario requires a target scenario id")


@dataclass(frozen=True, slots=True)
class ShowText(Action):
    """Pop up a text message (examine feedback, hints, instructions)."""

    text: str
    kind = "show_text"

    def __post_init__(self) -> None:
        if not self.text:
            raise ActionError("show_text requires text")


@dataclass(frozen=True, slots=True)
class PopupImage(Action):
    """Pop up an image object (by object id) as an overlay."""

    object_id: str
    kind = "popup_image"

    def __post_init__(self) -> None:
        if not self.object_id:
            raise ActionError("popup_image requires an object id")


@dataclass(frozen=True, slots=True)
class OpenWeb(Action):
    """Surface a web page URL to the host shell ("get information from
    websites"); recorded in the session log, never fetched."""

    url: str
    kind = "open_web"

    def __post_init__(self) -> None:
        if not self.url or "://" not in self.url:
            raise ActionError(f"open_web requires an absolute URL, got {self.url!r}")


@dataclass(frozen=True, slots=True)
class GiveItem(Action):
    """Put an item into the player's backpack."""

    item_id: str
    kind = "give_item"

    def __post_init__(self) -> None:
        if not self.item_id:
            raise ActionError("give_item requires an item id")


@dataclass(frozen=True, slots=True)
class TakeItem(Action):
    """Remove an item from the backpack (consumed on use)."""

    item_id: str
    kind = "take_item"

    def __post_init__(self) -> None:
        if not self.item_id:
            raise ActionError("take_item requires an item id")


@dataclass(frozen=True, slots=True)
class SetFlag(Action):
    """Set a named boolean flag in the game state."""

    name: str
    value: bool = True
    kind = "set_flag"

    def __post_init__(self) -> None:
        if not self.name:
            raise ActionError("set_flag requires a flag name")


@dataclass(frozen=True, slots=True)
class SetProperty(Action):
    """Set an object property (e.g. mark the computer repaired)."""

    object_id: str
    key: str
    value: Any
    kind = "set_property"

    def __post_init__(self) -> None:
        if not self.object_id or not self.key:
            raise ActionError("set_property requires object_id and key")


@dataclass(frozen=True, slots=True)
class SetObjectVisible(Action):
    """Show or hide an object in its scenario (clue reveals)."""

    object_id: str
    visible: bool
    kind = "set_visible"

    def __post_init__(self) -> None:
        if not self.object_id:
            raise ActionError("set_visible requires an object id")


@dataclass(frozen=True, slots=True)
class AwardBonus(Action):
    """Award bonus points, optionally granting a reward object (§3.3)."""

    points: int
    reward_id: Optional[str] = None
    kind = "award_bonus"

    def __post_init__(self) -> None:
        if self.points < 0:
            raise ActionError("bonus points must be non-negative")


@dataclass(frozen=True, slots=True)
class StartDialogue(Action):
    """Begin an NPC conversation tree."""

    dialogue_id: str
    kind = "start_dialogue"

    def __post_init__(self) -> None:
        if not self.dialogue_id:
            raise ActionError("start_dialogue requires a dialogue id")


@dataclass(frozen=True, slots=True)
class EndGame(Action):
    """Finish the game with an outcome label ("won", "lost", ...)."""

    outcome: str = "won"
    kind = "end_game"

    def __post_init__(self) -> None:
        if not self.outcome:
            raise ActionError("end_game requires an outcome label")


# ----------------------------------------------------------------------
# Registry / serialisation
# ----------------------------------------------------------------------

_ACTION_REGISTRY: Dict[str, Type[Action]] = {}


def register_action(cls: Type[Action]) -> Type[Action]:
    """Register an action class for ``action_from_dict`` dispatch."""
    if not cls.kind or cls.kind == Action.kind:
        raise ActionError("action class must define a distinct kind")
    _ACTION_REGISTRY[cls.kind] = cls
    return cls


for _cls in (
    SwitchScenario,
    ShowText,
    PopupImage,
    OpenWeb,
    GiveItem,
    TakeItem,
    SetFlag,
    SetProperty,
    SetObjectVisible,
    AwardBonus,
    StartDialogue,
    EndGame,
):
    register_action(_cls)


def action_from_dict(d: Dict[str, Any]) -> Action:
    """Deserialise an action produced by ``Action.to_dict``."""
    kind = d.get("kind")
    cls = _ACTION_REGISTRY.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ActionError(f"unknown action kind {kind!r}")
    kwargs = {k: v for k, v in d.items() if k != "kind"}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ActionError(f"bad fields for action {kind!r}: {exc}") from exc
