"""Event system: the condition language, declarative actions, event
bindings/table, and the notification bus the runtime publishes on."""

from .actions import (
    Action,
    ActionError,
    AwardBonus,
    EndGame,
    GiveItem,
    OpenWeb,
    PopupImage,
    SetFlag,
    SetObjectVisible,
    SetProperty,
    ShowText,
    StartDialogue,
    SwitchScenario,
    TakeItem,
    action_from_dict,
    register_action,
)
from .bus import EventBus, Notice
from .conditions import (
    ConditionContext,
    ConditionError,
    compile_condition,
    evaluate,
    parse_condition,
)
from .model import GLOBAL_SCOPE, EventBinding, EventError, EventTable, Trigger

__all__ = [
    "Action",
    "ActionError",
    "AwardBonus",
    "ConditionContext",
    "ConditionError",
    "EndGame",
    "EventBinding",
    "EventBus",
    "EventError",
    "EventTable",
    "GLOBAL_SCOPE",
    "GiveItem",
    "Notice",
    "OpenWeb",
    "PopupImage",
    "SetFlag",
    "SetObjectVisible",
    "SetProperty",
    "ShowText",
    "StartDialogue",
    "SwitchScenario",
    "TakeItem",
    "Trigger",
    "action_from_dict",
    "compile_condition",
    "evaluate",
    "parse_condition",
    "register_action",
]
