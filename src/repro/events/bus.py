"""A small synchronous publish/subscribe bus.

The runtime engine publishes everything observable — interactions,
fired bindings, executed actions, scenario switches, popups, rewards —
onto topic channels.  The session recorder, the learning-analytics
collector and the TUI all subscribe rather than being hard-wired into the
engine, which keeps the engine testable in isolation.

Delivery is synchronous and in subscription order; a subscriber that
raises is unsubscribed after ``max_errors`` consecutive failures instead
of poisoning the engine loop (failure-injection tests rely on this).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, DefaultDict, Dict, List, Optional, Tuple

from ..obs import logging as _obslog
from ..obs import metrics as _obs

__all__ = ["EventBus", "Notice"]

_LOG = _obslog.get_logger("bus")

_M_PUBLISHED = _obs.counter(
    "repro_bus_published_total",
    "Notices published on engine buses, by topic",
)
_M_SUB_ERRORS = _obs.counter(
    "repro_bus_subscriber_errors_total",
    "Exceptions raised by bus subscribers (swallowed by quarantine logic)",
)
_M_QUARANTINED = _obs.counter(
    "repro_bus_quarantined_total",
    "Subscribers dropped after repeated failures",
)


@dataclass(frozen=True, slots=True)
class Notice:
    """One published notification."""

    topic: str
    payload: Dict[str, Any]
    time: float = 0.0


Subscriber = Callable[[Notice], None]


class EventBus:
    """Topic-based synchronous pub/sub with error quarantine.

    Topics are plain strings ("interaction", "action", "scenario",
    "popup", "reward", ...).  Subscribing to ``"*"`` receives everything.
    """

    def __init__(self, max_errors: int = 3) -> None:
        if max_errors < 1:
            raise ValueError("max_errors must be >= 1")
        self._subs: DefaultDict[str, List[Tuple[int, Subscriber]]] = defaultdict(list)
        self._errors: Dict[int, int] = {}
        self._next_token = 1
        self.max_errors = max_errors
        #: number of notices published (all topics)
        self.published_count = 0
        #: subscriber tokens dropped due to repeated errors
        self.quarantined: List[int] = []

    def subscribe(self, topic: str, fn: Subscriber) -> int:
        """Subscribe ``fn`` to ``topic`` (or "*"); returns a token."""
        token = self._next_token
        self._next_token += 1
        self._subs[topic].append((token, fn))
        self._errors[token] = 0
        return token

    def unsubscribe(self, token: int) -> bool:
        """Remove a subscription by token; True if it existed."""
        found = False
        for topic, subs in self._subs.items():
            kept = [(t, f) for (t, f) in subs if t != token]
            if len(kept) != len(subs):
                self._subs[topic] = kept
                found = True
        self._errors.pop(token, None)
        return found

    def publish(self, topic: str, payload: Optional[Dict[str, Any]] = None, time: float = 0.0) -> Notice:
        """Publish a notice; delivers to topic and "*" subscribers."""
        notice = Notice(topic=topic, payload=dict(payload or {}), time=time)
        self.published_count += 1
        _M_PUBLISHED.inc(topic=topic)
        for sub_topic in (topic, "*"):
            # Copy: subscribers may unsubscribe during delivery.
            for token, fn in list(self._subs.get(sub_topic, ())):
                try:
                    fn(notice)
                except Exception as exc:
                    _M_SUB_ERRORS.inc()
                    self._errors[token] = self._errors.get(token, 0) + 1
                    if _obs.enabled():
                        _LOG.warning(
                            "bus.subscriber_error",
                            topic=topic,
                            token=token,
                            errors=self._errors[token],
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    if self._errors[token] >= self.max_errors:
                        self.unsubscribe(token)
                        self.quarantined.append(token)
                        _M_QUARANTINED.inc()
                        if _obs.enabled():
                            _LOG.warning(
                                "bus.quarantined", topic=topic, token=token
                            )
                else:
                    self._errors[token] = 0
        return notice

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        """Number of live subscriptions, optionally for one topic."""
        if topic is not None:
            return len(self._subs.get(topic, ()))
        return sum(len(v) for v in self._subs.values())
