"""Input recording and deterministic replay.

The runtime is deterministic given a clock and an input stream, which
makes recorded sessions *regression tests for authored content*: record
a teacher's reference playthrough once; after every edit, replay it and
assert the outcome still holds.  The authoring tool's "verify course"
button is exactly this.

A recording is a JSON-safe list of timestamped input events plus the
dialogue choices taken; :func:`replay` feeds them into a fresh engine on
a simulated clock and returns the final state for assertions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..video.player import SimulatedClock
from .engine import GameEngine
from .inputs import KeyPress, MouseClick, MouseDrag

__all__ = ["InputRecorder", "Recording", "ReplayMismatch", "replay"]


class ReplayMismatch(AssertionError):
    """Raised when a replay's expectations are violated."""


def _event_to_dict(event: Any) -> Dict[str, Any]:
    if isinstance(event, MouseClick):
        return {"kind": "click", "x": event.x, "y": event.y, "button": event.button}
    if isinstance(event, MouseDrag):
        return {"kind": "drag", "x0": event.x0, "y0": event.y0,
                "x1": event.x1, "y1": event.y1}
    if isinstance(event, KeyPress):
        return {"kind": "key", "key": event.key}
    raise TypeError(f"unrecordable event type {type(event).__name__}")


def _event_from_dict(d: Dict[str, Any]) -> Any:
    kind = d.get("kind")
    if kind == "click":
        return MouseClick(d["x"], d["y"], d.get("button", "left"))
    if kind == "drag":
        return MouseDrag(d["x0"], d["y0"], d["x1"], d["y1"])
    if kind == "key":
        return KeyPress(d["key"])
    raise ValueError(f"unknown recorded event kind {kind!r}")


@dataclass(slots=True)
class Recording:
    """A timestamped input script plus expected outcomes."""

    game_title: str
    steps: List[Dict[str, Any]] = field(default_factory=list)
    expected_outcome: Optional[str] = None
    expected_score: Optional[int] = None

    def to_json(self) -> str:
        return json.dumps({
            "game_title": self.game_title,
            "steps": self.steps,
            "expected_outcome": self.expected_outcome,
            "expected_score": self.expected_score,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Recording":
        d = json.loads(text)
        return cls(
            game_title=d["game_title"],
            steps=list(d.get("steps", [])),
            expected_outcome=d.get("expected_outcome"),
            expected_score=d.get("expected_score"),
        )

    def __len__(self) -> int:
        return len(self.steps)


class InputRecorder:
    """Wraps a live engine; forwards inputs while recording them.

    Use the recorder's :meth:`handle_input`, :meth:`choose_dialogue` and
    :meth:`tick` in place of the engine's; call :meth:`finish` to stamp
    the expected outcome.
    """

    def __init__(self, engine: GameEngine, game_title: str) -> None:
        self.engine = engine
        self.recording = Recording(game_title=game_title)

    def handle_input(self, event: Any):
        self.recording.steps.append(
            {"at": self.engine.clock.now(), "event": _event_to_dict(event)}
        )
        return self.engine.handle_input(event)

    def choose_dialogue(self, index: int) -> None:
        self.recording.steps.append(
            {"at": self.engine.clock.now(), "dialogue_choice": index}
        )
        self.engine.choose_dialogue(index)

    def tick(self, dt: float) -> None:
        self.recording.steps.append(
            {"at": self.engine.clock.now(), "tick": dt}
        )
        self.engine.tick(dt)

    def finish(self) -> Recording:
        """Stamp the live outcome as the replay expectation."""
        self.recording.expected_outcome = self.engine.state.outcome
        self.recording.expected_score = self.engine.state.score
        return self.recording


def replay(
    game,
    recording: Recording,
    with_video: bool = False,
    strict: bool = True,
):
    """Re-run a recording against a (possibly re-authored) game.

    Returns the finished engine.  With ``strict`` (default) the recorded
    expected outcome and score must match, else :class:`ReplayMismatch`
    is raised with a diff-style message — the authoring tool surfaces
    that message as "your edit broke the reference playthrough".
    """
    engine = game.new_engine(clock=SimulatedClock(), with_video=with_video)
    engine.start()
    for step in recording.steps:
        if "event" in step:
            engine.handle_input(_event_from_dict(step["event"]))
        elif "dialogue_choice" in step:
            if engine.dialogue_session is not None:
                engine.choose_dialogue(step["dialogue_choice"])
        elif "tick" in step:
            engine.tick(step["tick"])
        else:
            raise ValueError(f"malformed recording step {step!r}")
    if strict:
        if engine.state.outcome != recording.expected_outcome:
            raise ReplayMismatch(
                f"outcome drifted: recorded {recording.expected_outcome!r}, "
                f"replay produced {engine.state.outcome!r}"
            )
        if (
            recording.expected_score is not None
            and engine.state.score != recording.expected_score
        ):
            raise ReplayMismatch(
                f"score drifted: recorded {recording.expected_score}, "
                f"replay produced {engine.state.score}"
            )
    return engine
