"""The rewarding mechanism (§3.3).

"Players can get bonus if they make the right decisions which the content
providers set in the authoring system … some objects are considered as
rewards.  If players complete some requests or missions, they can get
special objects in the inventory windows."

The :class:`RewardManager` interprets ``AwardBonus`` actions: it adds the
bonus to the score, and when the action names a reward object it grants
that object into the inventory as an achievement (idempotently — an
achievement is earned once, even if the authored event can re-fire).
A grant ledger records what was earned when, which the learning-analytics
layer reads as the student's achievement history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .inventory import InventoryError
from .state import GameState

__all__ = ["GrantRecord", "RewardManager"]


@dataclass(frozen=True, slots=True)
class GrantRecord:
    """One awarded bonus/reward."""

    at_time: float
    points: int
    reward_id: Optional[str]
    repeated: bool  #: True when the reward object was already owned


class RewardManager:
    """Applies bonuses and grants reward objects.

    Parameters
    ----------
    reward_names:
        Display names of reward objects, keyed by object id (built by the
        project from its ``RewardObject`` definitions).
    reward_bonuses:
        Intrinsic bonus of each reward object; added on first grant on
        top of the action's explicit points.
    """

    def __init__(
        self,
        reward_names: Optional[Dict[str, str]] = None,
        reward_bonuses: Optional[Dict[str, int]] = None,
    ) -> None:
        self.reward_names = dict(reward_names or {})
        self.reward_bonuses = dict(reward_bonuses or {})
        self.ledger: List[GrantRecord] = []

    def award(
        self, state: GameState, points: int, reward_id: Optional[str], at_time: float
    ) -> GrantRecord:
        """Apply one ``AwardBonus``; returns the ledger record."""
        repeated = False
        total = points
        if reward_id is not None:
            if state.inventory.has(reward_id):
                repeated = True  # achievement already earned: points only
            else:
                name = self.reward_names.get(reward_id, reward_id)
                try:
                    state.inventory.add(reward_id, name=name, is_reward=True)
                except InventoryError:
                    # A full backpack never blocks achievements: rewards are
                    # achievements first, objects second.  Count the points.
                    repeated = True
                else:
                    total += self.reward_bonuses.get(reward_id, 0)
        state.add_score(total)
        record = GrantRecord(
            at_time=at_time, points=total, reward_id=reward_id, repeated=repeated
        )
        self.ledger.append(record)
        return record

    @property
    def total_points_awarded(self) -> int:
        return sum(r.points for r in self.ledger)

    def achievements(self, state: GameState) -> List[str]:
        """Reward object ids currently displayed on the achievement shelf."""
        return [s.item_id for s in state.inventory.rewards]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ledger": [
                {
                    "at_time": r.at_time,
                    "points": r.points,
                    "reward_id": r.reward_id,
                    "repeated": r.repeated,
                }
                for r in self.ledger
            ]
        }
