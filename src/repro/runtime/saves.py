"""Save-game slots: course resume for the gaming platform.

Students play educational games across sittings; §3.2's knowledge-
delivery arc (hear the quest → investigate → fetch → fix) often spans a
lesson boundary.  The :class:`SaveManager` persists
:class:`~repro.runtime.state.GameState` snapshots into named slots under
a directory, with integrity checksums, per-slot metadata (when, where,
score) for the "continue" menu, and an autosave policy the engine can
drive on scenario switches.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time as _time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from .engine import GameEngine
from .state import GameState

__all__ = ["AutosavePolicy", "SaveError", "SaveManager", "SlotInfo"]

_SLOT_RE = re.compile(r"^[a-z0-9][a-z0-9_\-]*$")
AUTOSAVE_SLOT = "autosave"


class SaveError(ValueError):
    """Raised on invalid save/load operations."""


@dataclass(frozen=True, slots=True)
class SlotInfo:
    """Metadata shown in the continue menu."""

    slot: str
    game_title: str
    scenario_id: str
    score: int
    play_time: float
    saved_at: float  #: caller-supplied timestamp (simulated or wall)


class SaveManager:
    """Slot-based persistence of game states.

    File layout: one ``<slot>.save.json`` per slot containing the state
    dict, metadata and a SHA-256 of the state payload — a corrupted or
    hand-edited save is rejected at load, never half-applied.
    """

    def __init__(self, directory: Union[str, Path], game_title: str) -> None:
        if not game_title:
            raise SaveError("game title required")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.game_title = game_title

    def _path(self, slot: str) -> Path:
        if not _SLOT_RE.match(slot):
            raise SaveError(f"slot name {slot!r} must be a lowercase slug")
        return self.directory / f"{slot}.save.json"

    # ------------------------------------------------------------------
    def save(self, slot: str, state: GameState, saved_at: Optional[float] = None) -> SlotInfo:
        """Write a state snapshot into a slot (overwrites, atomically).

        The document is written to a temp file, fsynced and renamed over
        the slot with :func:`os.replace` — a crash mid-save leaves either
        the old save or the new one, never a truncated half.
        """
        state_dict = state.to_dict()
        payload = json.dumps(state_dict, sort_keys=True)
        info = SlotInfo(
            slot=slot,
            game_title=self.game_title,
            scenario_id=state.current_scenario,
            score=state.score,
            play_time=state.play_time,
            saved_at=saved_at if saved_at is not None else _time.time(),
        )
        doc = {
            "game_title": info.game_title,
            "scenario_id": info.scenario_id,
            "score": info.score,
            "play_time": info.play_time,
            "saved_at": info.saved_at,
            "state_sha256": hashlib.sha256(payload.encode()).hexdigest(),
            "state": state_dict,
        }
        path = self._path(slot)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(doc, sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return info

    def load(self, slot: str) -> GameState:
        """Load a slot; integrity-checked."""
        path = self._path(slot)
        if not path.exists():
            raise SaveError(f"no save in slot {slot!r}")
        doc = json.loads(path.read_text())
        if doc.get("game_title") != self.game_title:
            raise SaveError(
                f"slot {slot!r} belongs to {doc.get('game_title')!r}, "
                f"not {self.game_title!r}"
            )
        payload = json.dumps(doc["state"], sort_keys=True)
        if hashlib.sha256(payload.encode()).hexdigest() != doc.get("state_sha256"):
            raise SaveError(f"slot {slot!r} is corrupted (checksum mismatch)")
        return GameState.from_dict(doc["state"])

    def delete(self, slot: str) -> bool:
        """Remove a slot; True if it existed."""
        path = self._path(slot)
        if path.exists():
            path.unlink()
            return True
        return False

    def slots(self) -> List[SlotInfo]:
        """All slots of this game, newest first."""
        infos: List[SlotInfo] = []
        for path in sorted(self.directory.glob("*.save.json")):
            try:
                doc = json.loads(path.read_text())
            except json.JSONDecodeError:
                continue
            if doc.get("game_title") != self.game_title:
                continue
            infos.append(
                SlotInfo(
                    slot=path.name[: -len(".save.json")],
                    game_title=doc["game_title"],
                    scenario_id=doc.get("scenario_id", "?"),
                    score=doc.get("score", 0),
                    play_time=doc.get("play_time", 0.0),
                    saved_at=doc.get("saved_at", 0.0),
                )
            )
        infos.sort(key=lambda i: i.saved_at, reverse=True)
        return infos

    # ------------------------------------------------------------------
    def resume_engine(self, slot: str, engine: GameEngine) -> None:
        """Load a slot into a *started* engine (player re-syncs video)."""
        state = self.load(slot)
        engine.state = state
        if engine.player is not None:
            sc = engine.scenarios[state.current_scenario]
            engine.player.loop_segment = sc.loop
            engine.player.play(sc.segment_ref)
        engine.compositor.invalidate()


class AutosavePolicy:
    """Autosave on scenario switches, rate-limited.

    Subscribe it to an engine's bus; it writes the ``autosave`` slot at
    most every ``min_interval`` seconds of play time.
    """

    def __init__(self, manager: SaveManager, engine: GameEngine,
                 min_interval: float = 30.0) -> None:
        if min_interval < 0:
            raise SaveError("min_interval must be non-negative")
        self.manager = manager
        self.engine = engine
        self.min_interval = min_interval
        self._last_saved_at = -float("inf")
        self.saves_written = 0
        engine.bus.subscribe("scenario", self._on_scenario)

    def _on_scenario(self, notice) -> None:
        now = self.engine.state.play_time
        if now - self._last_saved_at < self.min_interval:
            return
        self.manager.save(AUTOSAVE_SLOT, self.engine.state, saved_at=notice.time)
        self._last_saved_at = now
        self.saves_written += 1
