"""NPC conversation trees (§3.1: "non player characters … give fixed
conversation to guide players").

A dialogue is a rooted tree (well, DAG — choices may reconverge) of
nodes.  Each node carries the NPC's line and an ordered list of player
choices; a choice points at the next node and may carry actions that the
engine executes when the choice is taken (a teacher can hand the player
the work order, for instance).  A node with no choices ends the
conversation.  "Fixed conversation" in the paper's sense is a chain of
single-choice nodes.

Trees are validated at authoring time: every referenced node must exist,
the root must reach every node (no orphaned lines), and there must be no
cycle without an exit (a player must always be able to leave).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from ..events import Action, action_from_dict

__all__ = ["Dialogue", "DialogueChoice", "DialogueError", "DialogueNode", "DialogueSession"]


class DialogueError(ValueError):
    """Raised on malformed dialogue trees or invalid stepping."""


@dataclass(slots=True)
class DialogueChoice:
    """A player reply: its text, the next node (None ends), actions."""

    text: str
    next_node: Optional[str] = None
    actions: List[Action] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.text:
            raise DialogueError("choice text must be non-empty")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "text": self.text,
            "next_node": self.next_node,
            "actions": [a.to_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DialogueChoice":
        return cls(
            text=d["text"],
            next_node=d.get("next_node"),
            actions=[action_from_dict(a) for a in d.get("actions", [])],
        )


@dataclass(slots=True)
class DialogueNode:
    """One NPC line plus the player's reply choices."""

    node_id: str
    line: str
    choices: List[DialogueChoice] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise DialogueError("node id must be non-empty")
        if not self.line:
            raise DialogueError(f"node {self.node_id!r}: line must be non-empty")

    @property
    def terminal(self) -> bool:
        return not self.choices

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "line": self.line,
            "choices": [c.to_dict() for c in self.choices],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DialogueNode":
        return cls(
            node_id=d["node_id"],
            line=d["line"],
            choices=[DialogueChoice.from_dict(c) for c in d.get("choices", [])],
        )


class Dialogue:
    """A validated conversation tree."""

    def __init__(self, dialogue_id: str, nodes: Sequence[DialogueNode], root: str) -> None:
        if not dialogue_id:
            raise DialogueError("dialogue id must be non-empty")
        if not nodes:
            raise DialogueError(f"dialogue {dialogue_id!r} has no nodes")
        self.dialogue_id = dialogue_id
        self.nodes: Dict[str, DialogueNode] = {}
        for n in nodes:
            if n.node_id in self.nodes:
                raise DialogueError(f"duplicate node id {n.node_id!r}")
            self.nodes[n.node_id] = n
        if root not in self.nodes:
            raise DialogueError(f"root node {root!r} not defined")
        self.root = root
        self._validate()

    def _validate(self) -> None:
        # All referenced nodes exist.
        for n in self.nodes.values():
            for c in n.choices:
                if c.next_node is not None and c.next_node not in self.nodes:
                    raise DialogueError(
                        f"node {n.node_id!r} choice {c.text!r} references "
                        f"unknown node {c.next_node!r}"
                    )
        # Root reaches everything.
        seen: Set[str] = set()
        stack = [self.root]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            for c in self.nodes[nid].choices:
                if c.next_node is not None:
                    stack.append(c.next_node)
        orphans = set(self.nodes) - seen
        if orphans:
            raise DialogueError(
                f"dialogue {self.dialogue_id!r}: unreachable nodes {sorted(orphans)}"
            )
        # Every node can reach an ending (terminal node or a None choice).
        can_end: Set[str] = {
            nid
            for nid, n in self.nodes.items()
            if n.terminal or any(c.next_node is None for c in n.choices)
        }
        changed = True
        while changed:
            changed = False
            for nid, n in self.nodes.items():
                if nid in can_end:
                    continue
                if any(c.next_node in can_end for c in n.choices):
                    can_end.add(nid)
                    changed = True
        stuck = set(self.nodes) - can_end
        if stuck:
            raise DialogueError(
                f"dialogue {self.dialogue_id!r}: no exit from nodes {sorted(stuck)}"
            )

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dialogue_id": self.dialogue_id,
            "root": self.root,
            "nodes": [n.to_dict() for n in self.nodes.values()],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Dialogue":
        return cls(
            dialogue_id=d["dialogue_id"],
            nodes=[DialogueNode.from_dict(n) for n in d.get("nodes", [])],
            root=d["root"],
        )

    @classmethod
    def linear(cls, dialogue_id: str, lines: Sequence[str]) -> "Dialogue":
        """Build a fixed (single-path) conversation from NPC lines —
        the paper's "fixed conversation to guide players"."""
        if not lines:
            raise DialogueError("linear dialogue needs at least one line")
        nodes: List[DialogueNode] = []
        for i, line in enumerate(lines):
            nxt = f"n{i + 1}" if i + 1 < len(lines) else None
            choices = [DialogueChoice(text="(continue)", next_node=nxt)] if nxt else []
            nodes.append(DialogueNode(node_id=f"n{i}", line=line, choices=choices))
        return cls(dialogue_id=dialogue_id, nodes=nodes, root="n0")


class DialogueSession:
    """A live walk through one dialogue.

    The engine owns the session while a conversation is open; choosing a
    reply returns that choice's actions for the engine to execute.
    """

    def __init__(self, dialogue: Dialogue) -> None:
        self.dialogue = dialogue
        self._current: Optional[str] = dialogue.root
        self.transcript: List[str] = [dialogue.nodes[dialogue.root].line]

    @property
    def active(self) -> bool:
        return self._current is not None

    @property
    def current_node(self) -> DialogueNode:
        if self._current is None:
            raise DialogueError("conversation has ended")
        return self.dialogue.nodes[self._current]

    @property
    def choices(self) -> List[str]:
        """Choice texts at the current node (empty == press to close)."""
        return [] if self._current is None else [c.text for c in self.current_node.choices]

    def choose(self, index: int) -> List[Action]:
        """Take choice ``index``; returns the actions to execute.

        Choosing at a terminal node (no choices) ends the conversation
        with no actions; any index is accepted there, matching the
        "click anywhere to close" convention.
        """
        node = self.current_node
        if node.terminal:
            self._current = None
            return []
        if not 0 <= index < len(node.choices):
            raise DialogueError(
                f"choice {index} out of range ({len(node.choices)} available)"
            )
        choice = node.choices[index]
        self.transcript.append(f"> {choice.text}")
        self._current = choice.next_node
        if self._current is not None:
            self.transcript.append(self.dialogue.nodes[self._current].line)
        return list(choice.actions)
