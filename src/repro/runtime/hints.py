"""Adaptive hints: keeping stuck students moving.

§3.1's NPCs "guide players", but a player who has exhausted the fixed
conversations can still stall.  The :class:`HintAdvisor` uses the
winnability solver as an oracle: from the player's *current* state it
finds the shortest completing script and phrases its first move as a
hint, escalating in specificity the longer the player has been stuck:

=====  =========================================================
level  hint
=====  =========================================================
0      nudge — name the scenario where the next step happens
1      direction — name the interaction kind ("examine something
       here", "someone here can help")
2      explicit — the solver move verbatim ("use X on Y")
=====  =========================================================

The advisor is deliberately stateless about *why* the player is stuck;
it recomputes from the live state, so hints are always achievable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..obs import logging as _obslog
from .state import GameState

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids runtime<->core cycle)
    from ..core.project import CompiledGame
    from ..core.solver import Move

__all__ = ["Hint", "HintAdvisor", "HintError"]

_LOG = _obslog.get_logger("hints")


class HintError(RuntimeError):
    """Raised when hinting is impossible (game unwinnable from here)."""


@dataclass(frozen=True, slots=True)
class Hint:
    """One issued hint."""

    level: int
    text: str
    moves_remaining: int  #: length of the shortest completing script


class HintAdvisor:
    """Solver-backed hint generation for one compiled game."""

    def __init__(self, game: "CompiledGame", max_states: int = 20000) -> None:
        self.game = game
        self.max_states = max_states

    # ------------------------------------------------------------------
    def shortest_completion(self, state: GameState) -> Optional[List["Move"]]:
        """Shortest winning script from ``state``, or None.

        Runs the solver's BFS but seeded from the player's state rather
        than the start state.
        """
        from collections import deque

        from ..core.solver import _apply, _canonical, _legal_moves

        engine = self.game.new_engine(with_video=False)
        engine.start()
        engine.state = GameState.from_dict(state.to_dict())
        engine.state.popups.clear()
        # Re-inject authored base props (start() built them on the
        # engine's own fresh state).
        engine._inject_base_props()

        seen = {_canonical(engine.state)}
        queue = deque([(engine.state.to_dict(), [])])
        explored = 0
        while queue and explored < self.max_states:
            snapshot, script = queue.popleft()
            explored += 1
            engine.state = GameState.from_dict(snapshot)
            if engine.state.outcome == "won":
                return script
            if engine.state.outcome is not None:
                continue
            for move in _legal_moves(engine):
                engine.state = GameState.from_dict(snapshot)
                try:
                    _apply(engine, move)
                except Exception as exc:
                    # A nominally-legal move the engine rejects is a
                    # content bug worth surfacing, not swallowing.
                    _LOG.warning(
                        "hints.move_rejected",
                        move=move.describe(),
                        scenario=engine.state.current_scenario,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    continue
                key = _canonical(engine.state)
                if key in seen:
                    continue
                seen.add(key)
                queue.append((engine.state.to_dict(), script + [move]))
        return None

    # ------------------------------------------------------------------
    def hint(self, state: GameState, level: int = 0) -> Hint:
        """Produce a hint at the given escalation level (clamped 0-2)."""
        level = max(0, min(2, level))
        script = self.shortest_completion(state)
        if script is None:
            raise HintError("no completion exists from the current state")
        if not script:
            return Hint(level=level, text="You have already won!", moves_remaining=0)
        move = script[0]
        destination = self._destination_of(state, move)

        if destination is not None:
            # The next step is navigation: phrase it as "go to X".
            texts = {
                0: f"Your next step is somewhere else - try going to {destination}.",
                1: f"Head for {destination}; what you need is that way.",
                2: f"Do this: {move.describe()} (it leads to {destination}).",
            }
        else:
            texts = {
                0: "What you need is right here - look around this scene.",
                1: {
                    "take": "Something here looks worth picking up.",
                    "use": "Something in your backpack fits something in this scene.",
                    "examine": "Examine things here more closely.",
                    "click": "Something here responds to a click.",
                    "talk": "Someone here can help you.",
                    "dialogue": "Someone here can help you.",
                    "approach": "Walk the avatar up to something here.",
                }[move.kind],
                2: f"Do this: {move.describe()}.",
            }
        return Hint(level=level, text=texts[level], moves_remaining=len(script))

    def _destination_of(self, state: GameState, move: "Move") -> Optional[str]:
        """If ``move`` changes the scenario, return the destination."""
        from ..core.solver import _apply

        engine = self.game.new_engine(with_video=False)
        engine.start()
        engine.state = GameState.from_dict(state.to_dict())
        engine._inject_base_props()
        before = engine.state.current_scenario
        try:
            _apply(engine, move)
        except Exception as exc:
            _LOG.warning(
                "hints.destination_probe_failed",
                move=move.describe(),
                scenario=before,
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
        after = engine.state.current_scenario
        return after if after != before else None
