"""Input events and gesture interpretation (§3.1).

"Without much difference from other adventure games, mouse and keyboard
are responsible for delivering users' interactions … Players can examine
and move objects in a scenario by clicking or holding their mouse keys."

Raw device events (clicks, drags, key presses — produced by a human UI,
a simulated student, or a TV-style remote via :mod:`repro.net.devices`)
are interpreted into *gestures* against the active scenario's layout:

=====================  ==================================================
Raw event              Gesture
=====================  ==================================================
left click on object   CLICK (or TALK on an NPC; or USE_ITEM when an
                       inventory item is selected)
right click on object  EXAMINE
drag object → window   TAKE (portable objects enter the backpack)
drag object elsewhere  MOVE (reposition draggable objects)
left click on window   select/deselect the clicked inventory slot
arrow keys             move the avatar
=====================  ==================================================

The interpreter is a pure function from (event, scenario, state, layout)
to a :class:`Gesture`; the engine then resolves the gesture into event-
table triggers.  Keeping interpretation pure makes the gesture rules
property-testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..graph import Scenario
from .state import GameState

__all__ = [
    "Gesture",
    "GestureKind",
    "InputError",
    "KeyPress",
    "MouseClick",
    "MouseDrag",
    "UiLayout",
    "interpret",
]


class InputError(ValueError):
    """Raised on malformed input events."""


# ----------------------------------------------------------------------
# Raw events
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class MouseClick:
    """A click at frame coordinates; button is "left" or "right"."""

    x: float
    y: float
    button: str = "left"

    def __post_init__(self) -> None:
        if self.button not in ("left", "right"):
            raise InputError(f"unknown mouse button {self.button!r}")


@dataclass(frozen=True, slots=True)
class MouseDrag:
    """Press at (x0, y0), release at (x1, y1) — the "holding" gesture."""

    x0: float
    y0: float
    x1: float
    y1: float


@dataclass(frozen=True, slots=True)
class KeyPress:
    """A key press; arrows move the avatar, digits answer dialogues."""

    key: str

    def __post_init__(self) -> None:
        if not self.key:
            raise InputError("empty key")


InputEvent = object  # MouseClick | MouseDrag | KeyPress (py3.10-friendly alias)


# ----------------------------------------------------------------------
# Layout: where the inventory window sits on the composited frame
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class UiLayout:
    """Geometry of runtime chrome on the output frame.

    The inventory window is a horizontal strip; slot ``i`` occupies
    ``slot_w`` pixels starting at ``inv_x + i*slot_w``.
    """

    frame_w: int
    frame_h: int
    inv_x: int
    inv_y: int
    inv_w: int
    inv_h: int
    slot_w: int = 24

    def in_inventory(self, x: float, y: float) -> bool:
        return (
            self.inv_x <= x < self.inv_x + self.inv_w
            and self.inv_y <= y < self.inv_y + self.inv_h
        )

    def slot_at(self, x: float, y: float) -> Optional[int]:
        """Inventory slot index under (x, y), or None."""
        if not self.in_inventory(x, y):
            return None
        return int((x - self.inv_x) // self.slot_w)

    @classmethod
    def default_for(cls, frame_w: int, frame_h: int) -> "UiLayout":
        """The standard layout: inventory strip along the bottom edge."""
        inv_h = max(20, frame_h // 8)
        return cls(
            frame_w=frame_w,
            frame_h=frame_h,
            inv_x=0,
            inv_y=frame_h - inv_h,
            inv_w=frame_w,
            inv_h=inv_h,
        )


# ----------------------------------------------------------------------
# Gestures
# ----------------------------------------------------------------------

class GestureKind:
    CLICK = "click"              #: click an object
    EXAMINE = "examine"          #: examine an object
    TALK = "talk"                #: click an NPC
    USE_ITEM = "use_item"        #: use selected inventory item on object
    TAKE = "take"                #: drag portable object into the window
    MOVE = "move"                #: reposition a draggable object
    SELECT_SLOT = "select_slot"  #: (de)select an inventory slot
    DISMISS = "dismiss"          #: close the top popup
    AVATAR = "avatar"            #: move the avatar
    NONE = "none"                #: event hit nothing actionable


@dataclass(frozen=True, slots=True)
class Gesture:
    """Interpreted input: kind plus the relevant ids/coordinates."""

    kind: str
    object_id: Optional[str] = None
    item_id: Optional[str] = None
    slot_index: Optional[int] = None
    move_to: Optional[Tuple[float, float]] = None
    avatar_delta: Optional[Tuple[float, float]] = None


_ARROWS = {
    "up": (0.0, -8.0),
    "down": (0.0, 8.0),
    "left": (-8.0, 0.0),
    "right": (8.0, 0.0),
}


def interpret(
    event: InputEvent,
    scenario: Scenario,
    state: GameState,
    layout: UiLayout,
) -> Gesture:
    """Map a raw input event to a gesture. Pure; no state mutation.

    Popup modality: while any popup is open, every click dismisses it and
    nothing else happens — matching the runtime's "click to continue".
    """
    if isinstance(event, KeyPress):
        if event.key in _ARROWS:
            return Gesture(kind=GestureKind.AVATAR, avatar_delta=_ARROWS[event.key])
        return Gesture(kind=GestureKind.NONE)

    if isinstance(event, MouseClick):
        if state.modal_active:
            return Gesture(kind=GestureKind.DISMISS)
        slot = layout.slot_at(event.x, event.y)
        if slot is not None:
            return Gesture(kind=GestureKind.SELECT_SLOT, slot_index=slot)
        obj = _visible_object_at(scenario, state, event.x, event.y)
        if obj is None:
            return Gesture(kind=GestureKind.NONE)
        if event.button == "right":
            return Gesture(kind=GestureKind.EXAMINE, object_id=obj.object_id)
        if state.inventory.selected is not None:
            return Gesture(
                kind=GestureKind.USE_ITEM,
                object_id=obj.object_id,
                item_id=state.inventory.selected,
            )
        if obj.kind == "npc":
            return Gesture(kind=GestureKind.TALK, object_id=obj.object_id)
        return Gesture(kind=GestureKind.CLICK, object_id=obj.object_id)

    if isinstance(event, MouseDrag):
        if state.modal_active:
            return Gesture(kind=GestureKind.DISMISS)
        obj = _visible_object_at(scenario, state, event.x0, event.y0)
        if obj is None:
            return Gesture(kind=GestureKind.NONE)
        if layout.in_inventory(event.x1, event.y1):
            if obj.portable:
                return Gesture(kind=GestureKind.TAKE, object_id=obj.object_id)
            return Gesture(kind=GestureKind.NONE)
        if obj.draggable:
            return Gesture(
                kind=GestureKind.MOVE,
                object_id=obj.object_id,
                move_to=(event.x1, event.y1),
            )
        return Gesture(kind=GestureKind.NONE)

    raise InputError(f"unknown input event type {type(event).__name__}")


def _visible_object_at(scenario: Scenario, state: GameState, x: float, y: float):
    """Topmost object at (x, y) honouring per-session visibility."""
    for obj in sorted(scenario.objects, key=lambda o: o.z_order, reverse=True):
        if state.object_visible(obj.object_id, obj.visible) and obj.hotspot.contains(x, y):
            return obj
    return None
