"""The VGBL runtime engine: the augmented video player of §4.3.

"The gaming platform is an augmented video player with the interaction
functionalities.  The users can manipulate the avatar in a game scenario
and make interactions with the interactive objects."

The engine wires everything together:

* a :class:`~repro.video.player.SegmentPlayer` plays the active
  scenario's video segment (looping while the player explores);
* raw input events are interpreted into gestures
  (:mod:`repro.runtime.inputs`) and resolved against the authored event
  table;
* matched bindings' actions are executed (scenario switches, popups,
  items, flags, bonuses, dialogues, game end);
* every observable step is published on the bus for the session
  recorder / analytics / TUI;
* :meth:`render` composites the current output frame.

The engine is deliberately headless and clock-driven: a human UI, a
simulated student (:mod:`repro.students`) and the benchmarks all drive it
through the same three calls — ``handle_input``, ``tick``, ``render``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Sequence

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs import tracing as _obstrace
from ..events import (
    Action,
    AwardBonus,
    EndGame,
    EventBus,
    EventTable,
    GiveItem,
    OpenWeb,
    PopupImage,
    SetFlag,
    SetObjectVisible,
    SetProperty,
    ShowText,
    StartDialogue,
    SwitchScenario,
    TakeItem,
    Trigger,
)
from ..graph import Scenario
from ..video.container import VideoReader
from ..video.frame import Frame, FrameSize
from ..video.player import Clock, SegmentPlayer, SimulatedClock
from .compositor import Compositor
from .dialogue import Dialogue, DialogueSession
from .inputs import (
    Gesture,
    GestureKind,
    InputEvent,
    MouseClick,
    MouseDrag,
    UiLayout,
    interpret,
)
from .inventory import InventoryError
from .rewards import RewardManager
from .state import GameState

__all__ = ["EngineError", "GameEngine"]

_M_DISPATCH = _obs.histogram(
    "repro_engine_dispatch_seconds",
    "Latency of one handle_input call: interpret, match, execute",
)
_M_INTERACTIONS = _obs.counter(
    "repro_engine_interactions_total",
    "Raw input events dispatched, by interpreted gesture kind",
)
_M_TRANSITIONS = _obs.counter(
    "repro_engine_transitions_total",
    "Scenario switches executed (the paper's segment changes)",
)
_M_BINDINGS_FIRED = _obs.counter(
    "repro_engine_bindings_fired_total",
    "Event bindings whose actions ran, by trigger kind",
)
_M_ACTIONS = _obs.counter(
    "repro_engine_actions_total",
    "Actions executed, by action kind",
)
_M_TICKS = _obs.counter(
    "repro_engine_ticks_total",
    "Clock ticks advanced across all engines",
)

_LOG = _obslog.get_logger("engine")


class EngineError(RuntimeError):
    """Raised on invalid engine operations."""


class GameEngine:
    """One play session over a compiled game.

    Parameters
    ----------
    scenarios:
        All scenarios by id.
    events:
        The authored event table.
    start:
        Starting scenario id.
    reader:
        Optional RVID container; when None the engine runs video-less
        (cohort simulations that only need game logic).
    dialogues:
        Conversation trees by dialogue id.
    clock:
        Time source shared with the player; defaults to a fresh
        :class:`SimulatedClock`.
    frame_size:
        Output frame size; defaults to the container's size, or 320x240
        when running video-less.
    """

    def __init__(
        self,
        scenarios: Dict[str, Scenario],
        events: EventTable,
        start: str,
        reader: Optional[VideoReader] = None,
        dialogues: Optional[Dict[str, Dialogue]] = None,
        clock: Optional[Clock] = None,
        frame_size: Optional[FrameSize] = None,
        inventory_capacity: int = 12,
    ) -> None:
        if start not in scenarios:
            raise EngineError(f"start scenario {start!r} not defined")
        self.scenarios = scenarios
        self.events = events
        self.dialogues = dict(dialogues or {})
        self.clock: Clock = clock or SimulatedClock()
        self.bus = EventBus()
        self.reader = reader
        if frame_size is None:
            frame_size = reader.size if reader is not None else FrameSize(320, 240)
        self.frame_size = frame_size
        self.layout = UiLayout.default_for(frame_size.width, frame_size.height)
        self.compositor = Compositor(self.layout)
        self.state = GameState(start, inventory_capacity=inventory_capacity)
        self.rewards = RewardManager(
            reward_names=self._collect_reward_names(),
            reward_bonuses=self._collect_reward_bonuses(),
        )
        self.player: Optional[SegmentPlayer] = (
            SegmentPlayer(reader, clock=self.clock) if reader is not None else None
        )
        self.dialogue_session: Optional[DialogueSession] = None
        self._item_names = self._collect_item_names()
        self._started = False
        #: count of interactions handled (E4 latency accounting)
        self.interactions_handled = 0

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _collect_reward_names(self) -> Dict[str, str]:
        names: Dict[str, str] = {}
        for sc in self.scenarios.values():
            for obj in sc.objects:
                if obj.kind == "reward":
                    names[obj.object_id] = obj.name
        return names

    def _collect_reward_bonuses(self) -> Dict[str, int]:
        bonuses: Dict[str, int] = {}
        for sc in self.scenarios.values():
            for obj in sc.objects:
                if obj.kind == "reward":
                    bonuses[obj.object_id] = getattr(obj, "bonus", 0)
        return bonuses

    def _collect_item_names(self) -> Dict[str, str]:
        names: Dict[str, str] = {}
        for sc in self.scenarios.values():
            for obj in sc.objects:
                names[obj.object_id] = obj.name
        return names

    def _inject_base_props(self) -> None:
        for sc in self.scenarios.values():
            for obj in sc.objects:
                for key, value in obj.properties.items():
                    self.state.base_props[(obj.object_id, key)] = value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the session: load props, start video, fire ENTER."""
        if self._started:
            raise EngineError("engine already started")
        self._started = True
        self._inject_base_props()
        self.state.avatar_xy = (
            self.frame_size.width / 2.0,
            self.frame_size.height * 0.75,
        )
        if self.player is not None:
            sc = self.current_scenario
            self.player.loop_segment = sc.loop
            self.player.play(sc.segment_ref)
        self.bus.publish(
            "scenario",
            {"scenario_id": self.state.current_scenario, "via": "start"},
            time=self.clock.now(),
        )
        if _obs.enabled():
            _LOG.info("session.start", scenario=self.state.current_scenario)
        self._fire(Trigger.ENTER, object_id=None, item_id=None)

    @property
    def current_scenario(self) -> Scenario:
        return self.scenarios[self.state.current_scenario]

    @property
    def running(self) -> bool:
        return self._started and not self.state.finished

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------
    def handle_input(self, event: InputEvent) -> Gesture:
        """Interpret and act on one raw input event; returns the gesture."""
        if not self._started:
            raise EngineError("call start() before handling input")
        if self.state.finished:
            return Gesture(kind=GestureKind.NONE)
        t0 = perf_counter() if _obs.enabled() else None
        with _obstrace.span("engine.dispatch") as sp:
            gesture = interpret(event, self.current_scenario, self.state, self.layout)
            self.interactions_handled += 1
            payload = {
                "gesture": gesture.kind,
                "object_id": gesture.object_id,
                "item_id": gesture.item_id,
                "scenario_id": self.state.current_scenario,
            }
            # Coordinates (clicks and drag origins) feed the interaction
            # heatmaps in repro.learning.heatmap.
            if isinstance(event, MouseClick):
                payload["x"], payload["y"] = event.x, event.y
            elif isinstance(event, MouseDrag):
                payload["x"], payload["y"] = event.x0, event.y0
            self.bus.publish("interaction", payload, time=self.clock.now())
            handler = {
                GestureKind.CLICK: self._on_click,
                GestureKind.EXAMINE: self._on_examine,
                GestureKind.TALK: self._on_talk,
                GestureKind.USE_ITEM: self._on_use_item,
                GestureKind.TAKE: self._on_take,
                GestureKind.MOVE: self._on_move,
                GestureKind.SELECT_SLOT: self._on_select_slot,
                GestureKind.DISMISS: self._on_dismiss,
                GestureKind.AVATAR: self._on_avatar,
                GestureKind.NONE: lambda g: None,
            }[gesture.kind]
            handler(gesture)
            if t0 is not None:
                sp.set_attribute("gesture", gesture.kind)
                sp.set_attribute("scenario", self.state.current_scenario)
                _LOG.debug(
                    "input.dispatch",
                    gesture=gesture.kind,
                    object_id=gesture.object_id,
                    item_id=gesture.item_id,
                    scenario=self.state.current_scenario,
                )
        if t0 is not None:
            _M_DISPATCH.observe(perf_counter() - t0)
            _M_INTERACTIONS.inc(gesture=gesture.kind)
        return gesture

    def _on_click(self, g: Gesture) -> None:
        fired = self._fire(Trigger.CLICK, g.object_id, None)
        if not fired:
            # Unbound click: surface the examine description as feedback,
            # so every object responds to the player somehow.
            obj = self.current_scenario.get_object(g.object_id)
            if obj.description:
                self._popup("text", obj.description)

    def _on_examine(self, g: Gesture) -> None:
        fired = self._fire(Trigger.EXAMINE, g.object_id, None)
        if not fired:
            obj = self.current_scenario.get_object(g.object_id)
            text = obj.description or f"It is {obj.name}."
            self._popup("text", text)

    def _on_talk(self, g: Gesture) -> None:
        self._fire(Trigger.TALK, g.object_id, None)
        obj = self.current_scenario.get_object(g.object_id)
        dialogue_id = getattr(obj, "dialogue_id", None)
        if dialogue_id and self.dialogue_session is None:
            self._open_dialogue(dialogue_id)

    def _on_use_item(self, g: Gesture) -> None:
        fired = self._fire(Trigger.USE_ITEM, g.object_id, g.item_id)
        self.state.inventory.deselect()
        if not fired:
            self._popup("text", "Nothing happens.")

    def _on_take(self, g: Gesture) -> None:
        obj = self.current_scenario.get_object(g.object_id)
        try:
            self.state.inventory.add(obj.object_id, name=obj.name)
        except InventoryError:
            self._popup("text", "The backpack is full.")
            return
        self.state.visibility[obj.object_id] = False
        self.compositor.invalidate()
        self.bus.publish(
            "item",
            {"item_id": obj.object_id, "via": "take"},
            time=self.clock.now(),
        )
        self._fire(Trigger.TAKE, g.object_id, None)

    def _on_move(self, g: Gesture) -> None:
        obj = self.current_scenario.get_object(g.object_id)
        assert g.move_to is not None
        obj.move_to(*g.move_to)
        self.compositor.invalidate()
        self.bus.publish(
            "move",
            {"object_id": g.object_id, "to": list(g.move_to)},
            time=self.clock.now(),
        )

    def _on_select_slot(self, g: Gesture) -> None:
        slots = self.state.inventory.slots
        assert g.slot_index is not None
        if 0 <= g.slot_index < len(slots):
            item = slots[g.slot_index].item_id
            if self.state.inventory.selected == item:
                self.state.inventory.deselect()
            else:
                self.state.inventory.select(item)
        else:
            self.state.inventory.deselect()

    def _on_dismiss(self, g: Gesture) -> None:
        self.state.dismiss_popup()
        if self.dialogue_session is not None and not self.state.popups:
            # Dialogue popups are re-pushed per node; dismissing a
            # terminal node's line closes the conversation.
            if self.dialogue_session.current_node.terminal:
                self.dialogue_session.choose(0)
            if not self.dialogue_session.active:
                self.dialogue_session = None

    def _on_avatar(self, g: Gesture) -> None:
        assert g.avatar_delta is not None
        ax, ay = self.state.avatar_xy
        nx = min(max(ax + g.avatar_delta[0], 0.0), float(self.frame_size.width - 1))
        ny = min(max(ay + g.avatar_delta[1], 0.0), float(self.frame_size.height - 1))
        self.state.avatar_xy = (nx, ny)
        self._check_approach(nx, ny)

    def _check_approach(self, x: float, y: float) -> None:
        """Fire the approach trigger for objects the avatar just entered.

        Fires once per object per scenario visit (leaving and re-entering
        the scenario re-arms it); invisible objects are not approachable.
        """
        for obj in self.current_scenario.objects:
            if obj.object_id in self.state.approached:
                continue
            if not self.state.object_visible(obj.object_id, obj.visible):
                continue
            if obj.hotspot.contains(x, y):
                self.state.approached.add(obj.object_id)
                self._fire(Trigger.APPROACH, obj.object_id, None)
                if self.state.finished:
                    return

    # ------------------------------------------------------------------
    # Dialogue
    # ------------------------------------------------------------------
    def _open_dialogue(self, dialogue_id: str) -> None:
        dlg = self.dialogues.get(dialogue_id)
        if dlg is None:
            raise EngineError(f"object references unknown dialogue {dialogue_id!r}")
        self.dialogue_session = DialogueSession(dlg)
        self._popup("dialogue", self.dialogue_session.current_node.line)
        self.bus.publish(
            "dialogue",
            {"dialogue_id": dialogue_id, "node": dlg.root},
            time=self.clock.now(),
        )

    def choose_dialogue(self, index: int) -> None:
        """Take a reply choice in the open conversation."""
        if self.dialogue_session is None:
            raise EngineError("no conversation is open")
        self.state.dismiss_popup()
        actions = self.dialogue_session.choose(index)
        if self.dialogue_session.active:
            self._popup("dialogue", self.dialogue_session.current_node.line)
            self.bus.publish(
                "dialogue",
                {
                    "dialogue_id": self.dialogue_session.dialogue.dialogue_id,
                    "node": self.dialogue_session.current_node.node_id,
                },
                time=self.clock.now(),
            )
        else:
            self.dialogue_session = None
        self._execute(actions, source="dialogue")

    # ------------------------------------------------------------------
    # Event firing / action execution
    # ------------------------------------------------------------------
    def fire(
        self,
        trigger: str,
        object_id: Optional[str] = None,
        item_id: Optional[str] = None,
    ) -> bool:
        """Public trigger injection for tools (validator, solver, tests).

        Matches and executes bindings exactly as an interpreted gesture
        would, bypassing gesture geometry.  Returns True if any binding
        fired.
        """
        return self._fire(trigger, object_id, item_id)

    def execute_actions(self, actions: Sequence[Action], source: str) -> None:
        """Public action execution for tools (solver dialogue replay)."""
        self._execute(actions, source)

    def _fire(self, trigger: str, object_id: Optional[str], item_id: Optional[str]) -> bool:
        """Match and execute bindings; returns True if any fired."""
        matched = self.events.match(
            self.state.current_scenario,
            trigger,
            object_id=object_id,
            item_id=item_id,
            ctx=self.state,
            exclude_ids=self.state.fired_once,
        )
        for binding in matched:
            if binding.once:
                self.state.fired_once.add(binding.binding_id)
            _M_BINDINGS_FIRED.inc(trigger=trigger)
            if _obs.enabled():
                _LOG.debug(
                    "binding.fired",
                    binding_id=binding.binding_id,
                    trigger=trigger,
                    object_id=object_id,
                    item_id=item_id,
                    scenario=self.state.current_scenario,
                )
            self.bus.publish(
                "binding",
                {"binding_id": binding.binding_id, "trigger": trigger},
                time=self.clock.now(),
            )
            self._execute(binding.actions, source=binding.binding_id)
            if self.state.finished:
                break
        return bool(matched)

    def _execute(self, actions: Sequence[Action], source: str) -> None:
        for action in actions:
            if self.state.finished:
                return
            self._execute_one(action, source)

    def _execute_one(self, action: Action, source: str) -> None:
        now = self.clock.now()
        _M_ACTIONS.inc(kind=action.kind)
        self.bus.publish("action", {"kind": action.kind, "source": source}, time=now)
        if isinstance(action, SwitchScenario):
            if action.target not in self.scenarios:
                raise EngineError(
                    f"binding {source!r} switches to unknown scenario "
                    f"{action.target!r}"
                )
            _M_TRANSITIONS.inc()
            if _obs.enabled():
                _LOG.info(
                    "scenario.switch",
                    src=self.state.current_scenario,
                    dst=action.target,
                    via=source,
                )
            self.state.switch_to(action.target)
            sc = self.scenarios[action.target]
            if self.player is not None:
                self.player.loop_segment = sc.loop
                self.player.play(sc.segment_ref)
            self.compositor.invalidate()
            self.bus.publish(
                "scenario", {"scenario_id": action.target, "via": source}, time=now
            )
            self._fire(Trigger.ENTER, object_id=None, item_id=None)
        elif isinstance(action, ShowText):
            self._popup("text", action.text)
        elif isinstance(action, PopupImage):
            self._popup("image", action.object_id)
        elif isinstance(action, OpenWeb):
            self.state.web_visits.append(action.url)
            self._popup("web", action.url)
            self.bus.publish("web", {"url": action.url}, time=now)
        elif isinstance(action, GiveItem):
            try:
                self.state.inventory.add(
                    action.item_id, name=self._item_names.get(action.item_id, action.item_id)
                )
            except InventoryError:
                self._popup("text", "The backpack is full.")
            else:
                self.bus.publish("item", {"item_id": action.item_id, "via": "give"}, time=now)
        elif isinstance(action, TakeItem):
            if self.state.inventory.has(action.item_id):
                self.state.inventory.remove(action.item_id)
                self.bus.publish("item", {"item_id": action.item_id, "via": "consume"}, time=now)
        elif isinstance(action, SetFlag):
            self.state.set_flag(action.name, action.value)
        elif isinstance(action, SetProperty):
            self.state.prop_overrides[(action.object_id, action.key)] = action.value
        elif isinstance(action, SetObjectVisible):
            self.state.visibility[action.object_id] = action.visible
            self.compositor.invalidate()
        elif isinstance(action, AwardBonus):
            record = self.rewards.award(self.state, action.points, action.reward_id, now)
            self.bus.publish(
                "reward",
                {
                    "points": record.points,
                    "reward_id": record.reward_id,
                    "repeated": record.repeated,
                },
                time=now,
            )
        elif isinstance(action, StartDialogue):
            self._open_dialogue(action.dialogue_id)
        elif isinstance(action, EndGame):
            self.state.end(action.outcome)
            if _obs.enabled():
                _LOG.info(
                    "game.end",
                    outcome=action.outcome,
                    score=self.state.score,
                    via=source,
                )
            self.bus.publish("end", {"outcome": action.outcome}, time=now)
        else:
            raise EngineError(f"engine cannot execute action kind {action.kind!r}")

    def _popup(self, kind: str, content: str) -> None:
        self.state.push_popup(kind, content, self.clock.now())
        self.bus.publish("popup", {"kind": kind, "content": content}, time=self.clock.now())

    # ------------------------------------------------------------------
    # Time and rendering
    # ------------------------------------------------------------------
    def tick(self, dt: float) -> None:
        """Advance simulated time: playback, timers, auto-advance."""
        if not self._started:
            raise EngineError("call start() before tick()")
        if self.state.finished:
            return
        _M_TICKS.inc()
        if isinstance(self.clock, SimulatedClock):
            self.clock.advance(dt)
        self.state.advance_time(dt)
        if self.player is not None:
            self.player.tick()
            if self.player.finished():
                sc = self.current_scenario
                if sc.on_finish is not None:
                    self._execute([SwitchScenario(target=sc.on_finish)], source="on_finish")
                    return
        # Timer bindings for the current scenario.
        for binding in self.events.timers_for(self.state.current_scenario):
            if binding.binding_id in self.state.fired_timers:
                continue
            if self.state.scenario_time >= binding.timer_seconds:
                self.state.fired_timers.add(binding.binding_id)
                if binding.once and binding.binding_id in self.state.fired_once:
                    continue
                if not binding.guard_passes(self.state):
                    continue
                if binding.once:
                    self.state.fired_once.add(binding.binding_id)
                _M_BINDINGS_FIRED.inc(trigger=Trigger.TIMER)
                self.bus.publish(
                    "binding",
                    {"binding_id": binding.binding_id, "trigger": Trigger.TIMER},
                    time=self.clock.now(),
                )
                self._execute(binding.actions, source=binding.binding_id)
                if self.state.finished:
                    return

    def render(self) -> Frame:
        """Composite the current output frame (video or blank base)."""
        if self.player is not None:
            base = self.player.current_frame()
        else:
            base = Frame.blank(self.frame_size, (12, 12, 16))
        return self.compositor.compose(base, self.current_scenario, self.state)
