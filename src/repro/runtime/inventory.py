"""The backpack and its inventory window (§3.1).

"Like ordinary adventure games, the players have a backpack to collect
items in game.  An inventory window is used for displaying what items the
player owned."

The model keeps insertion order (the window displays slots in acquisition
order), supports stacking of identical items, a capacity bound, and a
*selected* slot — selecting an item then clicking an object is the
"use item on object" gesture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["Inventory", "InventoryError", "InventorySlot"]


class InventoryError(ValueError):
    """Raised on invalid inventory operations."""


@dataclass(slots=True)
class InventorySlot:
    """One display slot: an item id, its stack count and display name."""

    item_id: str
    name: str
    count: int = 1
    is_reward: bool = False


class Inventory:
    """Ordered, stacking item container with a selection cursor.

    Parameters
    ----------
    capacity:
        Maximum number of *slots* (stacks), not items.  The paper's
        screenshots show a small fixed window; 12 is the default.
    """

    def __init__(self, capacity: int = 12) -> None:
        if capacity < 1:
            raise InventoryError("capacity must be >= 1")
        self.capacity = capacity
        self._slots: List[InventorySlot] = []
        self._selected: Optional[str] = None

    # ------------------------------------------------------------------
    def add(self, item_id: str, name: Optional[str] = None, is_reward: bool = False) -> None:
        """Add one unit of ``item_id``; stacks onto an existing slot.

        Raises :class:`InventoryError` when a new slot is needed but the
        window is full — the runtime surfaces this as feedback text.
        """
        if not item_id:
            raise InventoryError("item_id must be non-empty")
        for slot in self._slots:
            if slot.item_id == item_id:
                slot.count += 1
                return
        if len(self._slots) >= self.capacity:
            raise InventoryError("backpack is full")
        self._slots.append(
            InventorySlot(item_id=item_id, name=name or item_id, count=1, is_reward=is_reward)
        )

    def remove(self, item_id: str) -> None:
        """Remove one unit; drops the slot when the stack empties."""
        for i, slot in enumerate(self._slots):
            if slot.item_id == item_id:
                slot.count -= 1
                if slot.count <= 0:
                    self._slots.pop(i)
                    if self._selected == item_id:
                        self._selected = None
                return
        raise InventoryError(f"item {item_id!r} not in backpack")

    def has(self, item_id: str) -> bool:
        return any(s.item_id == item_id for s in self._slots)

    def count(self, item_id: str) -> int:
        for s in self._slots:
            if s.item_id == item_id:
                return s.count
        return 0

    @property
    def slots(self) -> List[InventorySlot]:
        """Display slots in acquisition order (copies not needed: the
        window renders read-only)."""
        return list(self._slots)

    @property
    def slot_count(self) -> int:
        return len(self._slots)

    @property
    def total_items(self) -> int:
        return sum(s.count for s in self._slots)

    @property
    def rewards(self) -> List[InventorySlot]:
        """Reward slots only — the achievement shelf (§3.3)."""
        return [s for s in self._slots if s.is_reward]

    # ------------------------------------------------------------------
    # Selection (the "use item on…" gesture's first half)
    # ------------------------------------------------------------------
    def select(self, item_id: str) -> None:
        """Select an owned item for a subsequent use-on-object click."""
        if not self.has(item_id):
            raise InventoryError(f"cannot select {item_id!r}: not owned")
        self._selected = item_id

    def deselect(self) -> None:
        self._selected = None

    @property
    def selected(self) -> Optional[str]:
        return self._selected

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "selected": self._selected,
            "slots": [
                {
                    "item_id": s.item_id,
                    "name": s.name,
                    "count": s.count,
                    "is_reward": s.is_reward,
                }
                for s in self._slots
            ],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Inventory":
        inv = cls(capacity=d.get("capacity", 12))
        for s in d.get("slots", []):
            inv._slots.append(
                InventorySlot(
                    item_id=s["item_id"],
                    name=s.get("name", s["item_id"]),
                    count=s.get("count", 1),
                    is_reward=s.get("is_reward", False),
                )
            )
        if len(inv._slots) > inv.capacity:
            raise InventoryError("saved inventory exceeds capacity")
        sel = d.get("selected")
        if sel is not None:
            inv.select(sel)
        return inv
