"""Frame compositor: video + mounted objects + runtime chrome.

§4.3/Fig. 2: the runtime shows the playing video with image objects
mounted on it (white backgrounds keyed out), an inventory window along
the bottom, buttons, and popup overlays.  The compositor produces that
final frame.

Hot-path discipline (DESIGN.md §6): composition happens once per emitted
video frame, so the object layers are *cached premultiplied* — each
visible object's RGB×alpha and (1-alpha) are computed once and reused
until the scenario's layout changes (``invalidate``).  Per frame the work
is one copy of the video frame plus one fused multiply-add per object
region, all in float32 views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graph import Scenario
from ..video.frame import Frame, clip_rect
from .inputs import UiLayout
from .state import GameState

__all__ = ["Compositor", "CompositorStats"]


@dataclass(slots=True)
class CompositorStats:
    """Counters for the E4 bench and cache-effectiveness tests."""

    frames_composited: int = 0
    layers_blended: int = 0
    cache_builds: int = 0


@dataclass(slots=True)
class _CachedLayer:
    """Premultiplied sprite of one object, clipped to the frame."""

    object_id: str
    x0: int
    y0: int
    src_premul: np.ndarray      # float32 (h, w, 3), already × alpha
    one_minus_alpha: np.ndarray  # float32 (h, w, 1)


class Compositor:
    """Composites the runtime's output frame.

    Parameters
    ----------
    layout:
        UI geometry (inventory window placement).
    inv_bg / inv_border:
        Inventory window colours.
    """

    def __init__(
        self,
        layout: UiLayout,
        inv_bg: Tuple[int, int, int] = (32, 32, 40),
        inv_border: Tuple[int, int, int] = (90, 90, 110),
    ) -> None:
        self.layout = layout
        self.inv_bg = inv_bg
        self.inv_border = inv_border
        self.stats = CompositorStats()
        self._cache_key: Optional[tuple] = None
        self._layers: List[_CachedLayer] = []

    # ------------------------------------------------------------------
    # Layer cache
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the cached object layers (layout changed)."""
        self._cache_key = None
        self._layers = []

    def _layout_key(self, scenario: Scenario, state: GameState) -> tuple:
        """Cache key: object identities, positions and visibility."""
        parts = []
        for obj in scenario.objects:
            x0, y0, x1, y1 = obj.hotspot.bounding_box()
            parts.append(
                (
                    obj.object_id,
                    round(x0, 1),
                    round(y0, 1),
                    state.object_visible(obj.object_id, obj.visible),
                )
            )
        return (scenario.scenario_id, tuple(parts))

    def _build_layers(self, scenario: Scenario, state: GameState) -> None:
        self._layers = []
        fw, fh = self.layout.frame_w, self.layout.frame_h
        for obj in scenario.objects:  # ascending z: paint order
            if not state.object_visible(obj.object_id, obj.visible):
                continue
            render = getattr(obj, "render_sprite", None)
            if render is None:
                continue
            rgb, alpha = render()
            bx0, by0, _, _ = obj.hotspot.bounding_box()
            x, y = int(bx0), int(by0)
            sh, sw = rgb.shape[:2]
            from ..video.frame import FrameSize  # local to avoid cycle at import

            x0, y0, x1, y1 = clip_rect(x, y, sw, sh, FrameSize(fw, fh))
            if x1 <= x0 or y1 <= y0:
                continue
            sub_rgb = rgb[y0 - y : y1 - y, x0 - x : x1 - x].astype(np.float32)
            sub_a = alpha[y0 - y : y1 - y, x0 - x : x1 - x].astype(np.float32)[..., None]
            self._layers.append(
                _CachedLayer(
                    object_id=obj.object_id,
                    x0=x0,
                    y0=y0,
                    src_premul=sub_rgb * sub_a,
                    one_minus_alpha=1.0 - sub_a,
                )
            )
        self.stats.cache_builds += 1

    # ------------------------------------------------------------------
    def compose(
        self,
        video_frame: Frame,
        scenario: Scenario,
        state: GameState,
    ) -> Frame:
        """Produce the output frame for the current moment.

        Order: video → object layers (ascending z) → avatar marker →
        inventory window → popup overlays (top popup last).
        """
        if video_frame.width != self.layout.frame_w or video_frame.height != self.layout.frame_h:
            raise ValueError(
                f"video frame {video_frame.size} does not match layout "
                f"{self.layout.frame_w}x{self.layout.frame_h}"
            )
        key = self._layout_key(scenario, state)
        if key != self._cache_key:
            self._build_layers(scenario, state)
            self._cache_key = key

        out = video_frame.copy()
        for layer in self._layers:
            h, w = layer.src_premul.shape[:2]
            region = out.data[layer.y0 : layer.y0 + h, layer.x0 : layer.x0 + w]
            blended = layer.src_premul + region.astype(np.float32) * layer.one_minus_alpha
            region[...] = blended.astype(np.uint8)
            self.stats.layers_blended += 1

        self._draw_avatar(out, state)
        self._draw_inventory(out, state)
        self._draw_popups(out, state)
        self.stats.frames_composited += 1
        return out

    # ------------------------------------------------------------------
    # Chrome
    # ------------------------------------------------------------------
    def _draw_avatar(self, out: Frame, state: GameState) -> None:
        ax, ay = state.avatar_xy
        if ax == 0.0 and ay == 0.0:
            return  # avatar not placed yet
        out.draw_disc(int(ax), int(ay), 4, (250, 220, 60))
        out.draw_disc(int(ax), int(ay), 2, (120, 80, 20))

    def _draw_inventory(self, out: Frame, state: GameState) -> None:
        lo = self.layout
        out.fill_rect(lo.inv_x, lo.inv_y, lo.inv_w, lo.inv_h, self.inv_bg)
        out.draw_border(lo.inv_x, lo.inv_y, lo.inv_w, lo.inv_h, self.inv_border)
        for i, slot in enumerate(state.inventory.slots):
            sx = lo.inv_x + i * lo.slot_w
            if sx + lo.slot_w > lo.inv_x + lo.inv_w:
                break
            pad = 3
            color = (210, 170, 60) if slot.is_reward else (150, 170, 200)
            if state.inventory.selected == slot.item_id:
                out.draw_border(sx + 1, lo.inv_y + 1, lo.slot_w - 2, lo.inv_h - 2, (255, 255, 255), 1)
            out.fill_rect(
                sx + pad,
                lo.inv_y + pad,
                lo.slot_w - 2 * pad,
                lo.inv_h - 2 * pad,
                color,
            )
            # Stack count pips along the slot's bottom edge.
            for k in range(min(slot.count, 5)):
                out.fill_rect(sx + pad + 3 * k, lo.inv_y + lo.inv_h - pad - 2, 2, 2, (20, 20, 20))

    def _draw_popups(self, out: Frame, state: GameState) -> None:
        if not state.popups:
            return
        lo = self.layout
        # Dim the scene under the modal stack (vectorised halving).
        scene = out.data[: lo.inv_y, :, :]
        scene[...] = scene // 2
        top = state.popups[-1]
        pw = int(lo.frame_w * 0.7)
        ph = max(24, int(lo.frame_h * 0.3))
        px = (lo.frame_w - pw) // 2
        py = (lo.inv_y - ph) // 2
        bg = {
            "text": (245, 240, 220),
            "image": (230, 230, 245),
            "web": (215, 235, 215),
            "dialogue": (240, 225, 235),
        }[top.kind]
        out.fill_rect(px, py, pw, ph, bg)
        out.draw_border(px, py, pw, ph, (40, 40, 40), 2)
