"""Game state: everything that changes while a student plays.

The state is the single mutable record a play session owns: current
scenario, flags, score, visited scenarios, the backpack, per-session
object-property overrides, fired once-bindings, popup stack and outcome.
It implements the :class:`~repro.events.conditions.ConditionContext`
protocol so authored guards evaluate directly against it.

Save/load round-trips through plain dicts (JSON-safe), giving the
platform the "continue where you left off" behaviour course delivery
needs; property-based tests assert ``load(save(s)) == s`` observationally.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from .inventory import Inventory

__all__ = ["GameOutcome", "GameState", "PopupRecord", "StateError"]


class StateError(ValueError):
    """Raised on invalid state transitions."""


class GameOutcome:
    """Terminal outcomes; ``None`` on the state means still playing."""

    WON = "won"
    LOST = "lost"
    QUIT = "quit"


class PopupRecord:
    """One popup overlay (text/image/web) currently displayed.

    Popups stack; the runtime dismisses the top one on the next click
    (standard adventure-game modality).
    """

    __slots__ = ("kind", "content", "shown_at")

    def __init__(self, kind: str, content: str, shown_at: float) -> None:
        if kind not in ("text", "image", "web", "dialogue"):
            raise StateError(f"unknown popup kind {kind!r}")
        self.kind = kind
        self.content = content
        self.shown_at = shown_at

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "content": self.content, "shown_at": self.shown_at}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "PopupRecord":
        return cls(d["kind"], d["content"], d.get("shown_at", 0.0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PopupRecord):
            return NotImplemented
        return (self.kind, self.content) == (other.kind, other.content)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PopupRecord({self.kind!r}, {self.content!r})"


class GameState:
    """Mutable play-session state; implements ``ConditionContext``."""

    def __init__(self, start_scenario: str, inventory_capacity: int = 12) -> None:
        if not start_scenario:
            raise StateError("start_scenario required")
        self.current_scenario = start_scenario
        self.flags: Dict[str, bool] = {}
        self.score = 0
        self.visited: Set[str] = {start_scenario}
        self.inventory = Inventory(capacity=inventory_capacity)
        #: per-session object property overrides: (object_id, key) -> value
        self.prop_overrides: Dict[Tuple[str, str], Any] = {}
        #: authored base properties, injected by the engine at start
        self.base_props: Dict[Tuple[str, str], Any] = {}
        #: ids of once-bindings that already fired
        self.fired_once: Set[str] = set()
        #: per-session visibility overrides (reveal/hide actions)
        self.visibility: Dict[str, bool] = {}
        self.popups: List[PopupRecord] = []
        self.outcome: Optional[str] = None
        #: seconds of play time accumulated (simulated clock)
        self.play_time = 0.0
        #: scenario dwell clock, reset on every switch (drives timers)
        self.scenario_time = 0.0
        #: timer bindings already fired for the current scenario visit
        self.fired_timers: Set[str] = set()
        #: URLs surfaced by OpenWeb actions, in order
        self.web_visits: List[str] = []
        #: avatar position on the frame (the player can "manipulate the
        #: avatar in a game scenario", §4.3)
        self.avatar_xy: Tuple[float, float] = (0.0, 0.0)
        #: objects the avatar has approached this scenario visit (the
        #: approach trigger fires once per entry, re-arming on re-entry)
        self.approached: Set[str] = set()

    # ------------------------------------------------------------------
    # ConditionContext protocol
    # ------------------------------------------------------------------
    def has_item(self, item_id: str) -> bool:
        return self.inventory.has(item_id)

    def item_count(self, item_id: str) -> int:
        return self.inventory.count(item_id)

    def get_flag(self, name: str) -> bool:
        return self.flags.get(name, False)

    def has_visited(self, scenario_id: str) -> bool:
        return scenario_id in self.visited

    def get_score(self) -> int:
        return self.score

    def get_prop(self, object_id: str, key: str) -> Any:
        k = (object_id, key)
        if k in self.prop_overrides:
            return self.prop_overrides[k]
        if k in self.base_props:
            return self.base_props[k]
        return False  # absent properties read as false, never raise mid-game

    # ------------------------------------------------------------------
    # Mutations (engine-driven)
    # ------------------------------------------------------------------
    def set_flag(self, name: str, value: bool) -> None:
        if not name:
            raise StateError("flag name must be non-empty")
        self.flags[name] = bool(value)

    def add_score(self, points: int) -> None:
        if points < 0:
            raise StateError("score increments must be non-negative")
        self.score += points

    def switch_to(self, scenario_id: str) -> None:
        """Move to another scenario, resetting the dwell clock/timers."""
        if self.outcome is not None:
            raise StateError("game already ended")
        self.current_scenario = scenario_id
        self.visited.add(scenario_id)
        self.scenario_time = 0.0
        self.fired_timers = set()
        self.approached = set()

    def push_popup(self, kind: str, content: str, at: float) -> None:
        self.popups.append(PopupRecord(kind, content, at))

    def dismiss_popup(self) -> Optional[PopupRecord]:
        """Dismiss the top popup, if any."""
        return self.popups.pop() if self.popups else None

    @property
    def modal_active(self) -> bool:
        """True while a popup is consuming clicks."""
        return bool(self.popups)

    def end(self, outcome: str) -> None:
        if self.outcome is not None:
            raise StateError("game already ended")
        self.outcome = outcome

    @property
    def finished(self) -> bool:
        return self.outcome is not None

    def advance_time(self, dt: float) -> None:
        if dt < 0:
            raise StateError("time cannot go backwards")
        self.play_time += dt
        self.scenario_time += dt

    def object_visible(self, object_id: str, default: bool) -> bool:
        """Effective visibility respecting per-session overrides."""
        return self.visibility.get(object_id, default)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "current_scenario": self.current_scenario,
            "flags": dict(self.flags),
            "score": self.score,
            "visited": sorted(self.visited),
            "inventory": self.inventory.to_dict(),
            "prop_overrides": [
                {"object_id": o, "key": k, "value": v}
                for (o, k), v in sorted(self.prop_overrides.items())
            ],
            "base_props": [
                {"object_id": o, "key": k, "value": v}
                for (o, k), v in sorted(self.base_props.items())
            ],
            "fired_once": sorted(self.fired_once),
            "visibility": dict(self.visibility),
            "popups": [p.to_dict() for p in self.popups],
            "outcome": self.outcome,
            "play_time": self.play_time,
            "scenario_time": self.scenario_time,
            "fired_timers": sorted(self.fired_timers),
            "web_visits": list(self.web_visits),
            "avatar_xy": list(self.avatar_xy),
            "approached": sorted(self.approached),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "GameState":
        st = cls(start_scenario=d["current_scenario"])
        st.flags = dict(d.get("flags", {}))
        st.score = int(d.get("score", 0))
        st.visited = set(d.get("visited", [st.current_scenario]))
        st.inventory = Inventory.from_dict(d.get("inventory", {"capacity": 12}))
        st.prop_overrides = {
            (p["object_id"], p["key"]): p["value"]
            for p in d.get("prop_overrides", [])
        }
        st.base_props = {
            (p["object_id"], p["key"]): p["value"]
            for p in d.get("base_props", [])
        }
        st.fired_once = set(d.get("fired_once", []))
        st.visibility = dict(d.get("visibility", {}))
        st.popups = [PopupRecord.from_dict(p) for p in d.get("popups", [])]
        st.outcome = d.get("outcome")
        st.play_time = float(d.get("play_time", 0.0))
        st.scenario_time = float(d.get("scenario_time", 0.0))
        st.fired_timers = set(d.get("fired_timers", []))
        st.web_visits = list(d.get("web_visits", []))
        xy = d.get("avatar_xy", [0.0, 0.0])
        st.avatar_xy = (float(xy[0]), float(xy[1]))
        st.approached = set(d.get("approached", []))
        return st
