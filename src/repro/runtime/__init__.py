"""The gaming platform runtime: engine, state, inventory, dialogue,
rewards, input gestures, the frame compositor and session recording."""

from .compositor import Compositor, CompositorStats
from .hints import Hint, HintAdvisor, HintError
from .saves import AUTOSAVE_SLOT, AutosavePolicy, SaveError, SaveManager, SlotInfo
from .dialogue import (
    Dialogue,
    DialogueChoice,
    DialogueError,
    DialogueNode,
    DialogueSession,
)
from .engine import EngineError, GameEngine
from .inputs import (
    Gesture,
    GestureKind,
    InputError,
    KeyPress,
    MouseClick,
    MouseDrag,
    UiLayout,
    interpret,
)
from .inventory import Inventory, InventoryError, InventorySlot
from .replay import InputRecorder, Recording, ReplayMismatch, replay
from .rewards import GrantRecord, RewardManager
from .session import SessionError, SessionLog, SessionRecorder
from .state import GameOutcome, GameState, PopupRecord, StateError

__all__ = [
    "AUTOSAVE_SLOT",
    "AutosavePolicy",
    "Compositor",
    "Hint",
    "HintAdvisor",
    "HintError",
    "SaveError",
    "SaveManager",
    "SlotInfo",
    "CompositorStats",
    "Dialogue",
    "DialogueChoice",
    "DialogueError",
    "DialogueNode",
    "DialogueSession",
    "EngineError",
    "GameEngine",
    "GameOutcome",
    "GameState",
    "Gesture",
    "GestureKind",
    "GrantRecord",
    "InputError",
    "InputRecorder",
    "Inventory",
    "InventoryError",
    "InventorySlot",
    "Recording",
    "ReplayMismatch",
    "replay",
    "KeyPress",
    "MouseClick",
    "MouseDrag",
    "PopupRecord",
    "RewardManager",
    "SessionError",
    "SessionLog",
    "SessionRecorder",
    "StateError",
    "UiLayout",
    "interpret",
]
