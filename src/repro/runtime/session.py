"""Play-session recording: the raw material of learning analytics.

"Students can obtain knowledge from the process of making decision and
interaction" (§3.2) — to *measure* that (experiment E6) every observable
event of a play session is recorded.  The recorder subscribes to the
engine's bus and accumulates an ordered log plus cheap running
aggregates; :mod:`repro.learning.analytics` turns logs into engagement
and knowledge-gain metrics.

Failure accounting: the bus quarantines subscribers that keep raising,
which protects the engine loop but used to lose the failure silently.
The recorder now wraps its aggregation step so any internal error is
counted on ``repro_session_errors_total`` and re-raised as
:class:`SessionError` — observable both to the bus (which may still
quarantine) and to the metrics layer (which never forgets it happened).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..events.bus import EventBus, Notice
from ..obs import logging as _obslog
from ..obs import metrics as _obs

__all__ = ["SessionError", "SessionLog", "SessionRecorder"]

_M_STARTED = _obs.counter(
    "repro_session_started_total",
    "Session recorders attached to an engine bus",
)
_M_FINISHED = _obs.counter(
    "repro_session_finished_total",
    "Session recorders finished, by game outcome",
)
_M_ACTIVE = _obs.gauge(
    "repro_session_active",
    "Recorders currently attached and collecting",
)
_M_NOTICES = _obs.counter(
    "repro_session_notices_total",
    "Bus notices recorded across all sessions",
)
_M_ERRORS = _obs.counter(
    "repro_session_errors_total",
    "Recorder failures while aggregating a notice (would otherwise be "
    "swallowed by bus quarantine)",
)


_LOG = _obslog.get_logger("session")


class SessionError(RuntimeError):
    """Raised when the recorder fails to aggregate a notice."""


@dataclass(slots=True)
class SessionLog:
    """The finished record of one play session."""

    player_id: str
    notices: List[Notice] = field(default_factory=list)
    #: counts by topic ("interaction", "action", "scenario", ...)
    topic_counts: Counter = field(default_factory=Counter)
    #: counts of interaction gesture kinds
    gesture_counts: Counter = field(default_factory=Counter)
    duration: float = 0.0
    outcome: Optional[str] = None
    final_score: int = 0
    scenarios_visited: int = 0
    web_visits: int = 0

    @property
    def interaction_count(self) -> int:
        return self.topic_counts.get("interaction", 0)

    @property
    def interactions_per_minute(self) -> float:
        if self.duration <= 0:
            return 0.0
        return 60.0 * self.interaction_count / self.duration

    def events_of(self, topic: str) -> List[Notice]:
        """All notices on one topic, in order."""
        return [n for n in self.notices if n.topic == topic]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "player_id": self.player_id,
            "duration": self.duration,
            "outcome": self.outcome,
            "final_score": self.final_score,
            "scenarios_visited": self.scenarios_visited,
            "web_visits": self.web_visits,
            "topic_counts": dict(self.topic_counts),
            "gesture_counts": dict(self.gesture_counts),
            "notice_count": len(self.notices),
        }


class SessionRecorder:
    """Subscribes to an engine bus and builds a :class:`SessionLog`.

    Parameters
    ----------
    bus:
        The engine's event bus.
    player_id:
        Identifier stamped on the resulting log.
    keep_notices:
        When False only aggregates are kept (long cohort simulations
        drop the raw log to bound memory).
    """

    def __init__(self, bus: EventBus, player_id: str, keep_notices: bool = True) -> None:
        self.log = SessionLog(player_id=player_id)
        self.keep_notices = keep_notices
        self._token = bus.subscribe("*", self._on_notice)
        self._bus = bus
        self._closed = False
        #: aggregation failures observed by this recorder
        self.error_count = 0
        _M_STARTED.inc()
        _M_ACTIVE.inc()

    def _on_notice(self, notice: Notice) -> None:
        try:
            if self.keep_notices:
                self.log.notices.append(notice)
            self.log.topic_counts[notice.topic] += 1
            if notice.topic == "interaction":
                self.log.gesture_counts[notice.payload.get("gesture", "?")] += 1
            elif notice.topic == "web":
                self.log.web_visits += 1
        except Exception as exc:
            # Count the loss before the bus's quarantine can hide it.
            self.error_count += 1
            _M_ERRORS.inc()
            if _obs.enabled():
                _LOG.error(
                    "recorder.error",
                    player_id=self.log.player_id,
                    topic=notice.topic,
                    error=f"{type(exc).__name__}: {exc}",
                )
            raise SessionError(
                f"recorder for {self.log.player_id!r} failed on topic "
                f"{notice.topic!r}: {exc}"
            ) from exc
        _M_NOTICES.inc()

    def finish(
        self,
        duration: float,
        outcome: Optional[str],
        final_score: int,
        scenarios_visited: int,
    ) -> SessionLog:
        """Stamp final figures, unsubscribe, and return the log."""
        if self._closed:
            return self.log
        self.log.duration = duration
        self.log.outcome = outcome
        self.log.final_score = final_score
        self.log.scenarios_visited = scenarios_visited
        self._bus.unsubscribe(self._token)
        self._closed = True
        _M_FINISHED.inc(outcome=str(outcome))
        _M_ACTIVE.dec()
        if _obs.enabled():
            _LOG.info(
                "recorder.finish",
                player_id=self.log.player_id,
                outcome=str(outcome),
                duration_s=duration,
                notices=len(self.log.notices),
                errors=self.error_count,
            )
        return self.log
