"""Scenario graph: branching structure derived from authored events.

The paper's interactive video "changes the play sequence" when objects
are triggered — i.e. the game is a directed graph whose nodes are
scenarios and whose edges are the ``SwitchScenario`` actions (plus
``on_finish`` auto-advances).  The graph is *derived*, never authored
directly: the scenario editor shows it as feedback, and the validator
uses it to prove structural properties before a game ships.

Built on :mod:`networkx` for the graph algorithms; every edge carries the
binding id / trigger that creates it, so diagnostics can point the author
to the exact event to fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

import networkx as nx

from ..events import EventTable, SwitchScenario
from .scenario import Scenario

__all__ = ["EdgeInfo", "GraphError", "ScenarioGraph", "build_graph"]


class GraphError(ValueError):
    """Raised on structurally invalid scenario collections."""


@dataclass(frozen=True, slots=True)
class EdgeInfo:
    """Provenance of one graph edge."""

    source: str
    target: str
    binding_id: str          #: "" for on_finish auto-advances
    trigger: str             #: trigger kind, or "on_finish"
    conditional: bool        #: True if the binding carries a guard


class ScenarioGraph:
    """Directed multigraph over scenarios with analysis helpers."""

    def __init__(
        self,
        scenarios: Dict[str, Scenario],
        start: str,
        edges: Sequence[EdgeInfo],
    ) -> None:
        if start not in scenarios:
            raise GraphError(f"start scenario {start!r} is not defined")
        self.scenarios = dict(scenarios)
        self.start = start
        self.edges = list(edges)
        self._g = nx.MultiDiGraph()
        self._g.add_nodes_from(scenarios)
        for e in edges:
            if e.source not in scenarios:
                raise GraphError(f"edge from unknown scenario {e.source!r}")
            if e.target not in scenarios:
                raise GraphError(
                    f"edge targets unknown scenario {e.target!r} "
                    f"(binding {e.binding_id!r})"
                )
            self._g.add_edge(e.source, e.target, info=e)

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return self._g.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self._g.number_of_edges()

    def successors(self, scenario_id: str) -> List[str]:
        """Distinct scenarios reachable in one transition (sorted)."""
        if scenario_id not in self._g:
            raise GraphError(f"unknown scenario {scenario_id!r}")
        return sorted(set(self._g.successors(scenario_id)))

    def out_edges(self, scenario_id: str) -> List[EdgeInfo]:
        """EdgeInfo records leaving a scenario."""
        if scenario_id not in self._g:
            raise GraphError(f"unknown scenario {scenario_id!r}")
        return [d["info"] for _, _, d in self._g.out_edges(scenario_id, data=True)]

    def reachable(self) -> Set[str]:
        """Scenarios reachable from the start (start included)."""
        return set(nx.descendants(self._g, self.start)) | {self.start}

    def unreachable(self) -> Set[str]:
        """Authored scenarios the player can never see."""
        return set(self.scenarios) - self.reachable()

    def dead_ends(self) -> Set[str]:
        """Reachable scenarios with no way out.

        A dead end is only a defect if the game cannot end there; the
        validator cross-references ``EndGame`` actions before flagging.
        """
        return {
            s for s in self.reachable() if self._g.out_degree(s) == 0
        }

    def shortest_path(self, target: str) -> Optional[List[str]]:
        """Fewest-transitions path start → target, or None."""
        if target not in self._g:
            raise GraphError(f"unknown scenario {target!r}")
        try:
            return nx.shortest_path(self._g, self.start, target)
        except nx.NetworkXNoPath:
            return None

    def eccentricity_from_start(self) -> Dict[str, int]:
        """Transition distance from start to every reachable scenario."""
        return dict(nx.single_source_shortest_path_length(self._g, self.start))

    def branching_factor(self) -> float:
        """Mean distinct out-degree over reachable scenarios.

        The paper's adventure-game structure implies factor > 1 at
        decision points; linear video has factor exactly 1 (E6 contrast).
        """
        reach = self.reachable()
        if not reach:
            return 0.0
        return sum(len(set(self._g.successors(s))) for s in reach) / len(reach)

    def cycles(self) -> List[List[str]]:
        """Simple cycles (players revisiting places is expected; the
        validator only warns on cycles with no conditional exit)."""
        return [list(c) for c in nx.simple_cycles(nx.DiGraph(self._g))]

    def to_dot(self) -> str:
        """GraphViz dot text (editor's graph pane / documentation)."""
        lines = ["digraph scenario_graph {"]
        for sid, sc in sorted(self.scenarios.items()):
            shape = "doublecircle" if sid == self.start else "box"
            lines.append(f'  "{sid}" [label="{sc.title}", shape={shape}];')
        for e in self.edges:
            style = "dashed" if e.conditional else "solid"
            label = e.trigger
            lines.append(
                f'  "{e.source}" -> "{e.target}" [label="{label}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)


def build_graph(
    scenarios: Dict[str, Scenario],
    events: EventTable,
    start: str,
) -> ScenarioGraph:
    """Derive the scenario graph from scenarios + event table.

    Every ``SwitchScenario`` action contributes an edge from the binding's
    scenario (global bindings contribute from *every* scenario, which is
    what a global "menu" button means structurally); ``on_finish``
    auto-advances contribute unconditional edges.
    """
    edges: List[EdgeInfo] = []
    for binding in events:
        targets = [
            a.target for a in binding.actions if isinstance(a, SwitchScenario)
        ]
        if not targets:
            continue
        if binding.scenario_id == "*":
            sources: Iterable[str] = scenarios.keys()
        else:
            if binding.scenario_id not in scenarios:
                raise GraphError(
                    f"binding {binding.binding_id!r} references unknown "
                    f"scenario {binding.scenario_id!r}"
                )
            sources = (binding.scenario_id,)
        for src in sources:
            for tgt in targets:
                edges.append(
                    EdgeInfo(
                        source=src,
                        target=tgt,
                        binding_id=binding.binding_id,
                        trigger=binding.trigger,
                        conditional=bool(binding.condition.strip()),
                    )
                )
    for sc in scenarios.values():
        if sc.on_finish is not None:
            edges.append(
                EdgeInfo(
                    source=sc.scenario_id,
                    target=sc.on_finish,
                    binding_id="",
                    trigger="on_finish",
                    conditional=False,
                )
            )
    return ScenarioGraph(scenarios, start, edges)
