"""Scenario model and the derived branching graph with analyses."""

from .graph import EdgeInfo, GraphError, ScenarioGraph, build_graph
from .scenario import Scenario, ScenarioError

__all__ = [
    "EdgeInfo",
    "GraphError",
    "Scenario",
    "ScenarioError",
    "ScenarioGraph",
    "build_graph",
]
