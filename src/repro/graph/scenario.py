"""Scenario: one unit of interactive video plus its mounted objects.

§2.1: "Each scenario is considered as a series of continuous shots with
the same place or characters" and, in the platform, "video segments are
the basic unit used for presenting scenarios".

A :class:`Scenario` binds

* an id and a human title,
* a video segment reference (segment index in the project's container),
* the interactive objects mounted on it (z-ordered), and
* presentation metadata (looping, dwell hints).

Scenarios do not know about transitions; those are authored as
``SwitchScenario`` actions in the event table, and the scenario *graph*
(:mod:`repro.graph.graph`) is derived from the pair (scenarios, events).
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterator, List, Optional

from ..objects import InteractiveObject, object_from_dict

__all__ = ["Scenario", "ScenarioError"]

_ID_RE = re.compile(r"^[a-z0-9][a-z0-9_\-]*$")


class ScenarioError(ValueError):
    """Raised on invalid scenario definitions."""


class Scenario:
    """One interactive-video scenario.

    Parameters
    ----------
    scenario_id:
        Stable lowercase-slug id used by transitions and events.
    title:
        Editor/player-visible name ("Classroom").
    segment_ref:
        Index of the scenario's video segment in the project container.
    loop:
        Whether the segment loops while the player explores (default) or
        plays once (cut-scenes).
    on_finish:
        Optional scenario id to auto-advance to when a non-looping
        segment finishes (cut-scene chains).
    """

    def __init__(
        self,
        scenario_id: str,
        title: str,
        segment_ref: int,
        loop: bool = True,
        on_finish: Optional[str] = None,
    ) -> None:
        if not _ID_RE.match(scenario_id):
            raise ScenarioError(
                f"scenario id {scenario_id!r} must be a lowercase slug"
            )
        if not title:
            raise ScenarioError("scenario title must be non-empty")
        if segment_ref < 0:
            raise ScenarioError("segment_ref must be >= 0")
        if not loop and on_finish is None:
            # Non-looping scenario with nowhere to go would freeze playback.
            raise ScenarioError(
                f"non-looping scenario {scenario_id!r} requires on_finish"
            )
        self.scenario_id = scenario_id
        self.title = title
        self.segment_ref = segment_ref
        self.loop = loop
        self.on_finish = on_finish
        self._objects: Dict[str, InteractiveObject] = {}

    # ------------------------------------------------------------------
    # Object management (the object editor's mount surface)
    # ------------------------------------------------------------------
    def add_object(self, obj: InteractiveObject) -> str:
        """Mount an object; ids must be unique within the scenario."""
        if obj.object_id in self._objects:
            raise ScenarioError(
                f"object id {obj.object_id!r} already mounted on "
                f"{self.scenario_id!r}"
            )
        self._objects[obj.object_id] = obj
        return obj.object_id

    def remove_object(self, object_id: str) -> InteractiveObject:
        """Unmount and return an object."""
        try:
            return self._objects.pop(object_id)
        except KeyError:
            raise ScenarioError(
                f"no object {object_id!r} on scenario {self.scenario_id!r}"
            ) from None

    def get_object(self, object_id: str) -> InteractiveObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise ScenarioError(
                f"no object {object_id!r} on scenario {self.scenario_id!r}"
            ) from None

    def has_object(self, object_id: str) -> bool:
        return object_id in self._objects

    @property
    def objects(self) -> List[InteractiveObject]:
        """Mounted objects in ascending z-order (stable for equal z)."""
        return sorted(self._objects.values(), key=lambda o: o.z_order)

    @property
    def object_ids(self) -> List[str]:
        return [o.object_id for o in self.objects]

    def __iter__(self) -> Iterator[InteractiveObject]:
        return iter(self.objects)

    def __len__(self) -> int:
        return len(self._objects)

    def object_at(self, x: float, y: float) -> Optional[InteractiveObject]:
        """Topmost visible object whose hotspot contains (x, y).

        This is the runtime's hit-test: descending z-order, first hit
        wins — exactly the painter's-order inverse.
        """
        for obj in sorted(
            self._objects.values(), key=lambda o: o.z_order, reverse=True
        ):
            if obj.hit(x, y):
                return obj
        return None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario_id": self.scenario_id,
            "title": self.title,
            "segment_ref": self.segment_ref,
            "loop": self.loop,
            "on_finish": self.on_finish,
            "objects": [o.to_dict() for o in self.objects],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Scenario":
        sc = cls(
            scenario_id=d["scenario_id"],
            title=d["title"],
            segment_ref=d["segment_ref"],
            loop=d.get("loop", True),
            on_finish=d.get("on_finish"),
        )
        for od in d.get("objects", []):
            sc.add_object(object_from_dict(od))
        return sc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Scenario {self.scenario_id!r} seg={self.segment_ref} "
            f"objects={len(self._objects)}>"
        )
