"""Command-line interface: the platform without writing Python.

Subcommands::

    python -m repro demo                      # author + solve + play + Fig. 2
    python -m repro validate <project_dir>    # authoring-time checks
    python -m repro solve <project_dir>       # auto-generated walkthrough
    python -m repro figures <project_dir> DIR # Fig. 1 text + storyboard PPM
    python -m repro compare                   # mini-E6 cohort comparison
    python -m repro obs export                # metrics snapshot (Prometheus)

``validate`` exits non-zero when the project has errors, so it slots
into a course-content CI pipeline unchanged.  ``obs`` runs a small
instrumented workload (engine + streaming + cache + parallel encode) by
default so a fresh process still exports a representative snapshot;
``--no-demo`` exports whatever the current process has collected.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interactive Video Game-Based Learning platform "
        "(Chang, Hsu & Shih, ICPPW 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="author the classroom example, prove it, play it")

    p_validate = sub.add_parser("validate", help="validate a saved project")
    p_validate.add_argument("project_dir", type=Path)
    p_validate.add_argument(
        "--no-solver", action="store_true",
        help="skip the winnability proof (structural checks only)",
    )

    p_solve = sub.add_parser("solve", help="print the shortest walkthrough")
    p_solve.add_argument("project_dir", type=Path)
    p_solve.add_argument("--max-states", type=int, default=20000)

    p_fig = sub.add_parser("figures", help="render Fig. 1 and a storyboard")
    p_fig.add_argument("project_dir", type=Path)
    p_fig.add_argument("out_dir", type=Path)

    p_cmp = sub.add_parser("compare", help="run a small platform comparison")
    p_cmp.add_argument("--students", type=int, default=20)
    p_cmp.add_argument("--seed", type=int, default=2007)

    p_obs = sub.add_parser(
        "obs", help="observability: dump, reset or export the metrics registry"
    )
    p_obs.add_argument("action", choices=("dump", "reset", "export"))
    p_obs.add_argument(
        "--format", dest="fmt", choices=("prometheus", "table", "json"),
        default="prometheus",
        help="export format (default: prometheus; dump defaults to table)",
    )
    p_obs.add_argument("--output", "-o", type=Path, default=None,
                       help="write to a file instead of stdout")
    p_obs.add_argument(
        "--no-demo", action="store_true",
        help="skip the built-in instrumented workload; export the "
             "process's current registry as-is",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations (imports deferred: fast --help)
# ----------------------------------------------------------------------

def _cmd_demo() -> int:
    from .core import fetch_quest_game, solve
    from .reporting import render_runtime_screenshot

    wizard = fetch_quest_game(n_quests=2, title="Demo: Fetch Quest")
    report = wizard.check()
    print(f"validated: errors={len(report.errors)} warnings={len(report.warnings)} "
          f"winnable={report.winnable}")
    game = wizard.build()
    result = solve(game)
    print("walkthrough:")
    for i, move in enumerate(result.winning_script, 1):
        print(f"  {i}. {move.describe()}")
    engine = game.new_engine()
    engine.start()
    from .core.solver import _apply

    for move in result.winning_script:
        _apply(engine, move)
    print(f"outcome: {engine.state.outcome}, score: {engine.state.score}")
    print()
    print(render_runtime_screenshot(engine))
    return 0


def _cmd_validate(project_dir: Path, no_solver: bool) -> int:
    from .core import load_project, validate

    project = load_project(project_dir)
    report = validate(project, check_winnable=not no_solver)
    for issue in report.issues:
        print(issue)
    if report.winnable is not None:
        print(f"winnable: {report.winnable}"
              + (f" (shortest solution: {report.solution_length} moves)"
                 if report.winnable else ""))
    print(f"{len(report.errors)} errors, {len(report.warnings)} warnings")
    return 0 if report.ok else 1


def _cmd_solve(project_dir: Path, max_states: int) -> int:
    from .core import load_project, solve

    game = load_project(project_dir).compile()
    result = solve(game, max_states=max_states)
    if result.winnable is None:
        print(f"inconclusive: search bound hit after {result.states_explored} states")
        return 2
    if not result.winnable:
        print(f"UNWINNABLE (explored {result.states_explored} states; "
              f"outcomes seen: {sorted(result.outcomes_seen) or 'none'})")
        return 1
    print(f"winnable in {len(result.winning_script)} moves "
          f"({result.states_explored} states explored):")
    for i, move in enumerate(result.winning_script, 1):
        print(f"  {i}. {move.describe()}")
    return 0


def _cmd_figures(project_dir: Path, out_dir: Path) -> int:
    from .core import load_project
    from .reporting import render_authoring_screenshot
    from .reporting.images import write_ppm
    from .video import storyboard

    project = load_project(project_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    fig1 = render_authoring_screenshot(project)
    (out_dir / "fig1_authoring_tool.txt").write_text(fig1 + "\n")
    sheet, thumbs = storyboard(project.segments)
    write_ppm(sheet, out_dir / "storyboard.ppm")
    print(f"wrote fig1_authoring_tool.txt and storyboard.ppm "
          f"({len(thumbs)} segments) to {out_dir}")
    return 0


def _cmd_compare(students: int, seed: int) -> int:
    from .baselines import run_comparison
    from .core import exploration_game
    from .events import Trigger
    from .learning import DeliveryPoint, KnowledgeItem, KnowledgeMap
    from .reporting import format_table

    wizard = exploration_game(n_exhibits=4)
    game = wizard.build()
    kmap = KnowledgeMap()
    for k in range(4):
        examine = [b.binding_id for b in game.events
                   if b.trigger == Trigger.EXAMINE
                   and b.object_id == f"artifact-{k}"][0]
        kmap.add(KnowledgeItem(f"k{k}", f"artifact {k}"),
                 [DeliveryPoint(kind="binding", ref=examine),
                  DeliveryPoint(kind="enter", ref=f"exhibit-{k}")])
    results = run_comparison(game, kmap, n_students=students, seed=seed)
    print(format_table([s.as_row() for s in results.values()],
                       title=f"Platform comparison (n={students})"))
    return 0


def _obs_demo_workload() -> None:
    """Exercise every instrumented subsystem once, with obs enabled.

    Covers the four metric families the obs layer promises: engine
    (solve + replay a fetch quest), streaming (three-policy path
    replay), segment cache (bounded replay), and parallel segmentation
    (difference signal over a short clip).
    """
    from .core import fetch_quest_game, solve
    from .core.solver import _apply
    from .graph import build_graph
    from .net import Channel, StreamSession, simulate_cached_playback
    from .runtime import KeyPress, MouseClick, SessionRecorder
    from .video import VideoReader
    from .video.parallel import parallel_difference_signal

    # Engine + session: author, solve and replay the fetch-quest demo.
    game = fetch_quest_game(n_quests=2, title="obs demo").build()
    engine = game.new_engine()
    recorder = SessionRecorder(engine.bus, player_id="obs-demo")
    engine.start()
    # A few raw input events so dispatch latency has real samples
    # (the solver replay below injects triggers directly).
    engine.handle_input(MouseClick(2.0, 2.0, button="right"))
    engine.handle_input(KeyPress("right"))
    result = solve(game)
    for move in result.winning_script:
        _apply(engine, move)
        engine.tick(0.5)
    recorder.finish(
        duration=engine.state.play_time,
        outcome=engine.state.outcome,
        final_score=engine.state.score,
        scenarios_visited=len(engine.state.visited),
    )

    # Streaming + cache: replay a visit path over a modest channel.
    reader = VideoReader(game.container)
    graph = build_graph(game.scenarios, game.events, game.start)
    scenario_ids = list(game.scenarios)
    path = [(sid, 2.0) for sid in scenario_ids] + [(scenario_ids[0], 1.0)]
    for policy in ("none", "successors"):
        StreamSession(
            reader, graph, Channel(bandwidth_bps=2e5, latency_s=0.05),
            policy=policy,
        ).play_path(path)
    capacity = max(e.byte_size for e in reader.index) * 2
    simulate_cached_playback(reader, graph, path * 3, capacity, policy="lru")

    # Parallel segmentation: the shot-detection kernel over one clip.
    frames = reader.decode_segment(0)
    parallel_difference_signal(frames, max_workers=2)


def _cmd_obs(action: str, fmt: str, output: Optional[Path], no_demo: bool) -> int:
    from . import obs

    if action == "reset":
        obs.reset()
        obs.get_tracer().reset()
        print("metrics registry and tracer reset")
        return 0
    if not no_demo:
        obs.enable()
        _obs_demo_workload()
    if action == "dump" and fmt == "prometheus":
        fmt = "table"  # dump is for humans; export defaults to Prometheus
    text = obs.render_snapshot(obs.snapshot(), fmt)
    if output is not None:
        try:
            output.write_text(text if text.endswith("\n") else text + "\n")
        except OSError as exc:
            print(f"error: cannot write {output}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {fmt} snapshot to {output}")
    else:
        print(text)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "validate":
        return _cmd_validate(args.project_dir, args.no_solver)
    if args.command == "solve":
        return _cmd_solve(args.project_dir, args.max_states)
    if args.command == "figures":
        return _cmd_figures(args.project_dir, args.out_dir)
    if args.command == "compare":
        return _cmd_compare(args.students, args.seed)
    if args.command == "obs":
        return _cmd_obs(args.action, args.fmt, args.output, args.no_demo)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
