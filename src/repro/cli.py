"""Command-line interface: the platform without writing Python.

Subcommands::

    python -m repro demo                      # author + solve + play + Fig. 2
    python -m repro validate <project_dir>    # authoring-time checks
    python -m repro solve <project_dir>       # auto-generated walkthrough
    python -m repro figures <project_dir> DIR # Fig. 1 text + storyboard PPM
    python -m repro compare                   # mini-E6 cohort comparison
    python -m repro obs export                # metrics snapshot (Prometheus)
    python -m repro obs tail                  # recent structured log events
    python -m repro obs check --slo FILE      # SLO gate (nonzero on breach)
    python -m repro obs flight                # dump the flight recorder
    python -m repro obs trace [ID]            # request-trace waterfall
    python -m repro top                       # live metrics/spans dashboard
    python -m repro serve-bench               # sharded-server load sweep
    python -m repro gateway serve             # TCP front-end for the server
    python -m repro gateway bench             # socket-mode load sweep
    python -m repro wal inspect DIR           # scan durable session journals
    python -m repro wal recover DIR           # rebuild committed sessions
    python -m repro wal compact DIR           # drop snapshot-covered segments
    python -m repro chaos --plan ci-smoke     # fault-injection soak + audit

``validate`` exits non-zero when the project has errors, so it slots
into a course-content CI pipeline unchanged.  ``obs`` runs a small
instrumented workload (engine + streaming + cache + parallel encode) by
default so a fresh process still exports a representative snapshot;
``--no-demo`` exports whatever the current process has collected.
``obs check`` evaluates declarative SLO rules (examples/slo.toml) and
exits 1 on any breach, making it a drop-in CI health gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interactive Video Game-Based Learning platform "
        "(Chang, Hsu & Shih, ICPPW 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="author the classroom example, prove it, play it")

    p_validate = sub.add_parser("validate", help="validate a saved project")
    p_validate.add_argument("project_dir", type=Path)
    p_validate.add_argument(
        "--no-solver", action="store_true",
        help="skip the winnability proof (structural checks only)",
    )

    p_solve = sub.add_parser("solve", help="print the shortest walkthrough")
    p_solve.add_argument("project_dir", type=Path)
    p_solve.add_argument("--max-states", type=int, default=20000)

    p_fig = sub.add_parser("figures", help="render Fig. 1 and a storyboard")
    p_fig.add_argument("project_dir", type=Path)
    p_fig.add_argument("out_dir", type=Path)

    p_cmp = sub.add_parser("compare", help="run a small platform comparison")
    p_cmp.add_argument("--students", type=int, default=20)
    p_cmp.add_argument("--seed", type=int, default=2007)

    p_obs = sub.add_parser(
        "obs",
        help="observability: dump/reset/export metrics, tail logs, "
             "check SLOs, dump the flight recorder, render "
             "request-trace waterfalls",
    )
    p_obs.add_argument(
        "action",
        choices=("dump", "reset", "export", "tail", "check", "flight",
                 "trace"),
    )
    p_obs.add_argument(
        "trace_id", nargs="?", default=None,
        help="for 'trace': the request-trace id to render "
             "(default: the most recently finished trace)",
    )
    p_obs.add_argument(
        "--format", dest="fmt", choices=("prometheus", "table", "json"),
        default="prometheus",
        help="export format (default: prometheus; dump defaults to table)",
    )
    p_obs.add_argument("--output", "-o", type=Path, default=None,
                       help="write to a file instead of stdout")
    p_obs.add_argument(
        "--no-demo", action="store_true",
        help="skip the built-in instrumented workload; export the "
             "process's current registry as-is",
    )
    p_obs.add_argument(
        "--slo", type=Path, default=None,
        help="SLO rule file for 'check' (.toml or .json)",
    )
    p_obs.add_argument(
        "--snapshot", type=Path, default=None,
        help="for 'check': evaluate a saved JSON metrics snapshot "
             "instead of the live registry",
    )
    p_obs.add_argument(
        "--file", type=Path, default=None,
        help="for 'tail': a JSONL log file to read (default: the "
             "in-process flight recorder)",
    )
    p_obs.add_argument(
        "--follow", "-f", action="store_true",
        help="for 'tail --file': keep polling for new events",
    )
    p_obs.add_argument(
        "--lines", "-n", type=int, default=20,
        help="for 'tail': how many recent events to show (default 20)",
    )
    p_obs.add_argument(
        "--level", default=None,
        help="for 'tail': minimum level to show (debug/info/warning/error)",
    )
    p_obs.add_argument(
        "--url", default=None,
        help="for 'trace': fetch the timeline from a live gateway "
             "telemetry endpoint (e.g. http://127.0.0.1:9100) instead "
             "of the in-process trace store",
    )

    p_top = sub.add_parser(
        "top", help="live dashboard: metrics, span aggregates, flight tail"
    )
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between refreshes (default 1.0)")
    p_top.add_argument("--iterations", type=int, default=3,
                       help="frames to render before exiting (default 3)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single frame and exit")
    p_top.add_argument(
        "--no-demo", action="store_true",
        help="observe the current process only; do not run the demo "
             "workload in the background",
    )
    p_top.add_argument("--width", type=int, default=100,
                       help="dashboard width in columns (default 100)")

    p_serve = sub.add_parser(
        "serve-bench",
        help="load-test the sharded session server across shard counts",
    )
    p_serve.add_argument(
        "--shards", default="1,2,4",
        help="comma-separated shard counts to sweep (default 1,2,4)",
    )
    p_serve.add_argument("--sessions", type=int, default=200,
                         help="sessions offered per sweep point (default 200)")
    p_serve.add_argument(
        "--rate", type=float, default=0.0,
        help="arrival rate in sessions/s; 0 = open-loop burst (default)",
    )
    p_serve.add_argument("--tick-hz", type=float, default=100.0,
                         help="shard tick frequency (default 100)")
    p_serve.add_argument("--steps-per-tick", type=int, default=20,
                         help="session-step budget per shard tick (default 20)")
    p_serve.add_argument("--max-sessions", type=int, default=100_000,
                         help="admission-control in-flight cap (default 100000)")
    p_serve.add_argument("--seed", type=int, default=2007,
                         help="cohort script sampling seed (default 2007)")
    p_serve.add_argument("--scripts", type=int, default=16,
                         help="distinct player scripts in the pool (default 16)")
    p_serve.add_argument(
        "--slo", type=Path, default=None,
        help="also gate the run's metrics through an SLO rule file "
             "(nonzero exit on breach)",
    )
    p_serve.add_argument(
        "--persist-dir", type=Path, default=None,
        help="enable durable sessions: per-shard WAL + snapshots under "
             "this directory",
    )

    p_gw = sub.add_parser(
        "gateway",
        help="network gateway: serve the sharded session server over "
             "TCP, or load-test it through real sockets",
    )
    p_gw.add_argument(
        "action", choices=("serve", "bench"),
        help="serve: run the asyncio TCP front-end until interrupted; "
             "bench: shard-count sweep through loopback sockets",
    )
    p_gw.add_argument("--host", default="127.0.0.1",
                      help="bind/connect address (default 127.0.0.1)")
    p_gw.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 binds an ephemeral port and prints it (default 0)",
    )
    p_gw.add_argument(
        "--shards", default=None,
        help="serve: shard count (default 2); bench: comma-separated "
             "sweep counts (default 1,2,4)",
    )
    p_gw.add_argument("--sessions", type=int, default=120,
                      help="bench: sessions offered per sweep point (default 120)")
    p_gw.add_argument("--clients", type=int, default=4,
                      help="bench: concurrent client connections (default 4)")
    p_gw.add_argument(
        "--rate", type=float, default=0.0,
        help="bench: arrival rate in sessions/s; 0 = open-loop burst",
    )
    p_gw.add_argument("--tick-hz", type=float, default=100.0,
                      help="shard tick frequency (default 100)")
    p_gw.add_argument("--steps-per-tick", type=int, default=20,
                      help="session-step budget per shard tick (default 20)")
    p_gw.add_argument("--max-sessions", type=int, default=100_000,
                      help="admission-control in-flight cap (default 100000)")
    p_gw.add_argument("--seed", type=int, default=2007,
                      help="cohort script sampling seed (default 2007)")
    p_gw.add_argument("--scripts", type=int, default=12,
                      help="distinct player scripts in the pool (default 12)")
    p_gw.add_argument("--quests", type=int, default=2,
                      help="quest count of the built-in game (default 2)")
    p_gw.add_argument(
        "--duration", type=float, default=0.0,
        help="serve: exit after this many seconds (0 = run until ^C)",
    )
    p_gw.add_argument(
        "--persist-dir", type=Path, default=None,
        help="durable sessions: per-shard WAL under this directory; "
             "serve recovers any committed sessions found there first",
    )
    p_gw.add_argument(
        "--slo", type=Path, default=None,
        help="bench: gate the run's repro_gateway_* metrics through an "
             "SLO rule file (nonzero exit on breach)",
    )
    p_gw.add_argument(
        "--telemetry-port", type=int, default=None,
        help="serve: also bind the HTTP telemetry endpoint "
             "(/metrics, /healthz, /trace/<id>) on this port; "
             "0 picks an ephemeral port (default: disabled)",
    )
    p_gw.add_argument(
        "--trace-sample", type=float, default=0.0,
        help="fraction of submissions stamped with a request-trace id "
             "for phase attribution (default 0.0; serve samples "
             "server-side, bench stamps client-side)",
    )

    p_wal = sub.add_parser(
        "wal",
        help="inspect, recover or compact durable session journals",
    )
    p_wal.add_argument(
        "action", choices=("inspect", "recover", "compact"),
        help="inspect: read-only scan; recover: rebuild committed "
             "sessions (truncates torn tails); compact: drop WAL "
             "segments fully covered by snapshots",
    )
    p_wal.add_argument(
        "directory", type=Path,
        help="persistence root (contains shard-*/) or a single shard dir",
    )
    p_wal.add_argument(
        "--project", type=Path, default=None,
        help="for 'recover': the game project the sessions were playing "
             "(default: the built-in fetch-quest demo game)",
    )
    p_wal.add_argument(
        "--quests", type=int, default=2,
        help="for 'recover' without --project: quest count of the "
             "built-in game (default 2)",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection soak with bit-identical recovery audit",
    )
    p_chaos.add_argument(
        "--plan", default="ci-smoke",
        help="built-in fault plan to run (default ci-smoke; see --list)",
    )
    p_chaos.add_argument(
        "--list", action="store_true",
        help="list the built-in fault plans and exit",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=None,
        help="override the plan's seed (hit schedule is derived from it)",
    )
    p_chaos.add_argument(
        "--sessions", type=int, default=24,
        help="scripted sessions to offer during the soak (default 24)",
    )
    p_chaos.add_argument(
        "--wait", type=int, default=None,
        help="ENDs to await before the kill (default: half the sessions)",
    )
    p_chaos.add_argument(
        "--shards", type=int, default=2,
        help="shard threads backing the soak server (default 2)",
    )
    p_chaos.add_argument(
        "--persist-dir", type=Path, default=None,
        help="WAL directory (default: a temp dir, removed after the audit)",
    )
    p_chaos.add_argument(
        "--report", type=Path, default=None,
        help="write the full chaos report (faults fired, recovery "
             "digests, counters) to this JSON file",
    )

    p_repl = sub.add_parser(
        "repl",
        help="WAL-shipping replication: ship a journal, inspect it, "
             "promote a standby",
    )
    p_repl.add_argument(
        "action", choices=("serve", "status", "promote"),
        help="serve: ship this persistence root to standbys over TCP; "
             "status: per-shard epoch/tip summary of a root; promote: "
             "offline failover — fence epochs and adopt the journals",
    )
    p_repl.add_argument(
        "directory", type=Path,
        help="persistence root (contains shard-*/ journal directories)",
    )
    p_repl.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: inferred from the shard-* dirs)",
    )
    p_repl.add_argument(
        "--host", default="127.0.0.1",
        help="for 'serve': listen address (default 127.0.0.1)",
    )
    p_repl.add_argument(
        "--port", type=int, default=0,
        help="for 'serve': listen port (default: ephemeral, printed)",
    )
    p_repl.add_argument(
        "--duration", type=float, default=None,
        help="for 'serve': stop after this many seconds "
             "(default: run until Ctrl-C)",
    )
    p_repl.add_argument(
        "--project", type=Path, default=None,
        help="for 'promote': the game project the sessions were playing "
             "— enables the post-promotion digest audit",
    )
    p_repl.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of tables",
    )

    p_cluster = sub.add_parser(
        "cluster",
        help="placement-aware cluster: supervise a node set, inspect or "
             "rebalance its placement map",
    )
    p_cluster.add_argument(
        "action", choices=("serve", "status", "rebalance"),
        help="serve: run a primary plus standby set in this process; "
             "status: print a root's placement map; rebalance: re-plan "
             "the standby subsets and bump the map version",
    )
    p_cluster.add_argument(
        "directory", type=Path,
        help="cluster root (holds PLACEMENT.json and the per-node "
             "persistence directories)",
    )
    p_cluster.add_argument(
        "--shards", type=int, default=2,
        help="for 'serve': shard count of the new cluster (default 2)",
    )
    p_cluster.add_argument(
        "--standbys", type=int, default=3,
        help="for 'serve': standby node count (default 3)",
    )
    p_cluster.add_argument(
        "--replicas-per-shard", type=int, default=None,
        help="standbys subscribed per shard (serve/rebalance; "
             "default: every standby)",
    )
    p_cluster.add_argument(
        "--quorum", type=int, default=0,
        help="for 'serve': standby acks a traced commit must collect "
             "before wait_durable resolves (default 0: local-only)",
    )
    p_cluster.add_argument(
        "--duration", type=float, default=None,
        help="for 'serve': stop after this many seconds "
             "(default: run until Ctrl-C)",
    )
    p_cluster.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of tables",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations (imports deferred: fast --help)
# ----------------------------------------------------------------------

def _cmd_demo() -> int:
    from .core import fetch_quest_game, solve
    from .reporting import render_runtime_screenshot

    wizard = fetch_quest_game(n_quests=2, title="Demo: Fetch Quest")
    report = wizard.check()
    print(f"validated: errors={len(report.errors)} warnings={len(report.warnings)} "
          f"winnable={report.winnable}")
    game = wizard.build()
    result = solve(game)
    print("walkthrough:")
    for i, move in enumerate(result.winning_script, 1):
        print(f"  {i}. {move.describe()}")
    engine = game.new_engine()
    engine.start()
    from .core.solver import _apply

    for move in result.winning_script:
        _apply(engine, move)
    print(f"outcome: {engine.state.outcome}, score: {engine.state.score}")
    print()
    print(render_runtime_screenshot(engine))
    return 0


def _cmd_validate(project_dir: Path, no_solver: bool) -> int:
    from .core import load_project, validate

    project = load_project(project_dir)
    report = validate(project, check_winnable=not no_solver)
    for issue in report.issues:
        print(issue)
    if report.winnable is not None:
        print(f"winnable: {report.winnable}"
              + (f" (shortest solution: {report.solution_length} moves)"
                 if report.winnable else ""))
    print(f"{len(report.errors)} errors, {len(report.warnings)} warnings")
    return 0 if report.ok else 1


def _cmd_solve(project_dir: Path, max_states: int) -> int:
    from .core import load_project, solve

    game = load_project(project_dir).compile()
    result = solve(game, max_states=max_states)
    if result.winnable is None:
        print(f"inconclusive: search bound hit after {result.states_explored} states")
        return 2
    if not result.winnable:
        print(f"UNWINNABLE (explored {result.states_explored} states; "
              f"outcomes seen: {sorted(result.outcomes_seen) or 'none'})")
        return 1
    print(f"winnable in {len(result.winning_script)} moves "
          f"({result.states_explored} states explored):")
    for i, move in enumerate(result.winning_script, 1):
        print(f"  {i}. {move.describe()}")
    return 0


def _cmd_figures(project_dir: Path, out_dir: Path) -> int:
    from .core import load_project
    from .reporting import render_authoring_screenshot
    from .reporting.images import write_ppm
    from .video import storyboard

    project = load_project(project_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    fig1 = render_authoring_screenshot(project)
    (out_dir / "fig1_authoring_tool.txt").write_text(fig1 + "\n")
    sheet, thumbs = storyboard(project.segments)
    write_ppm(sheet, out_dir / "storyboard.ppm")
    print(f"wrote fig1_authoring_tool.txt and storyboard.ppm "
          f"({len(thumbs)} segments) to {out_dir}")
    return 0


def _cmd_compare(students: int, seed: int) -> int:
    from .baselines import run_comparison
    from .core import exploration_game
    from .events import Trigger
    from .learning import DeliveryPoint, KnowledgeItem, KnowledgeMap
    from .reporting import format_table

    wizard = exploration_game(n_exhibits=4)
    game = wizard.build()
    kmap = KnowledgeMap()
    for k in range(4):
        examine = [b.binding_id for b in game.events
                   if b.trigger == Trigger.EXAMINE
                   and b.object_id == f"artifact-{k}"][0]
        kmap.add(KnowledgeItem(f"k{k}", f"artifact {k}"),
                 [DeliveryPoint(kind="binding", ref=examine),
                  DeliveryPoint(kind="enter", ref=f"exhibit-{k}")])
    results = run_comparison(game, kmap, n_students=students, seed=seed)
    print(format_table([s.as_row() for s in results.values()],
                       title=f"Platform comparison (n={students})"))
    return 0


def _obs_demo_workload() -> None:
    """Exercise every instrumented subsystem once, with obs enabled.

    Covers the four metric families the obs layer promises: engine
    (solve + replay a fetch quest), streaming (three-policy path
    replay), segment cache (bounded replay), and parallel segmentation
    (difference signal over a short clip).
    """
    from . import obs
    from .core import fetch_quest_game, solve
    from .core.solver import _apply
    from .graph import build_graph
    from .net import Channel, StreamSession, simulate_cached_playback
    from .runtime import KeyPress, MouseClick, SessionRecorder
    from .video import VideoReader
    from .video.parallel import parallel_difference_signal

    # Deterministic baseline: back-to-back workload runs in one process
    # (repro top refresh, repeated CLI calls under pytest) must not
    # double-count each other's serve/gateway/persist counters.
    obs.reset()

    # Engine + session: author, solve and replay the fetch-quest demo.
    game = fetch_quest_game(n_quests=2, title="obs demo").build()
    engine = game.new_engine()
    recorder = SessionRecorder(engine.bus, player_id="obs-demo")
    engine.start()
    # A few raw input events so dispatch latency has real samples
    # (the solver replay below injects triggers directly).
    engine.handle_input(MouseClick(2.0, 2.0, button="right"))
    engine.handle_input(KeyPress("right"))
    result = solve(game)
    for move in result.winning_script:
        _apply(engine, move)
        engine.tick(0.5)
    recorder.finish(
        duration=engine.state.play_time,
        outcome=engine.state.outcome,
        final_score=engine.state.score,
        scenarios_visited=len(engine.state.visited),
    )

    # Streaming + cache: replay a visit path over a modest channel.
    reader = VideoReader(game.container)
    graph = build_graph(game.scenarios, game.events, game.start)
    scenario_ids = list(game.scenarios)
    path = [(sid, 2.0) for sid in scenario_ids] + [(scenario_ids[0], 1.0)]
    for policy in ("none", "successors"):
        StreamSession(
            reader, graph, Channel(bandwidth_bps=2e5, latency_s=0.05),
            policy=policy,
        ).play_path(path)
    capacity = max(e.byte_size for e in reader.index) * 2
    simulate_cached_playback(reader, graph, path * 3, capacity, policy="lru")

    # Parallel segmentation: the shot-detection kernel over one clip.
    frames = reader.decode_segment(0)
    parallel_difference_signal(frames, max_workers=2)

    # Serving layer: a short burst through the sharded session manager
    # (fast ticks so the whole burst drains in well under a second).
    from .serve import LoadGenerator, ServeConfig, SessionManager
    from .students import cohort_scripts

    scripts = cohort_scripts(game, 4, seed=7)
    with SessionManager(
        ServeConfig(n_shards=2, tick_interval_s=0.002, max_steps_per_tick=50)
    ) as manager:
        LoadGenerator(manager, game, scripts).run(12, drain_timeout=30.0)

    # Durability: a persisted burst, then crash recovery over its WAL —
    # so repro_persist_* commit/recovery metrics have real samples.
    import tempfile as _tempfile

    from .persist import PersistenceConfig, recover_shard

    with _tempfile.TemporaryDirectory(prefix="repro-obs-wal-") as wal_dir:
        pconfig = PersistenceConfig(
            directory=wal_dir, snapshot_every=4, group_window_s=0.001
        )
        config = ServeConfig(
            n_shards=2, tick_interval_s=0.002, max_steps_per_tick=50,
            persistence=pconfig,
        )
        with SessionManager(config) as manager:
            LoadGenerator(manager, game, scripts).run(8, drain_timeout=30.0)
        for i in range(config.n_shards):
            shard_dir = pconfig.shard_dir(i)
            if shard_dir.is_dir():
                recover_shard(shard_dir, game)

    # Network gateway: the same burst through a loopback TCP socket so
    # repro_gateway_* frame/handshake/RTT metrics have real samples.
    # Every submission is trace-sampled so the repro_trace_* phase
    # histograms (and the `repro obs trace` waterfall) have data too.
    from .gateway import GatewayServer, GatewayThread
    from .serve import SocketLoadGenerator

    manager = SessionManager(
        ServeConfig(n_shards=2, tick_interval_s=0.002, max_steps_per_tick=50)
    )
    with GatewayThread(GatewayServer(manager, game)) as handle:
        SocketLoadGenerator(
            handle.host, handle.port, scripts, clients=2,
            trace_sample=1.0,
        ).run(6, timeout=30.0)
    from .obs import metrics as _obs_metrics

    _obs_metrics.get_ring().sample()  # one history point per workload run


def _cmd_obs(args: argparse.Namespace) -> int:
    from . import obs

    action = args.action
    if action == "reset":
        obs.reset()
        print("metrics, tracer and flight recorder reset")
        return 0
    if action == "check":
        return _cmd_obs_check(args)
    if action == "tail":
        return _cmd_obs_tail(args)
    if action == "trace":
        return _cmd_obs_trace(args)
    if not args.no_demo:
        obs.enable()
        _obs_demo_workload()
    if action == "flight":
        path = obs.dump_flight(args.output, reason="cli")
        print(f"wrote flight dump to {path}")
        return 0
    fmt = args.fmt
    if action == "dump" and fmt == "prometheus":
        fmt = "table"  # dump is for humans; export defaults to Prometheus
    text = obs.render_snapshot(obs.snapshot(), fmt)
    if args.output is not None:
        try:
            args.output.write_text(text if text.endswith("\n") else text + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {fmt} snapshot to {args.output}")
    else:
        print(text)
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    """Evaluate SLO rules; exit 0 only when every rule passes."""
    import json

    from . import obs
    from .reporting import format_table

    if args.slo is None:
        print("error: obs check requires --slo FILE", file=sys.stderr)
        return 2
    try:
        rules = obs.parse_slo_file(args.slo)
    except (OSError, obs.SloError) as exc:
        print(f"error: cannot load SLO rules: {exc}", file=sys.stderr)
        return 2
    if args.snapshot is not None:
        try:
            snap = json.loads(args.snapshot.read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot load snapshot: {exc}", file=sys.stderr)
            return 2
    else:
        if not args.no_demo:
            obs.enable()
            _obs_demo_workload()
        snap = obs.snapshot()
    results, all_ok = obs.evaluate_slos(rules, snap)
    print(format_table(
        [r.as_row() for r in results],
        title=f"SLO check: {args.slo}",
    ))
    failed = sum(1 for r in results if not r.ok)
    if all_ok:
        print(f"\nSLO check passed ({len(results)} rules)")
        return 0
    print(f"\nSLO check FAILED ({failed} of {len(results)} rules breached)")
    return 1


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    """Show recent structured log events, from a file or the flight ring."""
    import json
    import time

    from . import obs

    min_level = 0
    if args.level is not None:
        if args.level not in obs.LEVELS:
            print(f"error: unknown level {args.level!r}; "
                  f"known: {', '.join(obs.LEVELS)}", file=sys.stderr)
            return 2
        min_level = obs.LEVELS[args.level]

    def _passes(record: dict) -> bool:
        return obs.LEVELS.get(record.get("level", "info"), 20) >= min_level

    if args.file is None:
        if args.follow:
            print("error: --follow requires --file", file=sys.stderr)
            return 2
        if not args.no_demo:
            obs.enable()
            _obs_demo_workload()
        events = [e for e in obs.get_flight_recorder().events() if _passes(e)]
        for record in events[-max(args.lines, 0):]:
            print(obs.format_event(record))
        return 0

    def _parse(lines: list) -> list:
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write or non-JSONL noise
            if _passes(record):
                records.append(record)
        return records

    def _emit(lines: list) -> None:
        for record in _parse(lines):
            print(obs.format_event(record), flush=True)

    try:
        with open(args.file, "r") as fh:
            records = _parse(fh.readlines())
            for record in records[-max(args.lines, 0):]:
                print(obs.format_event(record), flush=True)
            if not args.follow:
                return 0
            try:
                while True:
                    new = fh.readlines()
                    if new:
                        _emit(new)
                    else:
                        time.sleep(0.25)
            except KeyboardInterrupt:
                return 0
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 1


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    """Render one request trace as a waterfall.

    Local mode (default) reads the in-process trace store — running the
    demo workload first unless ``--no-demo`` — and renders the named
    trace, or the most recently finished one.  With ``--url`` it
    fetches the timeline from a live gateway's telemetry endpoint
    instead, so an operator can point it at a serving process.
    """
    import json

    from . import obs
    from .reporting import render_waterfall

    timeline = None
    if args.url is not None:
        import urllib.error
        import urllib.request

        base = args.url.rstrip("/")
        if "://" not in base:
            base = "http://" + base
        trace_id = args.trace_id
        try:
            if trace_id is None:
                with urllib.request.urlopen(base + "/traces", timeout=10) as r:
                    finished = json.loads(r.read()).get("finished") or []
                if not finished:
                    print("error: the gateway has no finished traces "
                          "(is --trace-sample > 0?)", file=sys.stderr)
                    return 1
                trace_id = finished[-1]
            with urllib.request.urlopen(
                f"{base}/trace/{trace_id}", timeout=10
            ) as r:
                timeline = json.loads(r.read())
        except urllib.error.HTTPError as exc:
            print(f"error: {base}/trace/{trace_id}: HTTP {exc.code}",
                  file=sys.stderr)
            return 1
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
            return 1
    else:
        if not args.no_demo:
            obs.enable()
            _obs_demo_workload()
        store = obs.get_trace_store()
        trace_id = args.trace_id or store.latest()
        if trace_id is None:
            print("error: no finished traces in this process "
                  "(run without --no-demo, or use --url)", file=sys.stderr)
            return 1
        timeline = store.get(trace_id)
        if timeline is None:
            print(f"error: unknown trace id {trace_id!r}", file=sys.stderr)
            return 1
    text = render_waterfall(timeline)
    if args.output is not None:
        try:
            args.output.write_text(text + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote trace waterfall to {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from . import obs
    from .core import fetch_quest_game
    from .reporting import format_table
    from .serve import run_serve_benchmark
    from .students import cohort_scripts

    try:
        shard_counts = [int(s) for s in str(args.shards).split(",") if s.strip()]
    except ValueError:
        print(f"error: cannot parse --shards {args.shards!r}", file=sys.stderr)
        return 2
    if not shard_counts or any(n < 1 for n in shard_counts):
        print("error: --shards needs positive integers", file=sys.stderr)
        return 2
    if args.tick_hz <= 0:
        print("error: --tick-hz must be positive", file=sys.stderr)
        return 2

    obs.enable()
    # Fresh counters per bench pass: back-to-back CLI runs in one
    # process would otherwise double-count serve totals in the SLO gate.
    obs.reset()
    game = fetch_quest_game(n_quests=2, title="serve-bench").build()
    scripts = cohort_scripts(game, args.scripts, seed=args.seed)
    persistence = None
    if args.persist_dir is not None:
        from .persist import PersistenceConfig

        persistence = PersistenceConfig(directory=args.persist_dir)
    results = run_serve_benchmark(
        game,
        shard_counts,
        sessions=args.sessions,
        scripts=scripts,
        arrival_rate=args.rate,
        tick_interval_s=1.0 / args.tick_hz,
        max_steps_per_tick=args.steps_per_tick,
        max_sessions=args.max_sessions,
        persistence=persistence,
    )
    print(format_table(
        [r.as_row() for r in results],
        title=f"serve-bench: {args.sessions} sessions per sweep point",
    ))
    for r in results:
        per_shard = ", ".join(
            f"shard {label}: {q * 1e3:.2f}ms"
            for label, q in sorted(r.tick_p95_by_shard.items())
        )
        if per_shard:
            print(f"  {r.shards}-shard tick p95 — {per_shard}")
    base = results[0].report.sessions_per_second
    if base > 0 and len(results) > 1:
        for r in results[1:]:
            print(f"  {r.shards} shards vs {results[0].shards}: "
                  f"{r.report.sessions_per_second / base:.2f}x sessions/s")
    if args.slo is not None:
        return _check_slo_rules(args.slo, "repro_serve_", label="serve")
    return 0


def _check_slo_rules(slo_path: Path, prefix: str, label: str) -> int:
    """Gate a bench run on one subsystem's rules in an SLO file.

    A bench run only exercises one metric family (``repro_serve_*``
    for ``serve-bench``, ``repro_gateway_*`` for ``gateway bench``),
    so rules about other subsystems (which ``repro obs check`` covers
    via its demo workload) are skipped here rather than spuriously
    failing.
    """
    from . import obs
    from .reporting import format_table

    try:
        rules = obs.parse_slo_file(slo_path)
    except (OSError, obs.SloError) as exc:
        print(f"error: cannot load SLO rules: {exc}", file=sys.stderr)
        return 2
    picked = [
        r for r in rules
        if (r.metric or r.numerator or "").startswith(prefix)
    ]
    if not picked:
        print(f"error: no {prefix}* rules in {slo_path}", file=sys.stderr)
        return 2
    results, all_ok = obs.evaluate_slos(picked, obs.snapshot())
    print(format_table(
        [r.as_row() for r in results],
        title=f"{label} SLO check: {slo_path}",
    ))
    if all_ok:
        print(f"\n{label} SLO check passed ({len(results)} rules)")
        return 0
    failed = sum(1 for r in results if not r.ok)
    print(f"\n{label} SLO check FAILED "
          f"({failed} of {len(results)} rules breached)")
    return 1


def _cmd_gateway(args: argparse.Namespace) -> int:
    from . import obs

    if args.tick_hz <= 0:
        print("error: --tick-hz must be positive", file=sys.stderr)
        return 2
    obs.enable()
    if args.action == "serve":
        return _cmd_gateway_serve(args)
    return _cmd_gateway_bench(args)


def _cmd_gateway_serve(args: argparse.Namespace) -> int:
    """Run a gateway-fronted session server until ^C (or --duration)."""
    import asyncio

    from .core import fetch_quest_game
    from .gateway import GatewayConfig, GatewayServer
    from .serve import ServeConfig, SessionManager

    if args.shards is None:
        n_shards = 2
    else:
        try:
            n_shards = int(args.shards)
        except ValueError:
            print(f"error: cannot parse --shards {args.shards!r}",
                  file=sys.stderr)
            return 2
    if n_shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    persistence = None
    if args.persist_dir is not None:
        from .persist import PersistenceConfig

        persistence = PersistenceConfig(directory=args.persist_dir)
    game = fetch_quest_game(n_quests=args.quests, title="gateway").build()
    manager = SessionManager(ServeConfig(
        n_shards=n_shards,
        max_sessions=args.max_sessions,
        tick_interval_s=1.0 / args.tick_hz,
        max_steps_per_tick=args.steps_per_tick,
        persistence=persistence,
    ))
    if not 0.0 <= args.trace_sample <= 1.0:
        print("error: --trace-sample must be within [0, 1]", file=sys.stderr)
        return 2
    server = GatewayServer(
        manager, game, config=GatewayConfig(
            host=args.host, port=args.port,
            trace_sample=args.trace_sample,
            telemetry_port=args.telemetry_port,
        )
    )

    async def _serve() -> None:
        if persistence is not None:
            recovered = server.recover()
            if recovered:
                print(f"recovered {len(recovered)} live session(s) from WAL")
        await server.start()
        print(f"gateway listening on {args.host}:{server.port} "
              f"({n_shards} shard(s); ^C to drain and exit)")
        if server.telemetry_port is not None:
            print(f"telemetry on http://{args.host}:{server.telemetry_port} "
                  "(/metrics /healthz /trace/<id> /traces /history)")
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await server.serve_forever()
        finally:
            await server.shutdown(drain=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\ndrained and stopped")
    return 0


def _cmd_gateway_bench(args: argparse.Namespace) -> int:
    """Loopback shard sweep through the gateway (mirrors serve-bench)."""
    from . import obs
    from .core import fetch_quest_game
    from .gateway import run_gateway_benchmark
    from .reporting import format_table
    from .students import cohort_scripts

    shards_spec = args.shards if args.shards is not None else "1,2,4"
    try:
        shard_counts = [int(s) for s in str(shards_spec).split(",") if s.strip()]
    except ValueError:
        print(f"error: cannot parse --shards {shards_spec!r}", file=sys.stderr)
        return 2
    if not shard_counts or any(n < 1 for n in shard_counts):
        print("error: --shards needs positive integers", file=sys.stderr)
        return 2
    # Fresh counters per bench pass (same contract as serve-bench).
    obs.reset()
    game = fetch_quest_game(n_quests=args.quests, title="gateway-bench").build()
    scripts = cohort_scripts(game, args.scripts, seed=args.seed)
    persistence = None
    if args.persist_dir is not None:
        from .persist import PersistenceConfig

        persistence = PersistenceConfig(directory=args.persist_dir)
    if not 0.0 <= args.trace_sample <= 1.0:
        print("error: --trace-sample must be within [0, 1]", file=sys.stderr)
        return 2
    results = run_gateway_benchmark(
        game,
        shard_counts,
        sessions=args.sessions,
        scripts=scripts,
        clients=args.clients,
        arrival_rate=args.rate,
        tick_interval_s=1.0 / args.tick_hz,
        max_steps_per_tick=args.steps_per_tick,
        max_sessions=args.max_sessions,
        persistence=persistence,
        trace_sample=args.trace_sample,
    )
    print(format_table(
        [r.as_row() for r in results],
        title=f"gateway bench: {args.sessions} sessions per sweep point",
    ))
    base = results[0].report.sessions_per_second
    if base > 0 and len(results) > 1:
        for r in results[1:]:
            print(f"  {r.shards} shards vs {results[0].shards}: "
                  f"{r.report.sessions_per_second / base:.2f}x sessions/s")
    if args.trace_sample > 0:
        from .obs import get_trace_store
        from .reporting import render_waterfall

        # Render the last sampled request's waterfall so the sweep ends
        # with a concrete latency attribution, not just aggregate rows.
        for r in reversed(results):
            if not r.report.trace_ids:
                continue
            timeline = get_trace_store().get(r.report.trace_ids[-1])
            if timeline is not None:
                print()
                print(render_waterfall(timeline))
                break
    if args.slo is not None:
        return _check_slo_rules(args.slo, "repro_gateway_", label="gateway")
    return 0


def _wal_shard_dirs(root: Path) -> list:
    """Journal directories under a persistence root (or the root itself)."""
    if not root.is_dir():
        return []
    shards = sorted(p for p in root.glob("shard-*") if p.is_dir())
    return shards if shards else [root]


def _cmd_wal(args: argparse.Namespace) -> int:
    from . import obs
    from .persist import (
        SnapshotStore,
        compact_segments,
        compaction_watermark,
        list_segments,
        recover_shard,
        scan_journal,
        snapshot_dir_for,
    )
    from .reporting import format_table

    shard_dirs = _wal_shard_dirs(args.directory)
    if not shard_dirs:
        print(f"error: {args.directory} is not a journal directory",
              file=sys.stderr)
        return 2

    if args.action == "inspect":
        rows = []
        for shard_dir in shard_dirs:
            report = scan_journal(shard_dir)  # read-only: no truncation
            sids: dict = {}
            for record in report.records:
                sid = record.get("sid")
                if sid is not None:
                    sids[sid] = record.get("t")
            store = SnapshotStore(snapshot_dir_for(shard_dir))
            bytes_on_disk = sum(
                p.stat().st_size for _seq, p in list_segments(shard_dir)
            )
            rows.append({
                "shard": shard_dir.name,
                "segments": report.segments,
                "records": len(report.records),
                "tip_lsn": report.tip_lsn,
                "live": sum(1 for t in sids.values() if t != "end"),
                "ended": sum(1 for t in sids.values() if t == "end"),
                "snapshots": store.count(),
                "torn": report.torn_records,
                "discarded_b": report.discarded_bytes,
                "wal_bytes": bytes_on_disk,
            })
        print(format_table(rows, title=f"wal inspect: {args.directory}"))
        torn = sum(r["torn"] for r in rows)
        if torn:
            print(f"\n{torn} torn record(s) detected; "
                  "'repro wal recover' will truncate and replay")
        return 0

    if args.action == "compact":
        total_dropped = 0
        for shard_dir in shard_dirs:
            report = scan_journal(shard_dir)
            snapshots, _rejected = SnapshotStore(
                snapshot_dir_for(shard_dir)
            ).load_all()
            covered = {}
            ended = set()
            for record in report.records:
                sid = record.get("sid")
                if record.get("t") == "start" and sid not in covered:
                    covered[sid] = int(record.get("n", 0)) - 1
                elif record.get("t") == "end":
                    ended.add(sid)
            for sid, snap in snapshots.items():
                covered[sid] = max(
                    covered.get(sid, 0), int(snap.get("lsn", 0))
                )
            for sid in ended:  # finished sessions don't pin the watermark
                covered.pop(sid, None)
            watermark = compaction_watermark(
                covered.values(), report.tip_lsn
            )
            dropped = compact_segments(shard_dir, watermark)
            total_dropped += dropped
            print(f"{shard_dir.name}: watermark lsn {watermark}, "
                  f"dropped {dropped} segment(s)")
        print(f"compacted {total_dropped} segment(s) total")
        return 0

    # recover: needs the game the journals were recorded against.
    obs.enable()
    if args.project is not None:
        from .core import load_project

        game = load_project(args.project).compile()
    else:
        from .core import fetch_quest_game

        game = fetch_quest_game(
            n_quests=args.quests, title="wal-recover"
        ).build()
    rows = []
    exit_code = 0
    for shard_dir in shard_dirs:
        try:
            report = recover_shard(shard_dir, game)
        except Exception as exc:
            print(f"error: recovery of {shard_dir} failed: {exc}",
                  file=sys.stderr)
            exit_code = 1
            continue
        rows.append({
            "shard": shard_dir.name,
            "live": len(report.sessions),
            "ended": report.ended_sessions,
            "replayed": report.replayed_records,
            "snapshots": report.snapshots_used,
            "torn": report.torn_records,
            "duration_ms": f"{report.duration_s * 1e3:.2f}",
        })
        for session in report.sessions:
            print(f"  {shard_dir.name}/{session.player_id}: "
                  f"cursor {session.cursor}/{len(session.ops)}, "
                  f"digest {session.digest[:16]}…")
    if rows:
        print(format_table(rows, title=f"wal recover: {args.directory}"))
    return exit_code


def _render_top_frame(width: int) -> str:
    """One ``repro top`` frame: metrics, span aggregates, flight tail."""
    from . import obs
    from .reporting import format_table, render_dashboard, sparkline

    snap = obs.snapshot()
    rows = obs.snapshot_rows(snap)
    # Busiest series first so a narrow terminal still shows the action.
    rows.sort(key=lambda r: str(r.get("metric", "")))
    metric_lines = format_table(rows[:14]).splitlines() if rows else ["(no metrics)"]

    tracer = obs.get_tracer()
    agg: dict = {}
    for sp in tracer.iter_spans():
        entry = agg.setdefault(sp.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += sp.duration
        entry[2] = max(entry[2], sp.duration)
    span_rows = [
        {
            "span": name,
            "count": count,
            "mean_ms": f"{1e3 * total / count:.3f}",
            "max_ms": f"{1e3 * mx:.3f}",
        }
        for name, (count, total, mx) in sorted(
            agg.items(), key=lambda kv: -kv[1][1]
        )[:8]
    ]
    span_lines = (
        format_table(span_rows).splitlines() if span_rows else ["(no spans)"]
    )
    recent = [s.duration * 1e3 for s in tracer.finished[-40:]]
    if recent:
        span_lines.append("")
        span_lines.append(
            f"root span ms: {sparkline(recent, width=width - 24)}"
        )

    flight = obs.get_flight_recorder()
    tail = [obs.format_event(e) for e in flight.events()[-8:]]
    flight_lines = tail or ["(flight recorder empty)"]
    flight_title = (
        f"Flight recorder ({len(flight)}/{flight.capacity} events, "
        f"{flight.total_recorded} total)"
    )

    # Time-series ring: one sample per rendered frame, so successive
    # frames grow a real history even without a telemetry sidecar.
    ring = obs.get_ring()
    ring.sample(snap=snap)
    history_lines = []
    busiest = sorted(
        ((ring.series(name)[-1][1], name) for name in ring.names()),
        reverse=True,
    )[:4]
    label_w = max((len(name) for _v, name in busiest), default=0)
    for _value, name in busiest:
        values = [v for _t, v in ring.series(name)]
        history_lines.append(
            f"{name:<{label_w}} {sparkline(values, width=width - label_w - 20)}"
            f" {values[-1]:g}"
        )
    history_title = f"History ({len(ring)} samples)"

    return render_dashboard(
        "repro top - VGBL runtime observability",
        [
            ("Metrics", metric_lines),
            ("Spans", span_lines),
            (history_title, history_lines or ["(no samples)"]),
            (flight_title, flight_lines),
        ],
        width=width,
    )


def _cmd_top(
    interval: float, iterations: int, once: bool, no_demo: bool, width: int
) -> int:
    import threading
    import time

    from . import obs

    if interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    if iterations < 1:
        print("error: --iterations must be >= 1", file=sys.stderr)
        return 2
    obs.enable()
    worker: Optional[threading.Thread] = None
    if not no_demo:
        worker = threading.Thread(target=_obs_demo_workload, daemon=True)
        worker.start()
    frames = 1 if once else iterations
    if once and worker is not None:
        # A single frame should show the finished workload, not the
        # empty registry the thread hasn't populated yet.
        worker.join(timeout=60.0)
    try:
        for i in range(frames):
            if i:
                time.sleep(interval)
            # ANSI home+clear keeps successive frames in place on a tty.
            if sys.stdout.isatty() and i:
                print("\x1b[H\x1b[2J", end="")
            print(_render_top_frame(width))
            sys.stdout.flush()
    except KeyboardInterrupt:
        pass
    if worker is not None:
        worker.join(timeout=10.0)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from . import obs
    from .faultline.chaos import run_chaos
    from .faultline.plan import builtin_plans
    from .reporting import format_table

    plans = builtin_plans()
    if args.list:
        rows = []
        for name, plan in sorted(plans.items()):
            rows.append({
                "plan": name,
                "faults": len(plan.specs),
                "sites": " ".join(sorted({s.site for s in plan.specs})),
                "description": plan.description,
            })
        print(format_table(rows, title="Built-in fault plans"))
        return 0
    if args.plan not in plans:
        print(f"unknown plan {args.plan!r}; try --list", file=sys.stderr)
        return 2
    if args.sessions < 1 or args.shards < 1:
        print("error: --sessions and --shards must be >= 1", file=sys.stderr)
        return 2
    if args.wait is not None and args.wait < 1:
        print("error: --wait must be >= 1", file=sys.stderr)
        return 2
    obs.enable()
    if args.plan == "repl-quorum-partition":
        # the quorum plan soaks a whole placement-mapped cluster
        # (several standbys, quorum commit, routed failover)
        return _chaos_cluster(args)
    if any(spec.site.startswith("repl.") for spec in plans[args.plan].specs):
        # plans that fault the shipping link need the whole
        # primary/standby/promote cycle, not the single-node soak
        return _chaos_repl(args)
    report = run_chaos(
        args.plan,
        seed=args.seed,
        sessions=args.sessions,
        wait_for=args.wait,
        n_shards=args.shards,
        persist_dir=args.persist_dir,
    )
    print(format_table(
        report.faults,
        title=f"Fault schedule (plan={report.plan} seed={report.seed})",
    ))
    print(
        f"soak: offered={report.sessions} submitted={report.submitted} "
        f"completed={report.completed_ends} failed={report.failed_ends} "
        f"in {report.duration_s:.2f}s"
    )
    print(
        f"recovery: live={report.recovered_live} "
        f"ended={report.recovered_ended} torn={report.torn_records} "
        f"orphans={report.orphan_records}"
    )
    print(
        f"audit: digests_checked={report.digests_checked} "
        f"mismatches={len(report.digest_mismatches)} "
        f"bit_identical={report.bit_identical} "
        f"faults_fired={report.injected_total} "
        f"all_fired={report.all_faults_fired} "
        f"durability_timeouts={report.durability_timeouts}"
    )
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report.to_dict(), indent=2))
        print(f"report: {args.report}")
    if not report.ok:
        print("chaos: FAILED (see mismatches/faults above)", file=sys.stderr)
        return 1
    print("chaos: OK")
    return 0


def _chaos_repl(args: argparse.Namespace) -> int:
    import json

    from .replicate import run_repl_chaos
    from .reporting import format_table

    kill_after = (
        args.wait / args.sessions if args.wait is not None else 0.5
    )
    report = run_repl_chaos(
        args.plan,
        seed=args.seed,
        sessions=args.sessions,
        n_shards=args.shards,
        primary_dir=args.persist_dir,
        kill_after_fraction=kill_after,
    )
    print(format_table(
        report.faults,
        title=f"Fault schedule (plan={report.plan} seed={report.seed})",
    ))
    print(
        f"soak: offered={report.sessions} submitted={report.submitted} "
        f"completed_before_kill={report.completed_before_kill} "
        f"in {report.duration_s:.2f}s"
    )
    print(
        f"failover: caught_up={report.caught_up} "
        f"detected={report.promote_detected} "
        f"epochs={report.promoted_epochs} "
        f"truncated_bytes={report.truncated_bytes}"
    )
    print(
        f"audit: primary_records={report.primary_records} "
        f"replica_records={report.replica_records} "
        f"lost={report.lost_records} "
        f"digests_checked={report.digests_checked} "
        f"mismatches={len(report.digest_mismatches)} "
        f"resumed={report.resumed_completed}/{report.resumed_live} "
        f"all_fired={report.all_faults_fired}"
    )
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report.to_dict(), indent=2))
        print(f"report: {args.report}")
    if not report.ok:
        print("chaos: FAILED (see audit above)", file=sys.stderr)
        return 1
    print("chaos: OK")
    return 0


def _chaos_cluster(args: argparse.Namespace) -> int:
    import json

    from .cluster import run_cluster_chaos
    from .reporting import format_table

    kill_after = (
        args.wait / args.sessions if args.wait is not None else 0.25
    )
    report = run_cluster_chaos(
        args.plan,
        seed=args.seed,
        sessions=args.sessions,
        n_shards=args.shards,
        kill_standby_after_fraction=kill_after,
    )
    print(format_table(
        report.faults,
        title=f"Fault schedule (plan={report.plan} seed={report.seed})",
    ))
    print(
        f"soak: offered={report.sessions} submitted={report.submitted} "
        f"quorum={report.quorum}/{report.standbys} "
        f"standby_killed={report.standby_killed} "
        f"promoted={report.promoted} in {report.duration_s:.2f}s"
    )
    print(
        f"failover: caught_up={report.caught_up} "
        f"epochs={report.promoted_epochs} "
        f"placement_version={report.placement_version} "
        f"routed_queries={report.queries_ok}/{report.queries_total} "
        f"post_failover_submit_ok={report.post_failover_submit_ok}"
    )
    print(
        f"audit: primary_records={report.primary_records} "
        f"survivor_records={report.survivor_records} "
        f"lost={report.lost_records} "
        f"digests_checked={report.digests_checked} "
        f"mismatches={len(report.digest_mismatches)} "
        f"quorum_timeouts={report.quorum_timeouts} "
        f"all_fired={report.all_faults_fired}"
    )
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report.to_dict(), indent=2))
        print(f"report: {args.report}")
    if not report.ok:
        print("chaos: FAILED (see audit above)", file=sys.stderr)
        return 1
    print("chaos: OK")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json
    from time import sleep as _sleep

    from . import obs
    from .reporting import format_table

    directory: Path = args.directory

    if args.action == "serve":
        from .cluster import ClusterSupervisor
        from .core import fetch_quest_game

        if args.shards < 1 or args.standbys < 1:
            print("error: --shards and --standbys must be >= 1",
                  file=sys.stderr)
            return 2
        if not 0 <= args.quorum <= args.standbys:
            print("error: --quorum must be within [0, --standbys]",
                  file=sys.stderr)
            return 2
        obs.enable()
        game = fetch_quest_game(n_quests=2, title="Cluster Demo").build()
        supervisor = ClusterSupervisor(
            game,
            n_shards=args.shards,
            n_standbys=args.standbys,
            replicas_per_shard=args.replicas_per_shard,
            quorum=args.quorum,
            root=directory,
        ).start()
        print(f"cluster: primary {supervisor.placement.primary_address()} "
              f"shipping {args.shards} shard(s) to {args.standbys} "
              f"standby(s), "
              f"quorum={args.quorum}; placement saved under {directory}")
        try:
            if args.duration is not None:
                _sleep(args.duration)
            else:  # pragma: no cover - interactive
                while True:
                    _sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            supervisor.stop()
        return 0

    from .cluster import PlacementMap

    try:
        pmap = PlacementMap.load(directory)
    except FileNotFoundError:
        print(f"error: no PLACEMENT.json under {directory} "
              "(run 'repro cluster serve' first)", file=sys.stderr)
        return 2

    if args.action == "status":
        doc = pmap.to_dict()
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        print(format_table(
            [{
                "shard": a["shard"], "primary": a["primary"],
                "standbys": " ".join(a["standbys"]) or "-",
                "epoch": a["epoch"],
            } for a in doc["assignments"]],
            title=f"Placement v{doc['version']}: {directory}",
        ))
        print(format_table(
            [{
                "node": n["node_id"], "kind": n["kind"],
                "address": f"{n['host']}:{n['port']}" if n["host"] else "-",
            } for n in doc["nodes"]],
            title="Nodes",
        ))
        return 0

    # rebalance: re-deal the standby subsets round-robin, keeping every
    # primary and epoch where it is (epochs only move via promotion)
    pool = sorted(
        node_id for node_id, node in pmap.nodes().items()
        if node.kind == "standby"
    )
    if not pool:
        print("error: the map has no standby nodes to deal",
              file=sys.stderr)
        return 2
    want = (
        len(pool) if args.replicas_per_shard is None
        else min(args.replicas_per_shard, len(pool))
    )
    rows = []
    for shard in range(pmap.n_shards):
        entry = pmap.assignment(shard)
        subset = tuple(
            pool[(shard + k) % len(pool)] for k in range(want)
        )
        pmap.assign(shard, entry.primary, subset, epoch=entry.epoch)
        rows.append({
            "shard": shard, "primary": entry.primary,
            "was": " ".join(entry.standbys) or "-",
            "now": " ".join(subset),
            "epoch": entry.epoch,
        })
    path = pmap.save(directory)
    if args.json:
        print(json.dumps(pmap.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_table(
            rows, title=f"Rebalanced -> v{pmap.version}: {path}",
        ))
        print("note: a running supervisor re-reads the map on restart; "
              "live re-subscription is the next roadmap item")
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    import json
    from time import sleep as _sleep

    from . import obs
    from .reporting import format_table

    directory: Path = args.directory
    shard_dirs = sorted(
        entry for entry in directory.iterdir()
        if entry.is_dir() and entry.name.startswith("shard-")
    ) if directory.is_dir() else []
    n_shards = args.shards if args.shards is not None else len(shard_dirs)

    if args.action == "serve":
        if n_shards < 1:
            print(f"error: no shard-* journals under {directory} "
                  "(pass --shards to serve an empty root)", file=sys.stderr)
            return 2
        from .persist import PersistenceConfig
        from .replicate import ReplicationSource

        obs.enable()
        source = ReplicationSource(
            PersistenceConfig(directory=directory), n_shards,
            host=args.host, port=args.port,
        ).start()
        print(f"replication source: shipping {n_shards} shard(s) of "
              f"{directory} on {source.host}:{source.port}")
        try:
            if args.duration is not None:
                _sleep(args.duration)
            else:  # pragma: no cover - interactive
                while True:
                    _sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            source.stop()
        return 0

    if args.action == "status":
        from .persist import scan_journal
        from .replicate import read_epoch

        rows = []
        for index, shard_dir in enumerate(shard_dirs):
            scan = scan_journal(shard_dir, truncate=False)
            rows.append({
                "shard": index,
                "dir": shard_dir.name,
                "epoch": read_epoch(shard_dir),
                "segments": scan.segments,
                "records": len(scan.records),
                "tip_lsn": scan.tip_lsn,
                "torn": scan.torn_records,
            })
        if args.json:
            print(json.dumps({"root": str(directory), "shards": rows},
                             indent=2, sort_keys=True))
        else:
            print(format_table(rows, title=f"Replication status: {directory}"))
        return 0

    # promote
    if not shard_dirs:
        print(f"error: no shard-* journals under {directory}",
              file=sys.stderr)
        return 2
    from .replicate import promote_directory

    game = None
    if args.project is not None:
        from .core import load_project

        game = load_project(args.project).compile()
    report = promote_directory(directory, game=game)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_table(report.shards,
                           title=f"Promoted: {directory}"))
        if report.digests:
            print(f"audit: {len(report.digests)} live session(s) "
                  "recovered from the promoted log")
        print(f"promotion took {report.duration_s:.3f}s; the root is now "
              "a primary persistence directory")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "validate":
        return _cmd_validate(args.project_dir, args.no_solver)
    if args.command == "solve":
        return _cmd_solve(args.project_dir, args.max_states)
    if args.command == "figures":
        return _cmd_figures(args.project_dir, args.out_dir)
    if args.command == "compare":
        return _cmd_compare(args.students, args.seed)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "top":
        return _cmd_top(
            args.interval, args.iterations, args.once, args.no_demo, args.width
        )
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "wal":
        return _cmd_wal(args)
    if args.command == "repl":
        return _cmd_repl(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
