"""Synthetic video substrate: frames, footage, codecs, container,
shot detection, segments/timeline, clocked playback and parallel kernels.

This package replaces the real video stack (cameras, files "from network",
OpenCV-style decode) the paper's system used — see DESIGN.md §2 for the
substitution rationale.
"""

from .codec import (
    Codec,
    CodecError,
    DeltaCodec,
    QuantCodec,
    RawCodec,
    RleCodec,
    available_codecs,
    get_codec,
    mse,
    psnr,
)
from .container import (
    ContainerError,
    SegmentIndexEntry,
    VideoReader,
    VideoWriter,
    read_video,
    write_video,
)
from .filters import (
    FilterChain,
    FilterError,
    adjust_brightness_contrast,
    crop,
    fade_in,
    fade_out,
    grayscale,
    letterbox,
    scale_nearest,
    stamp_caption,
    tint,
)
from .frame import Frame, FrameSize, color_histogram, frame_absdiff, hist_l1_distance
from .thumbnails import Thumbnail, keyframe_index, segment_thumbnail, storyboard
from .parallel import (
    ParallelStats,
    chunk_spans,
    parallel_difference_signal,
    parallel_encode_segments,
)
from .player import PlaybackState, PlayerError, SegmentPlayer, SimulatedClock
from .segment import SegmentError, Timeline, VideoSegment, segments_from_boundaries
from .shots import (
    BoundaryScore,
    DetectorConfig,
    ShotDetector,
    detect_shots,
    score_detection,
)
from .synthesis import (
    MovingSprite,
    ShotSpec,
    SyntheticClip,
    TransitionKind,
    generate_clip,
    random_shot_script,
)

__all__ = [
    "BoundaryScore",
    "Codec",
    "CodecError",
    "ContainerError",
    "DeltaCodec",
    "DetectorConfig",
    "FilterChain",
    "FilterError",
    "Frame",
    "FrameSize",
    "MovingSprite",
    "ParallelStats",
    "PlaybackState",
    "PlayerError",
    "QuantCodec",
    "RawCodec",
    "RleCodec",
    "SegmentError",
    "SegmentIndexEntry",
    "SegmentPlayer",
    "ShotDetector",
    "ShotSpec",
    "SimulatedClock",
    "SyntheticClip",
    "Thumbnail",
    "Timeline",
    "TransitionKind",
    "VideoReader",
    "VideoSegment",
    "VideoWriter",
    "adjust_brightness_contrast",
    "available_codecs",
    "chunk_spans",
    "color_histogram",
    "crop",
    "detect_shots",
    "fade_in",
    "fade_out",
    "frame_absdiff",
    "generate_clip",
    "get_codec",
    "grayscale",
    "hist_l1_distance",
    "keyframe_index",
    "letterbox",
    "mse",
    "scale_nearest",
    "segment_thumbnail",
    "stamp_caption",
    "storyboard",
    "tint",
    "parallel_difference_signal",
    "parallel_encode_segments",
    "psnr",
    "random_shot_script",
    "read_video",
    "score_detection",
    "segments_from_boundaries",
    "write_video",
]
