"""Frame: the fundamental raster unit of the synthetic video substrate.

The VGBL platform of Chang, Hsu & Shih (ICPPW 2007) treats video as the
basic presentation medium: scenarios are video segments, and interactive
objects are *mounted on the video frame*.  This module provides the frame
type everything else builds on — a thin, well-specified wrapper around a
C-contiguous ``uint8`` NumPy array of shape ``(height, width, 3)`` (RGB).

Performance notes (see DESIGN.md §6):

* every per-pixel operation here is vectorised; there are no Python loops
  over pixels;
* mutating operations (``fill_rect``, ``blit``, ``blend``) operate on
  *views* of the backing array in place — callers that need isolation use
  :meth:`Frame.copy` explicitly;
* histograms and difference metrics used by shot detection are computed
  with ``np.bincount``/``np.add.reduceat`` style kernels on flattened
  contiguous buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "CHANNELS",
    "Frame",
    "FrameSize",
    "blend_premultiplied",
    "clip_rect",
    "color_histogram",
    "frame_absdiff",
    "hist_l1_distance",
]

#: Number of colour channels in every frame (RGB).
CHANNELS = 3


@dataclass(frozen=True, slots=True)
class FrameSize:
    """Immutable (width, height) pair with convenience helpers.

    Widths and heights are measured in pixels and must be positive.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"frame size must be positive, got {self.width}x{self.height}"
            )

    @property
    def shape(self) -> Tuple[int, int, int]:
        """NumPy array shape ``(height, width, channels)`` for this size."""
        return (self.height, self.width, CHANNELS)

    @property
    def pixels(self) -> int:
        """Total pixel count (``width * height``)."""
        return self.width * self.height

    def contains(self, x: int, y: int) -> bool:
        """Return ``True`` if integer pixel coordinate (x, y) is in-bounds."""
        return 0 <= x < self.width and 0 <= y < self.height

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.width}x{self.height}"


def clip_rect(
    x: int, y: int, w: int, h: int, size: FrameSize
) -> Tuple[int, int, int, int]:
    """Clip rectangle ``(x, y, w, h)`` against a frame of ``size``.

    Returns the clipped ``(x0, y0, x1, y1)`` half-open box.  A rectangle
    entirely outside the frame clips to an empty box (``x0 == x1`` or
    ``y0 == y1``); callers can cheaply skip empty work.
    """
    x0 = min(max(0, x), size.width)
    y0 = min(max(0, y), size.height)
    x1 = min(size.width, x + max(0, w))
    y1 = min(size.height, y + max(0, h))
    if x1 < x0:
        x1 = x0
    if y1 < y0:
        y1 = y0
    return x0, y0, x1, y1


class Frame:
    """A single RGB video frame backed by a ``uint8`` NumPy array.

    Parameters
    ----------
    data:
        Array of shape ``(height, width, 3)``, dtype ``uint8``.  The frame
        takes ownership; it is made C-contiguous if it is not already.

    The class deliberately exposes its backing array (:attr:`data`) so the
    compositor and codecs can work on raw buffers, but all invariants
    (shape, dtype, contiguity) are established at construction.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        arr = np.asarray(data)
        if arr.ndim != 3 or arr.shape[2] != CHANNELS:
            raise ValueError(
                f"frame data must have shape (h, w, {CHANNELS}), got {arr.shape}"
            )
        if arr.dtype != np.uint8:
            raise TypeError(f"frame data must be uint8, got {arr.dtype}")
        self.data = np.ascontiguousarray(arr)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def blank(cls, size: FrameSize, color: Sequence[int] = (0, 0, 0)) -> "Frame":
        """Create a frame filled with a solid ``color`` (RGB tuple)."""
        data = np.empty(size.shape, dtype=np.uint8)
        data[...] = np.asarray(color, dtype=np.uint8)
        return cls(data)

    @classmethod
    def from_gradient(
        cls,
        size: FrameSize,
        top: Sequence[int],
        bottom: Sequence[int],
    ) -> "Frame":
        """Create a vertical linear gradient frame from ``top`` to ``bottom``.

        Used by the synthetic footage generator for cheap, visually
        distinct scene backgrounds.
        """
        t = np.linspace(0.0, 1.0, size.height, dtype=np.float32)[:, None]
        top_v = np.asarray(top, dtype=np.float32)
        bot_v = np.asarray(bottom, dtype=np.float32)
        rows = top_v[None, :] * (1.0 - t) + bot_v[None, :] * t  # (h, 3)
        data = np.broadcast_to(
            rows[:, None, :], size.shape
        ).astype(np.uint8, copy=True)
        return cls(data)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> FrameSize:
        """The frame's :class:`FrameSize`."""
        h, w, _ = self.data.shape
        return FrameSize(width=w, height=h)

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def nbytes(self) -> int:
        """Size of the raw pixel buffer in bytes."""
        return self.data.nbytes

    def copy(self) -> "Frame":
        """Deep copy of the frame (new backing buffer)."""
        return Frame(self.data.copy())

    def tobytes(self) -> bytes:
        """Raw C-order pixel bytes (used by the container and codecs)."""
        return self.data.tobytes()

    @classmethod
    def frombytes(cls, raw: bytes, size: FrameSize) -> "Frame":
        """Inverse of :meth:`tobytes` for a known frame size."""
        expected = size.pixels * CHANNELS
        if len(raw) != expected:
            raise ValueError(
                f"expected {expected} bytes for {size}, got {len(raw)}"
            )
        data = np.frombuffer(raw, dtype=np.uint8).reshape(size.shape)
        return cls(data.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            self.data.shape == other.data.shape
            and bool(np.array_equal(self.data, other.data))
        )

    def __hash__(self) -> int:  # frames are mutable; identity hash
        return id(self)

    def checksum(self) -> int:
        """Cheap order-sensitive checksum for regression tests and figures.

        Computed as a weighted sum of the flattened pixel buffer modulo
        ``2**32``; deterministic across platforms for identical content.
        """
        flat = self.data.reshape(-1).astype(np.uint64)
        weights = (np.arange(flat.size, dtype=np.uint64) % np.uint64(8191)) + np.uint64(1)
        return int((flat * weights).sum() % np.uint64(2**32))

    # ------------------------------------------------------------------
    # Mutating raster operations (in place, vectorised)
    # ------------------------------------------------------------------
    def fill_rect(
        self, x: int, y: int, w: int, h: int, color: Sequence[int]
    ) -> None:
        """Fill an axis-aligned rectangle with a solid colour (clipped)."""
        x0, y0, x1, y1 = clip_rect(x, y, w, h, self.size)
        if x1 > x0 and y1 > y0:
            self.data[y0:y1, x0:x1] = np.asarray(color, dtype=np.uint8)

    def draw_border(
        self, x: int, y: int, w: int, h: int, color: Sequence[int], thickness: int = 1
    ) -> None:
        """Draw a rectangle outline of the given ``thickness`` (clipped)."""
        t = max(1, thickness)
        self.fill_rect(x, y, w, t, color)
        self.fill_rect(x, y + h - t, w, t, color)
        self.fill_rect(x, y, t, h, color)
        self.fill_rect(x + w - t, y, t, h, color)

    def draw_disc(self, cx: int, cy: int, radius: int, color: Sequence[int]) -> None:
        """Fill a disc centred at (cx, cy); used for sprite rendering.

        The mask is computed with a broadcast distance kernel restricted to
        the disc's bounding box, so cost is O(radius^2) not O(frame).
        """
        if radius <= 0:
            return
        x0, y0, x1, y1 = clip_rect(cx - radius, cy - radius, 2 * radius + 1, 2 * radius + 1, self.size)
        if x1 <= x0 or y1 <= y0:
            return
        ys = np.arange(y0, y1, dtype=np.int64)[:, None]
        xs = np.arange(x0, x1, dtype=np.int64)[None, :]
        mask = (xs - cx) ** 2 + (ys - cy) ** 2 <= radius * radius
        region = self.data[y0:y1, x0:x1]
        region[mask] = np.asarray(color, dtype=np.uint8)

    def blit(self, src: np.ndarray, x: int, y: int) -> None:
        """Copy an RGB patch ``src`` (h, w, 3 uint8) onto the frame at (x, y).

        The patch is clipped against the frame bounds; out-of-bounds
        regions are silently dropped, matching sprite semantics.
        """
        if src.ndim != 3 or src.shape[2] != CHANNELS:
            raise ValueError("blit source must be (h, w, 3)")
        sh, sw = src.shape[:2]
        x0, y0, x1, y1 = clip_rect(x, y, sw, sh, self.size)
        if x1 <= x0 or y1 <= y0:
            return
        self.data[y0:y1, x0:x1] = src[y0 - y : y1 - y, x0 - x : x1 - x]

    def blend(self, src: np.ndarray, alpha: np.ndarray, x: int, y: int) -> None:
        """Alpha-blend an RGB patch onto the frame at (x, y).

        Parameters
        ----------
        src:
            ``(h, w, 3) uint8`` source pixels.
        alpha:
            ``(h, w) float32`` per-pixel opacity in [0, 1] (broadcast
            against the three channels).

        Implemented with a single fused float expression over the clipped
        region; the result is written back in place.
        """
        if src.shape[:2] != alpha.shape:
            raise ValueError("alpha mask must match source height/width")
        sh, sw = src.shape[:2]
        x0, y0, x1, y1 = clip_rect(x, y, sw, sh, self.size)
        if x1 <= x0 or y1 <= y0:
            return
        sub_src = src[y0 - y : y1 - y, x0 - x : x1 - x].astype(np.float32)
        sub_a = alpha[y0 - y : y1 - y, x0 - x : x1 - x].astype(np.float32)[..., None]
        dst = self.data[y0:y1, x0:x1].astype(np.float32)
        out = sub_src * sub_a + dst * (1.0 - sub_a)
        np.clip(out, 0.0, 255.0, out=out)
        self.data[y0:y1, x0:x1] = out.astype(np.uint8)

    # ------------------------------------------------------------------
    # Analysis helpers (read-only)
    # ------------------------------------------------------------------
    def to_gray(self) -> np.ndarray:
        """Luma (ITU-R BT.601) as a ``float32`` array of shape (h, w)."""
        f = self.data.astype(np.float32)
        return f[..., 0] * 0.299 + f[..., 1] * 0.587 + f[..., 2] * 0.114

    def mean_color(self) -> np.ndarray:
        """Per-channel mean as ``float64`` length-3 vector."""
        return self.data.reshape(-1, CHANNELS).mean(axis=0)


# ----------------------------------------------------------------------
# Free-standing kernels shared by shot detection and the compositor
# ----------------------------------------------------------------------

def color_histogram(frame: Frame, bins_per_channel: int = 8) -> np.ndarray:
    """Joint colour histogram used by the shot-boundary detector.

    Each pixel is quantised to ``bins_per_channel`` levels per channel and
    mapped to a single joint bin index; counts are accumulated with
    ``np.bincount`` over the flattened contiguous buffer.  Returns a
    normalised ``float64`` vector of length ``bins_per_channel**3`` that
    sums to 1.
    """
    if not 2 <= bins_per_channel <= 64:
        raise ValueError("bins_per_channel must be in [2, 64]")
    b = bins_per_channel
    q = (frame.data.astype(np.uint32) * b) >> 8  # quantise 0..255 -> 0..b-1
    idx = (q[..., 0] * b + q[..., 1]) * b + q[..., 2]
    counts = np.bincount(idx.reshape(-1), minlength=b * b * b)
    total = counts.sum()
    return counts.astype(np.float64) / (total if total else 1)


def hist_l1_distance(h1: np.ndarray, h2: np.ndarray) -> float:
    """L1 distance between two normalised histograms, in [0, 2]."""
    if h1.shape != h2.shape:
        raise ValueError("histogram shapes differ")
    return float(np.abs(h1 - h2).sum())


def frame_absdiff(a: Frame, b: Frame) -> float:
    """Mean absolute pixel difference between two equal-size frames."""
    if a.data.shape != b.data.shape:
        raise ValueError("frames must be the same size")
    return float(
        np.abs(a.data.astype(np.int16) - b.data.astype(np.int16)).mean()
    )


def blend_premultiplied(
    dst: np.ndarray, src_premul: np.ndarray, one_minus_alpha: np.ndarray
) -> np.ndarray:
    """Composite a premultiplied source over ``dst`` (both float32).

    ``out = src_premul + dst * one_minus_alpha``.  Exposed for the
    compositor's batch path which premultiplies object layers once and
    reuses them across frames (an ablation measured in
    ``benchmarks/bench_ablations.py``).
    """
    return src_premul + dst * one_minus_alpha
