"""RVID: the on-disk container for interactive-video segments.

The scenario editor "divides video into scenario components" (§4.1) and
the runtime player seeks between segments when the player triggers a
transition.  RVID is the container that makes this cheap: a flat chunked
file with a *segment index* so any segment (and any frame inside it) can
be located with one index lookup, and every segment is independently
decodable (codecs reset at segment boundaries).

Layout (all little-endian)::

    magic   "RVID"            4 bytes
    version u16               currently 1
    width   u16
    height  u16
    fps     f32
    codec   u8 len + utf-8    codec registry name
    params  u8 len + utf-8    JSON codec kwargs
    nseg    u32
    -- per segment: nframes u32, then nframes x (u32 payload length)
    -- then all payloads, segment by segment, frame by frame

The whole header (including the index) is written before any payload so a
streaming client can fetch the index first and plan prefetches (E5).
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple, Union

from .codec import Codec, get_codec
from .frame import Frame, FrameSize

__all__ = [
    "ContainerError",
    "RVID_MAGIC",
    "SegmentIndexEntry",
    "VideoReader",
    "VideoWriter",
    "read_video",
    "write_video",
]

RVID_MAGIC = b"RVID"
_VERSION = 1


class ContainerError(ValueError):
    """Raised on malformed container data."""


@dataclass(frozen=True, slots=True)
class SegmentIndexEntry:
    """Index record for one segment.

    ``offset`` is the absolute byte offset of the segment's first payload;
    ``frame_lengths`` are the payload sizes, so frame *k*'s payload starts
    at ``offset + sum(frame_lengths[:k])``.
    """

    segment_id: int
    offset: int
    frame_lengths: Tuple[int, ...]

    @property
    def frame_count(self) -> int:
        return len(self.frame_lengths)

    @property
    def byte_size(self) -> int:
        return sum(self.frame_lengths)

    def frame_offset(self, k: int) -> int:
        """Absolute byte offset of frame ``k``'s payload."""
        if not 0 <= k < self.frame_count:
            raise IndexError(f"frame {k} out of range for segment {self.segment_id}")
        return self.offset + sum(self.frame_lengths[:k])


def _write_str(fh: BinaryIO, s: str) -> None:
    raw = s.encode("utf-8")
    if len(raw) > 255:
        raise ContainerError("string field too long")
    fh.write(struct.pack("<B", len(raw)))
    fh.write(raw)


def _read_str(fh: BinaryIO) -> str:
    (n,) = struct.unpack("<B", _read_exact(fh, 1))
    return _read_exact(fh, n).decode("utf-8")


def _read_exact(fh: BinaryIO, n: int) -> bytes:
    buf = fh.read(n)
    if len(buf) != n:
        raise ContainerError("truncated container")
    return buf


class VideoWriter:
    """Accumulates encoded segments and serialises an RVID stream.

    Usage::

        w = VideoWriter(size, fps=24.0, codec_name="delta")
        w.add_segment(frames_a)
        w.add_segment(frames_b)
        data = w.tobytes()          # or w.save(path)
    """

    def __init__(
        self,
        size: FrameSize,
        fps: float = 24.0,
        codec_name: str = "rle",
        codec_params: Optional[Dict] = None,
    ) -> None:
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.size = size
        self.fps = float(fps)
        self.codec_name = codec_name
        self.codec_params = dict(codec_params or {})
        # Validate codec name/params eagerly.
        self._codec: Codec = get_codec(codec_name, **self.codec_params)
        self._segments: List[List[bytes]] = []

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def add_segment(self, frames: Sequence[Frame]) -> int:
        """Encode ``frames`` as a new independent segment; returns its id."""
        if not frames:
            raise ValueError("segment must contain at least one frame")
        for f in frames:
            if f.size != self.size:
                raise ValueError(
                    f"frame size {f.size} does not match container size {self.size}"
                )
        payloads = self._codec.encode_all(frames)
        self._segments.append(payloads)
        return len(self._segments) - 1

    def add_encoded_segment(self, payloads: Sequence[bytes]) -> int:
        """Add an already-encoded segment (e.g. spliced from another file)."""
        if not payloads:
            raise ValueError("segment must contain at least one payload")
        self._segments.append(list(payloads))
        return len(self._segments) - 1

    def tobytes(self) -> bytes:
        """Serialise the container to a byte string."""
        if not self._segments:
            raise ContainerError("cannot write a container with no segments")
        out = io.BytesIO()
        out.write(RVID_MAGIC)
        out.write(struct.pack("<HHHf", _VERSION, self.size.width, self.size.height, self.fps))
        _write_str(out, self.codec_name)
        _write_str(out, json.dumps(self.codec_params, sort_keys=True))
        out.write(struct.pack("<I", len(self._segments)))
        for seg in self._segments:
            out.write(struct.pack("<I", len(seg)))
            for payload in seg:
                out.write(struct.pack("<I", len(payload)))
        for seg in self._segments:
            for payload in seg:
                out.write(payload)
        return out.getvalue()

    def save(self, path: Union[str, Path]) -> int:
        """Write the container to ``path``; returns bytes written."""
        data = self.tobytes()
        Path(path).write_bytes(data)
        return len(data)


class VideoReader:
    """Random-access reader over an RVID byte string.

    The reader parses the header and index once; segment and frame reads
    are then O(1) index lookups plus a decode.  Decoding a frame mid-
    segment requires decoding from the segment start when the codec is
    temporal (``delta``) — segments are the seek granularity by design,
    which is why the scenario editor keeps segments short.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        fh = io.BytesIO(data)
        if _read_exact(fh, 4) != RVID_MAGIC:
            raise ContainerError("bad magic: not an RVID container")
        version, w, h, fps = struct.unpack("<HHHf", _read_exact(fh, 10))
        if version != _VERSION:
            raise ContainerError(f"unsupported RVID version {version}")
        self.size = FrameSize(w, h)
        self.fps = float(fps)
        self.codec_name = _read_str(fh)
        try:
            self.codec_params: Dict = json.loads(_read_str(fh))
        except json.JSONDecodeError as exc:
            raise ContainerError(f"bad codec params: {exc}") from exc
        (nseg,) = struct.unpack("<I", _read_exact(fh, 4))
        lengths_per_seg: List[Tuple[int, ...]] = []
        for _ in range(nseg):
            (nframes,) = struct.unpack("<I", _read_exact(fh, 4))
            if nframes == 0:
                raise ContainerError("empty segment in index")
            lens = struct.unpack(f"<{nframes}I", _read_exact(fh, 4 * nframes))
            lengths_per_seg.append(lens)
        offset = fh.tell()
        self.index: List[SegmentIndexEntry] = []
        for sid, lens in enumerate(lengths_per_seg):
            self.index.append(SegmentIndexEntry(sid, offset, lens))
            offset += sum(lens)
        if offset != len(data):
            raise ContainerError(
                f"payload size mismatch: index says {offset}, file has {len(data)}"
            )

    # ------------------------------------------------------------------
    @property
    def segment_count(self) -> int:
        return len(self.index)

    @property
    def total_frames(self) -> int:
        return sum(e.frame_count for e in self.index)

    @property
    def total_bytes(self) -> int:
        return len(self._data)

    def segment_payloads(self, segment_id: int) -> List[bytes]:
        """Raw encoded payloads of one segment (no decode)."""
        entry = self._entry(segment_id)
        out: List[bytes] = []
        pos = entry.offset
        for ln in entry.frame_lengths:
            out.append(self._data[pos : pos + ln])
            pos += ln
        return out

    def decode_segment(self, segment_id: int) -> List[Frame]:
        """Decode all frames of one segment."""
        codec = get_codec(self.codec_name, **self.codec_params)
        return codec.decode_all(self.segment_payloads(segment_id), self.size)

    def decode_frame(self, segment_id: int, frame_idx: int) -> Frame:
        """Decode a single frame (decodes the prefix for temporal codecs)."""
        entry = self._entry(segment_id)
        if not 0 <= frame_idx < entry.frame_count:
            raise IndexError(
                f"frame {frame_idx} out of range for segment {segment_id}"
            )
        codec = get_codec(self.codec_name, **self.codec_params)
        codec.reset()
        payloads = self.segment_payloads(segment_id)
        frame: Optional[Frame] = None
        for payload in payloads[: frame_idx + 1]:
            frame = codec.decode(payload, self.size)
        assert frame is not None
        return frame

    def segment_duration_seconds(self, segment_id: int) -> float:
        """Playback duration of a segment at the container's fps."""
        return self._entry(segment_id).frame_count / self.fps

    def _entry(self, segment_id: int) -> SegmentIndexEntry:
        if not 0 <= segment_id < len(self.index):
            raise IndexError(f"segment {segment_id} out of range")
        return self.index[segment_id]


def write_video(
    path: Union[str, Path],
    segments: Sequence[Sequence[Frame]],
    fps: float = 24.0,
    codec_name: str = "rle",
    codec_params: Optional[Dict] = None,
) -> int:
    """Convenience: encode ``segments`` and write an RVID file."""
    if not segments:
        raise ValueError("at least one segment required")
    size = segments[0][0].size
    writer = VideoWriter(size, fps=fps, codec_name=codec_name, codec_params=codec_params)
    for seg in segments:
        writer.add_segment(seg)
    return writer.save(path)


def read_video(path: Union[str, Path]) -> VideoReader:
    """Open an RVID file for random access."""
    return VideoReader(Path(path).read_bytes())
