"""Synthetic footage generation: the stand-in for real cameras.

The paper's authoring workflow starts with "video files from network or
video cameras" (§4.1).  Neither is available in this environment, so the
reproduction substitutes a deterministic synthetic footage generator that
produces multi-shot clips with known ground truth:

* each *shot* has a distinct background (gradient or textured), an
  optional set of moving sprites, and a duration in frames;
* shots are joined by hard cuts or linear cross-fades;
* the generator records the exact boundary frame indices so the
  shot-detection experiments (E3) can score precision/recall against
  ground truth.

Everything is driven by a :class:`numpy.random.Generator` seeded by the
caller, so footage is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .frame import CHANNELS, Frame, FrameSize

__all__ = [
    "MovingSprite",
    "ShotSpec",
    "SyntheticClip",
    "TransitionKind",
    "generate_clip",
    "random_shot_script",
]


class TransitionKind:
    """Transition styles between consecutive shots."""

    CUT = "cut"
    FADE = "fade"

    ALL = (CUT, FADE)


@dataclass(slots=True)
class MovingSprite:
    """A solid-colour disc moving linearly across the shot.

    Sprites give frames intra-shot motion so that a naive "any change"
    detector over-segments — the property the histogram detector must be
    robust to (tested in E3).
    """

    color: Tuple[int, int, int]
    radius: int
    start_xy: Tuple[float, float]
    velocity_xy: Tuple[float, float]

    def position_at(self, t: int) -> Tuple[int, int]:
        """Integer pixel position of the sprite centre at frame ``t``."""
        return (
            int(round(self.start_xy[0] + self.velocity_xy[0] * t)),
            int(round(self.start_xy[1] + self.velocity_xy[1] * t)),
        )


@dataclass(slots=True)
class ShotSpec:
    """Specification of one shot: background, sprites, duration.

    ``top_color``/``bottom_color`` define the gradient background;
    ``noise_level`` adds per-frame uniform noise (camera grain) with the
    given peak amplitude.
    """

    duration: int
    top_color: Tuple[int, int, int]
    bottom_color: Tuple[int, int, int]
    sprites: List[MovingSprite] = field(default_factory=list)
    noise_level: int = 0
    transition_to_next: str = TransitionKind.CUT
    fade_frames: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("shot duration must be positive")
        if self.transition_to_next not in TransitionKind.ALL:
            raise ValueError(f"unknown transition {self.transition_to_next!r}")
        if self.transition_to_next == TransitionKind.FADE and self.fade_frames <= 0:
            raise ValueError("fade transition requires fade_frames > 0")


@dataclass(slots=True)
class SyntheticClip:
    """A rendered synthetic clip plus its ground truth.

    Attributes
    ----------
    frames:
        List of :class:`Frame` in playback order.
    boundaries:
        Frame indices where a new shot *starts* (excluding frame 0).  For
        fades the boundary is placed at the midpoint of the fade window,
        matching the convention used when scoring detectors.
    shot_spans:
        ``(start, end)`` half-open frame ranges of each shot's pure
        (non-fade) content.
    fps:
        Nominal frames per second (metadata only; playback clocks use it).
    """

    frames: List[Frame]
    boundaries: List[int]
    shot_spans: List[Tuple[int, int]]
    fps: float = 24.0

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    @property
    def size(self) -> FrameSize:
        if not self.frames:
            raise ValueError("clip has no frames")
        return self.frames[0].size

    @property
    def duration_seconds(self) -> float:
        return self.frame_count / self.fps

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)


def _render_shot_frame(
    size: FrameSize,
    spec: ShotSpec,
    t: int,
    rng: Optional[np.random.Generator],
) -> Frame:
    """Render frame ``t`` (0-based within the shot) of a shot spec."""
    frame = Frame.from_gradient(size, spec.top_color, spec.bottom_color)
    for sprite in spec.sprites:
        cx, cy = sprite.position_at(t)
        frame.draw_disc(cx, cy, sprite.radius, sprite.color)
    if spec.noise_level > 0:
        if rng is None:
            raise ValueError("noise_level > 0 requires an rng")
        noise = rng.integers(
            -spec.noise_level,
            spec.noise_level + 1,
            size=size.shape,
            dtype=np.int16,
        )
        noisy = frame.data.astype(np.int16) + noise
        np.clip(noisy, 0, 255, out=noisy)
        frame.data[...] = noisy.astype(np.uint8)
    return frame


def _crossfade(a: Frame, b: Frame, alpha: float) -> Frame:
    """Linear blend ``(1-alpha)*a + alpha*b`` as a new frame."""
    fa = a.data.astype(np.float32)
    fb = b.data.astype(np.float32)
    out = fa * (1.0 - alpha) + fb * alpha
    return Frame(out.astype(np.uint8))


def generate_clip(
    size: FrameSize,
    shots: Sequence[ShotSpec],
    fps: float = 24.0,
    seed: Optional[int] = None,
) -> SyntheticClip:
    """Render a multi-shot clip from shot specifications.

    Fade transitions insert ``fade_frames`` blended frames *between* the
    shots they join; those frames belong to neither shot span, and the
    ground-truth boundary is recorded at the fade midpoint.

    Parameters
    ----------
    size:
        Frame size of the whole clip.
    shots:
        Ordered shot specs.  The ``transition_to_next`` of the final shot
        is ignored.
    fps:
        Nominal playback rate stored in the clip metadata.
    seed:
        Seed for grain noise; required if any shot has ``noise_level > 0``.
    """
    if not shots:
        raise ValueError("at least one shot is required")
    rng = np.random.default_rng(seed) if seed is not None else None

    frames: List[Frame] = []
    boundaries: List[int] = []
    spans: List[Tuple[int, int]] = []

    for i, spec in enumerate(shots):
        if i > 0:
            prev = shots[i - 1]
            if prev.transition_to_next == TransitionKind.FADE:
                fade_n = prev.fade_frames
                last = frames[-1]
                first_next = _render_shot_frame(size, spec, 0, rng)
                fade_start = len(frames)
                for k in range(1, fade_n + 1):
                    alpha = k / (fade_n + 1)
                    frames.append(_crossfade(last, first_next, alpha))
                boundaries.append(fade_start + fade_n // 2)
            else:
                boundaries.append(len(frames))
        start = len(frames)
        for t in range(spec.duration):
            frames.append(_render_shot_frame(size, spec, t, rng))
        spans.append((start, len(frames)))

    return SyntheticClip(frames=frames, boundaries=boundaries, shot_spans=spans, fps=fps)


def random_shot_script(
    n_shots: int,
    rng: np.random.Generator,
    min_duration: int = 12,
    max_duration: int = 36,
    size: FrameSize = FrameSize(160, 120),
    sprite_prob: float = 0.7,
    fade_prob: float = 0.25,
    noise_level: int = 4,
) -> List[ShotSpec]:
    """Draw a random but reproducible shot script for tests and benches.

    Consecutive shots are guaranteed to have visually distant background
    palettes (minimum L1 colour distance) so that ground-truth boundaries
    are detectable in principle — the generator models an editor cutting
    between different places, which is exactly the paper's notion of a
    scenario ("continuous shots with the same place or characters").
    """
    if n_shots <= 0:
        raise ValueError("n_shots must be positive")
    if min_duration < 2 or max_duration < min_duration:
        raise ValueError("invalid duration bounds")

    def draw_palette() -> Tuple[Tuple[int, int, int], Tuple[int, int, int]]:
        base = rng.integers(0, 256, size=CHANNELS)
        delta = rng.integers(-60, 61, size=CHANNELS)
        top = tuple(int(v) for v in np.clip(base, 0, 255))
        bottom = tuple(int(v) for v in np.clip(base + delta, 0, 255))
        return top, bottom  # type: ignore[return-value]

    shots: List[ShotSpec] = []
    prev_top: Optional[np.ndarray] = None
    for i in range(n_shots):
        top, bottom = draw_palette()
        # Re-draw until this shot's palette is far from the previous one.
        tries = 0
        while (
            prev_top is not None
            and np.abs(np.asarray(top, dtype=np.int64) - prev_top).sum() < 160
            and tries < 64
        ):
            top, bottom = draw_palette()
            tries += 1
        prev_top = np.asarray(top, dtype=np.int64)

        sprites: List[MovingSprite] = []
        if rng.random() < sprite_prob:
            for _ in range(int(rng.integers(1, 4))):
                sprites.append(
                    MovingSprite(
                        color=tuple(int(v) for v in rng.integers(0, 256, size=3)),
                        radius=int(rng.integers(4, max(5, size.height // 8))),
                        start_xy=(
                            float(rng.uniform(0, size.width)),
                            float(rng.uniform(0, size.height)),
                        ),
                        velocity_xy=(
                            float(rng.uniform(-3, 3)),
                            float(rng.uniform(-2, 2)),
                        ),
                    )
                )
        duration = int(rng.integers(min_duration, max_duration + 1))
        use_fade = i < n_shots - 1 and rng.random() < fade_prob
        shots.append(
            ShotSpec(
                duration=duration,
                top_color=top,
                bottom_color=bottom,
                sprites=sprites,
                noise_level=noise_level,
                transition_to_next=(
                    TransitionKind.FADE if use_fade else TransitionKind.CUT
                ),
                fade_frames=4 if use_fade else 0,
            )
        )
    return shots
