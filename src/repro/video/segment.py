"""Video segments and timelines: the editing model of the scenario editor.

§2.1: "The basic idea of interactive video is to divide the video file
into several small video segments as scenarios."  This module provides
the in-memory editing representation: a :class:`VideoSegment` is a named,
contiguous run of frames; a :class:`Timeline` is an ordered arrangement
of segments with cut/splice/trim operations, from which the editor
produces the container segments that the scenario graph references.

Segments hold *references* to frame lists (views of the source clip's
frame sequence, not pixel copies) until exported, keeping editing cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .frame import Frame, FrameSize

__all__ = ["SegmentError", "Timeline", "VideoSegment", "segments_from_boundaries"]


class SegmentError(ValueError):
    """Raised on invalid segment operations."""


@dataclass(slots=True)
class VideoSegment:
    """A named contiguous run of frames.

    Parameters
    ----------
    name:
        Editor-visible label ("Classroom wide shot").
    frames:
        The segment's frames, in order.  At least one frame.
    source:
        Optional provenance string (file the segment was cut from).
    source_span:
        Optional ``(start, end)`` frame range in the source clip.
    """

    name: str
    frames: List[Frame]
    source: Optional[str] = None
    source_span: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SegmentError("segment name must be non-empty")
        if not self.frames:
            raise SegmentError(f"segment {self.name!r} has no frames")
        size0 = self.frames[0].size
        for f in self.frames:
            if f.size != size0:
                raise SegmentError(
                    f"segment {self.name!r} mixes frame sizes {size0} and {f.size}"
                )

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    @property
    def size(self) -> FrameSize:
        return self.frames[0].size

    def duration_seconds(self, fps: float) -> float:
        """Playback duration at ``fps``."""
        if fps <= 0:
            raise SegmentError("fps must be positive")
        return self.frame_count / fps

    def trim(self, start: int, end: int, name: Optional[str] = None) -> "VideoSegment":
        """Return a new segment containing frames ``[start, end)``."""
        if not 0 <= start < end <= self.frame_count:
            raise SegmentError(
                f"invalid trim [{start}, {end}) of {self.frame_count}-frame segment"
            )
        span = None
        if self.source_span is not None:
            s0, _ = self.source_span
            span = (s0 + start, s0 + end)
        return VideoSegment(
            name=name or f"{self.name}[{start}:{end}]",
            frames=self.frames[start:end],
            source=self.source,
            source_span=span,
        )

    def split(self, at: int) -> Tuple["VideoSegment", "VideoSegment"]:
        """Split into two segments at frame ``at`` (first gets [0, at))."""
        if not 0 < at < self.frame_count:
            raise SegmentError(f"split point {at} must be interior")
        return self.trim(0, at, f"{self.name}/a"), self.trim(
            at, self.frame_count, f"{self.name}/b"
        )

    def concat(self, other: "VideoSegment", name: Optional[str] = None) -> "VideoSegment":
        """Splice ``other`` after this segment (sizes must match)."""
        if other.size != self.size:
            raise SegmentError("cannot concat segments of different frame sizes")
        return VideoSegment(
            name=name or f"{self.name}+{other.name}",
            frames=self.frames + other.frames,
            source=self.source if self.source == other.source else None,
            source_span=None,
        )


def segments_from_boundaries(
    frames: Sequence[Frame],
    boundaries: Sequence[int],
    name_prefix: str = "scene",
    source: Optional[str] = None,
) -> List[VideoSegment]:
    """Cut a frame sequence into segments at the given boundary indices.

    ``boundaries`` are new-shot start indices (as produced by
    :func:`repro.video.shots.detect_shots`); indices outside ``(0, n)``
    and duplicates are ignored.  This is the bridge from shot detection to
    the scenario editor's proposed segment list.
    """
    n = len(frames)
    if n == 0:
        raise SegmentError("no frames to segment")
    cuts = sorted({b for b in boundaries if 0 < b < n})
    starts = [0] + cuts
    ends = cuts + [n]
    return [
        VideoSegment(
            name=f"{name_prefix}-{i:03d}",
            frames=list(frames[s:e]),
            source=source,
            source_span=(s, e),
        )
        for i, (s, e) in enumerate(zip(starts, ends))
    ]


class Timeline:
    """An ordered, named arrangement of segments under editing.

    The timeline is what the authoring tool's segmentation strip (Fig. 1)
    displays: editors reorder, rename, merge and re-split the proposed
    segments before committing them as scenarios.
    """

    def __init__(self, segments: Optional[Iterable[VideoSegment]] = None) -> None:
        self._segments: List[VideoSegment] = list(segments or [])
        self._check_names()

    def _check_names(self) -> None:
        names = [s.name for s in self._segments]
        if len(set(names)) != len(names):
            raise SegmentError("duplicate segment names on timeline")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self):
        return iter(self._segments)

    def __getitem__(self, idx: int) -> VideoSegment:
        return self._segments[idx]

    @property
    def names(self) -> List[str]:
        return [s.name for s in self._segments]

    @property
    def total_frames(self) -> int:
        return sum(s.frame_count for s in self._segments)

    def index_of(self, name: str) -> int:
        """Position of the segment named ``name``."""
        for i, s in enumerate(self._segments):
            if s.name == name:
                return i
        raise SegmentError(f"no segment named {name!r}")

    def get(self, name: str) -> VideoSegment:
        return self._segments[self.index_of(name)]

    # ------------------------------------------------------------------
    def append(self, segment: VideoSegment) -> None:
        """Add a segment at the end."""
        if segment.name in self.names:
            raise SegmentError(f"duplicate segment name {segment.name!r}")
        if self._segments and segment.size != self._segments[0].size:
            raise SegmentError("timeline mixes frame sizes")
        self._segments.append(segment)

    def remove(self, name: str) -> VideoSegment:
        """Remove and return the named segment."""
        return self._segments.pop(self.index_of(name))

    def rename(self, old: str, new: str) -> None:
        """Rename a segment (names must stay unique)."""
        if not new:
            raise SegmentError("new name must be non-empty")
        if new != old and new in self.names:
            raise SegmentError(f"name {new!r} already on timeline")
        i = self.index_of(old)
        s = self._segments[i]
        self._segments[i] = VideoSegment(
            name=new, frames=s.frames, source=s.source, source_span=s.source_span
        )

    def move(self, name: str, new_index: int) -> None:
        """Reorder: move the named segment to ``new_index``."""
        if not 0 <= new_index < len(self._segments):
            raise SegmentError(f"index {new_index} out of range")
        s = self.remove(name)
        self._segments.insert(new_index, s)

    def merge(self, first: str, second: str, name: Optional[str] = None) -> str:
        """Merge two adjacent segments into one; returns the new name."""
        i, j = self.index_of(first), self.index_of(second)
        if j != i + 1:
            raise SegmentError(f"{first!r} and {second!r} are not adjacent")
        merged = self._segments[i].concat(self._segments[j], name=name)
        if merged.name in (n for k, n in enumerate(self.names) if k not in (i, j)):
            raise SegmentError(f"merged name {merged.name!r} collides")
        self._segments[i : j + 1] = [merged]
        return merged.name

    def split(self, name: str, at: int) -> Tuple[str, str]:
        """Split the named segment at frame ``at``; returns the new names."""
        i = self.index_of(name)
        a, b = self._segments[i].split(at)
        for nm in (a.name, b.name):
            if nm in (n for k, n in enumerate(self.names) if k != i):
                raise SegmentError(f"split name {nm!r} collides")
        self._segments[i : i + 1] = [a, b]
        return a.name, b.name

    def as_frame_lists(self) -> List[List[Frame]]:
        """Export: per-segment frame lists for the container writer."""
        return [list(s.frames) for s in self._segments]
