"""Shot-boundary detection: the kernel behind the scenario editor.

§4.1: "The users just need to select video files … such that video can be
divided into scenario components by the authoring tool."  That automatic
division is a shot-boundary detector.  Two classic detectors are
implemented (both vectorised):

``histogram``
    Joint-colour-histogram L1 distance between consecutive frames with an
    adaptive threshold (mean + k·std over a sliding window).  Robust to
    object motion, the default.
``pixel``
    Mean absolute pixel difference; cheap but fires on large motion —
    kept as the ablation baseline (E3 / bench_ablations).

Fades are handled by a twin-threshold pass: a run of consecutive
medium-difference frames bounded by cumulative drift above the hard
threshold is collapsed into a single boundary at the run midpoint —
matching the ground-truth convention in :mod:`repro.video.synthesis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence, Tuple

import numpy as np

from .frame import Frame, color_histogram, frame_absdiff

__all__ = [
    "BoundaryScore",
    "DetectorConfig",
    "ShotDetector",
    "detect_shots",
    "score_detection",
    "signal_histogram_l1",
    "signal_pixel_absdiff",
]

Metric = Literal["histogram", "pixel"]


def signal_histogram_l1(
    frames: Sequence[Frame], bins_per_channel: int = 8
) -> np.ndarray:
    """Per-transition histogram L1 distance; length ``len(frames) - 1``."""
    if len(frames) < 2:
        return np.zeros(0, dtype=np.float64)
    hists = [color_histogram(f, bins_per_channel) for f in frames]
    stacked = np.stack(hists)  # (n, bins^3)
    return np.abs(np.diff(stacked, axis=0)).sum(axis=1)


def signal_pixel_absdiff(frames: Sequence[Frame]) -> np.ndarray:
    """Per-transition mean absolute pixel difference; length n-1."""
    if len(frames) < 2:
        return np.zeros(0, dtype=np.float64)
    return np.asarray(
        [frame_absdiff(frames[i], frames[i + 1]) for i in range(len(frames) - 1)],
        dtype=np.float64,
    )


@dataclass(frozen=True, slots=True)
class DetectorConfig:
    """Tuning knobs for :class:`ShotDetector`.

    ``k_hard``/``k_soft`` scale the adaptive threshold (global mean +
    k·std of the difference signal).  ``min_shot_len`` suppresses
    boundaries closer than this many frames to the previous one — the
    editor's guard against over-segmentation, since scenarios shorter than
    ~half a second cannot carry interactions.
    """

    metric: Metric = "histogram"
    bins_per_channel: int = 8
    k_hard: float = 3.0
    k_soft: float = 1.2
    min_shot_len: int = 5
    max_fade_len: int = 12
    #: absolute hard threshold: any transition above this is a cut even if
    #: the adaptive threshold was inflated past it (e.g. by a fade run).
    #: Histogram L1 distance is bounded by 2.0, so 1.5 means "three
    #: quarters of the colour mass moved" — unambiguous for any content.
    #: Set to None for scale-dependent metrics (pixel).
    abs_hard: Optional[float] = 1.5
    #: absolute noise floor: transitions below this are never cuts, even if
    #: the adaptive threshold of a very quiet clip dips under it (sprite
    #: motion / grain in an otherwise static shot).  0.15 means less than
    #: 7.5% of the colour mass moved — sub-cut by any standard.
    abs_min: Optional[float] = 0.15

    def __post_init__(self) -> None:
        if self.metric not in ("histogram", "pixel"):
            raise ValueError(f"unknown metric {self.metric!r}")
        if self.k_hard < self.k_soft:
            raise ValueError("k_hard must be >= k_soft")
        if self.min_shot_len < 1:
            raise ValueError("min_shot_len must be >= 1")


@dataclass(slots=True)
class BoundaryScore:
    """A detected boundary: frame index where the new shot starts, plus
    the difference value that triggered it and whether it came from the
    gradual (fade) pass."""

    frame_index: int
    score: float
    gradual: bool = False


class ShotDetector:
    """Adaptive-threshold shot-boundary detector.

    The detector is deliberately deterministic and stateless across calls;
    the scenario editor invokes :meth:`detect` once per imported clip and
    presents the proposed cut list for the author to accept or adjust.
    """

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()

    # ------------------------------------------------------------------
    def difference_signal(self, frames: Sequence[Frame]) -> np.ndarray:
        """The raw inter-frame difference signal for the configured metric."""
        if self.config.metric == "histogram":
            return signal_histogram_l1(frames, self.config.bins_per_channel)
        return signal_pixel_absdiff(frames)

    def thresholds(self, signal: np.ndarray) -> Tuple[float, float]:
        """Adaptive (hard, soft) thresholds for a difference signal."""
        if signal.size == 0:
            return float("inf"), float("inf")
        mu = float(signal.mean())
        sd = float(signal.std())
        hard = mu + self.config.k_hard * sd
        soft = mu + self.config.k_soft * sd
        if self.config.metric == "histogram":
            if self.config.abs_hard is not None:
                hard = min(hard, self.config.abs_hard)
                soft = min(soft, hard)
            if self.config.abs_min is not None:
                hard = max(hard, self.config.abs_min)
                soft = max(soft, self.config.abs_min / 2.0)
        return hard, soft

    def detect(self, frames: Sequence[Frame]) -> List[BoundaryScore]:
        """Detect shot boundaries; returns start indices of new shots.

        Pass 1 marks hard cuts (signal > hard threshold).  Pass 2 scans
        soft-threshold runs (possible fades): a maximal run of consecutive
        above-soft transitions, no longer than ``max_fade_len``, whose
        summed difference exceeds the hard threshold, yields one gradual
        boundary at its midpoint.  Finally boundaries violating
        ``min_shot_len`` are pruned keeping the stronger score.
        """
        return self.detect_from_signal(self.difference_signal(frames))

    def detect_from_signal(self, signal: np.ndarray) -> List[BoundaryScore]:
        """Boundary detection over a precomputed difference signal.

        Split out so the scenario editor can feed the signal computed by
        the parallel kernel (:mod:`repro.video.parallel`) and get results
        identical to the serial path.
        """
        if signal.size == 0:
            return []
        hard, soft = self.thresholds(signal)

        raw: List[BoundaryScore] = []
        above_hard = signal > hard
        for i in np.nonzero(above_hard)[0]:
            raw.append(BoundaryScore(frame_index=int(i) + 1, score=float(signal[i])))

        # Gradual pass over soft runs that contain no hard cut.
        above_soft = (signal > soft) & ~above_hard
        i = 0
        n = signal.size
        while i < n:
            if not above_soft[i]:
                i += 1
                continue
            j = i
            while j < n and above_soft[j]:
                j += 1
            run_len = j - i
            run_sum = float(signal[i:j].sum())
            if 2 <= run_len <= self.config.max_fade_len and run_sum > hard:
                mid = (i + j) // 2 + 1
                raw.append(BoundaryScore(frame_index=mid, score=run_sum, gradual=True))
            i = j

        raw.sort(key=lambda b: b.frame_index)
        return self._prune(raw)

    def _prune(self, boundaries: List[BoundaryScore]) -> List[BoundaryScore]:
        """Enforce ``min_shot_len`` spacing, keeping the stronger boundary."""
        pruned: List[BoundaryScore] = []
        for b in boundaries:
            if pruned and b.frame_index - pruned[-1].frame_index < self.config.min_shot_len:
                if b.score > pruned[-1].score:
                    pruned[-1] = b
                continue
            pruned.append(b)
        return pruned


def detect_shots(
    frames: Sequence[Frame], config: Optional[DetectorConfig] = None
) -> List[int]:
    """Convenience wrapper: boundary frame indices (new-shot starts)."""
    return [b.frame_index for b in ShotDetector(config).detect(frames)]


def score_detection(
    detected: Sequence[int],
    truth: Sequence[int],
    tolerance: int = 2,
) -> Tuple[float, float, float]:
    """Precision / recall / F1 of detected boundaries vs ground truth.

    A detected boundary matches a truth boundary if within ``tolerance``
    frames; matching is greedy one-to-one in sorted order.
    """
    det = sorted(detected)
    tru = sorted(truth)
    matched_t: set = set()
    tp = 0
    for d in det:
        best = None
        best_dist = tolerance + 1
        for ti, t in enumerate(tru):
            if ti in matched_t:
                continue
            dist = abs(d - t)
            if dist < best_dist:
                best, best_dist = ti, dist
        if best is not None:
            matched_t.add(best)
            tp += 1
    precision = tp / len(det) if det else (1.0 if not tru else 0.0)
    recall = tp / len(tru) if tru else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return precision, recall, f1
