"""Pure-NumPy video codecs for the RVID container.

The runtime gaming platform is "an augmented video player" (§4.3); in the
authors' system the player decoded real encoded video.  This module
provides the encoding substrate: a small family of codecs with a common
interface, chosen to span the design space a segment-streaming system
cares about:

``raw``
    Identity; the throughput baseline.
``rle``
    Byte-level run-length coding, vectorised with ``np.diff``/boundary
    indices.  Strong on synthetic footage (flat regions), weak on noise.
``delta``
    Per-frame delta against the previous frame (intra period configurable)
    followed by RLE of the sparse difference; models the temporal
    redundancy that interactive video segments exhibit.
``quant``
    Lossy uniform quantiser (keep the top ``bits`` of each channel) then
    RLE; models the bitrate/quality dial, scored with PSNR.

All encoders consume/produce ``bytes`` so the container and the streaming
substrate treat payloads opaquely.  Every kernel is vectorised; encoding
loops are over *runs*, never pixels.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from .frame import Frame, FrameSize

__all__ = [
    "Codec",
    "CodecError",
    "DeltaCodec",
    "QuantCodec",
    "RawCodec",
    "RleCodec",
    "available_codecs",
    "get_codec",
    "mse",
    "psnr",
    "rle_decode_bytes",
    "rle_encode_bytes",
]


class CodecError(ValueError):
    """Raised when a payload cannot be decoded."""


# ----------------------------------------------------------------------
# Run-length kernel (shared)
# ----------------------------------------------------------------------

_RLE_MAGIC = b"RL"


def rle_encode_bytes(buf: np.ndarray) -> bytes:
    """Run-length encode a flat ``uint8`` array.

    Format: ``b"RL"`` + u32 original length + sequence of
    ``(u16 run_length, u8 value)`` records.  Runs longer than 65535 are
    split.  Run boundaries are found with a single ``np.nonzero(np.diff)``
    pass; the per-run loop is over run records only.
    """
    flat = np.ascontiguousarray(buf.reshape(-1), dtype=np.uint8)
    n = flat.size
    header = _RLE_MAGIC + struct.pack("<I", n)
    if n == 0:
        return header
    change = np.nonzero(np.diff(flat))[0]
    starts = np.concatenate(([0], change + 1))
    ends = np.concatenate((change + 1, [n]))
    lengths = ends - starts
    values = flat[starts]

    # Split runs longer than u16 max.
    if lengths.max(initial=0) > 0xFFFF:
        split_lengths: List[int] = []
        split_values: List[int] = []
        for ln, v in zip(lengths.tolist(), values.tolist()):
            while ln > 0xFFFF:
                split_lengths.append(0xFFFF)
                split_values.append(v)
                ln -= 0xFFFF
            split_lengths.append(ln)
            split_values.append(v)
        lengths = np.asarray(split_lengths, dtype=np.uint16)
        values = np.asarray(split_values, dtype=np.uint8)
    else:
        lengths = lengths.astype(np.uint16)

    records = np.empty(lengths.size, dtype=[("len", "<u2"), ("val", "u1")])
    records["len"] = lengths
    records["val"] = values
    return header + records.tobytes()


def rle_decode_bytes(payload: bytes) -> np.ndarray:
    """Inverse of :func:`rle_encode_bytes`; returns flat ``uint8`` array."""
    if len(payload) < 6 or payload[:2] != _RLE_MAGIC:
        raise CodecError("not an RLE payload")
    (n,) = struct.unpack_from("<I", payload, 2)
    body = payload[6:]
    records = np.frombuffer(body, dtype=[("len", "<u2"), ("val", "u1")])
    lengths = records["len"].astype(np.int64)
    total = int(lengths.sum())
    if total != n:
        raise CodecError(f"RLE length mismatch: header {n}, runs {total}")
    return np.repeat(records["val"], lengths)


# ----------------------------------------------------------------------
# Codec interface
# ----------------------------------------------------------------------


class Codec:
    """Stateful per-stream encoder/decoder.

    A codec instance encodes a sequence of frames *in order* (delta coding
    is stateful); decoding likewise proceeds in order.  :meth:`reset`
    clears temporal state at segment boundaries — each video segment in
    the VGBL container is independently decodable, which is what makes
    branch-switching seeks cheap (E4/E5).
    """

    #: registry name; subclasses override.
    name: str = ""
    #: True if decode(encode(x)) may differ from x.
    lossy: bool = False

    def reset(self) -> None:
        """Clear inter-frame state (start of a new independent segment)."""

    def encode(self, frame: Frame) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes, size: FrameSize) -> Frame:
        raise NotImplementedError

    # -- convenience -----------------------------------------------------
    def encode_all(self, frames: Sequence[Frame]) -> List[bytes]:
        """Encode a whole segment (resets state first)."""
        self.reset()
        return [self.encode(f) for f in frames]

    def decode_all(self, payloads: Sequence[bytes], size: FrameSize) -> List[Frame]:
        """Decode a whole segment (resets state first)."""
        self.reset()
        return [self.decode(p, size) for p in payloads]


class RawCodec(Codec):
    """Identity codec: raw C-order RGB bytes."""

    name = "raw"

    def encode(self, frame: Frame) -> bytes:
        return frame.tobytes()

    def decode(self, payload: bytes, size: FrameSize) -> Frame:
        try:
            return Frame.frombytes(payload, size)
        except ValueError as exc:
            raise CodecError(str(exc)) from exc


def _to_planar(arr: np.ndarray) -> np.ndarray:
    """Interleaved (h, w, 3) → planar (3, h, w), contiguous.

    RLE must run over planes: an interleaved constant-colour row is
    ``r,g,b,r,g,b,…`` (runs of length 1); the same row planar is three
    long runs.  All RLE-based codecs here encode planar.
    """
    return np.ascontiguousarray(arr.transpose(2, 0, 1))


def _from_planar(flat: np.ndarray, size: FrameSize) -> np.ndarray:
    """Inverse of :func:`_to_planar` from a flat buffer."""
    return np.ascontiguousarray(
        flat.reshape(3, size.height, size.width).transpose(1, 2, 0)
    )


class RleCodec(Codec):
    """Per-frame byte RLE over colour planes; lossless."""

    name = "rle"

    def encode(self, frame: Frame) -> bytes:
        return rle_encode_bytes(_to_planar(frame.data))

    def decode(self, payload: bytes, size: FrameSize) -> Frame:
        flat = rle_decode_bytes(payload)
        if flat.size != size.pixels * 3:
            raise CodecError("decoded size does not match frame size")
        return Frame(_from_planar(flat, size))


class DeltaCodec(Codec):
    """Temporal delta + RLE with a configurable intra period.

    Every ``intra_period``-th frame is coded as a keyframe (RLE of the raw
    frame, tagged ``b"K"``); other frames code the int16 difference to the
    previous *reconstructed* frame, mapped to uint8 via an offset-128
    clamp-free zigzag (two bytes: low = diff & 0xFF works only for
    lossless ranges, so we store the diff as two planes: sign-offset
    high/low).  To keep it simple and exactly lossless we encode the
    difference as ``(diff + 256) % 256`` (mod-256 wraparound), which is
    invertible for uint8 frames, tagged ``b"D"``.
    """

    name = "delta"

    def __init__(self, intra_period: int = 12) -> None:
        if intra_period < 1:
            raise ValueError("intra_period must be >= 1")
        self.intra_period = intra_period
        self._prev: Optional[np.ndarray] = None
        self._count = 0

    def reset(self) -> None:
        self._prev = None
        self._count = 0

    def encode(self, frame: Frame) -> bytes:
        is_key = self._prev is None or (self._count % self.intra_period == 0)
        self._count += 1
        if is_key:
            self._prev = frame.data.copy()
            return b"K" + rle_encode_bytes(_to_planar(frame.data))
        diff = frame.data.astype(np.int16) - self._prev.astype(np.int16)
        wrapped = (diff % 256).astype(np.uint8)
        self._prev = frame.data.copy()
        return b"D" + rle_encode_bytes(_to_planar(wrapped))

    def decode(self, payload: bytes, size: FrameSize) -> Frame:
        if not payload:
            raise CodecError("empty delta payload")
        tag, body = payload[:1], payload[1:]
        flat = rle_decode_bytes(body)
        if flat.size != size.pixels * 3:
            raise CodecError("decoded size does not match frame size")
        plane = _from_planar(flat, size)
        if tag == b"K":
            self._prev = plane.copy()
        elif tag == b"D":
            if self._prev is None:
                raise CodecError("delta frame before any keyframe")
            recon = (self._prev.astype(np.int16) + plane.astype(np.int16)) % 256
            self._prev = recon.astype(np.uint8)
        else:
            raise CodecError(f"unknown delta frame tag {tag!r}")
        return Frame(self._prev.copy())


class QuantCodec(Codec):
    """Lossy uniform quantisation to ``bits`` per channel, then RLE.

    Quantisation keeps the top ``bits`` of each byte and reconstructs at
    the bin midpoint; lower ``bits`` trades PSNR for compression (the E4
    rate/quality sweep).
    """

    name = "quant"
    lossy = True

    def __init__(self, bits: int = 4) -> None:
        if not 1 <= bits <= 8:
            raise ValueError("bits must be in [1, 8]")
        self.bits = bits

    def encode(self, frame: Frame) -> bytes:
        shift = 8 - self.bits
        q = frame.data >> shift
        return struct.pack("<B", self.bits) + rle_encode_bytes(_to_planar(q))

    def decode(self, payload: bytes, size: FrameSize) -> Frame:
        if not payload:
            raise CodecError("empty quant payload")
        bits = payload[0]
        if not 1 <= bits <= 8:
            raise CodecError(f"invalid quant bits {bits}")
        shift = 8 - bits
        flat = rle_decode_bytes(payload[1:])
        if flat.size != size.pixels * 3:
            raise CodecError("decoded size does not match frame size")
        # Reconstruct at bin midpoint (half a quantisation step).
        mid = (1 << shift) >> 1
        recon = (flat.astype(np.uint16) << shift) + (mid if shift else 0)
        np.clip(recon, 0, 255, out=recon)
        return Frame(_from_planar(recon.astype(np.uint8), size))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Type[Codec]] = {
    RawCodec.name: RawCodec,
    RleCodec.name: RleCodec,
    DeltaCodec.name: DeltaCodec,
    QuantCodec.name: QuantCodec,
}


def available_codecs() -> Tuple[str, ...]:
    """Names of all registered codecs."""
    return tuple(sorted(_REGISTRY))


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate a codec by registry name.

    ``kwargs`` are forwarded to the codec constructor (e.g.
    ``get_codec("quant", bits=3)``).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        ) from None
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Quality metrics
# ----------------------------------------------------------------------


def mse(a: Frame, b: Frame) -> float:
    """Mean squared error between two equal-size frames."""
    if a.data.shape != b.data.shape:
        raise ValueError("frames must be the same size")
    diff = a.data.astype(np.float64) - b.data.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(a: Frame, b: Frame, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical frames."""
    err = mse(a, b)
    if err == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / err))
