"""Storyboard thumbnails: the segment strip's visual index.

Fig. 1's segmentation strip shows one key image per proposed segment so
the designer can recognise scenes at a glance.  This module picks
*representative* keyframes (the frame closest to the segment's mean
colour histogram — a medoid, robust against transition residue at the
edges) and renders storyboard sheets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .filters import scale_nearest
from .frame import Frame, FrameSize, color_histogram
from .segment import VideoSegment

__all__ = ["Thumbnail", "keyframe_index", "segment_thumbnail", "storyboard"]


@dataclass(frozen=True, slots=True)
class Thumbnail:
    """One storyboard cell."""

    segment_name: str
    frame_index: int       #: index within the segment
    image: Frame           #: scaled-down key frame


def keyframe_index(frames: Sequence[Frame], bins_per_channel: int = 8) -> int:
    """Index of the histogram-medoid frame.

    The medoid (minimum summed L1 distance to all other frames'
    histograms) is the frame most typical of the segment — a fade tail
    or a sprite-occluded frame never wins.
    """
    n = len(frames)
    if n == 0:
        raise ValueError("no frames")
    if n == 1:
        return 0
    hists = np.stack([color_histogram(f, bins_per_channel) for f in frames])
    # Pairwise L1 distances via broadcasting: (n, n, bins) is fine at
    # storyboard scale (segments are short by design).
    diffs = np.abs(hists[:, None, :] - hists[None, :, :]).sum(axis=2)
    return int(diffs.sum(axis=1).argmin())


def segment_thumbnail(
    segment: VideoSegment, thumb_size: FrameSize = FrameSize(40, 30)
) -> Thumbnail:
    """The representative thumbnail of one segment."""
    idx = keyframe_index(segment.frames)
    return Thumbnail(
        segment_name=segment.name,
        frame_index=idx,
        image=scale_nearest(segment.frames[idx], thumb_size),
    )


def storyboard(
    segments: Sequence[VideoSegment],
    thumb_size: FrameSize = FrameSize(40, 30),
    columns: int = 6,
    gap: int = 4,
    bg: Tuple[int, int, int] = (24, 24, 28),
) -> Tuple[Frame, List[Thumbnail]]:
    """Render a storyboard sheet: thumbnails laid out in a grid.

    Returns ``(sheet, thumbnails)``; the sheet is a single frame the
    editor displays (and the docs embed via the ASCII renderer).
    """
    if not segments:
        raise ValueError("no segments to storyboard")
    if columns < 1:
        raise ValueError("columns must be >= 1")
    thumbs = [segment_thumbnail(s, thumb_size) for s in segments]
    n = len(thumbs)
    rows = (n + columns - 1) // columns
    cell_w = thumb_size.width + gap
    cell_h = thumb_size.height + gap
    sheet = Frame.blank(
        FrameSize(gap + columns * cell_w, gap + rows * cell_h), bg
    )
    for i, t in enumerate(thumbs):
        r, c = divmod(i, columns)
        x = gap + c * cell_w
        y = gap + r * cell_h
        sheet.blit(t.image.data, x, y)
        sheet.draw_border(x - 1, y - 1, thumb_size.width + 2, thumb_size.height + 2,
                          (90, 90, 110))
    return sheet, thumbs
