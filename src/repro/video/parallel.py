"""Parallel encode/analysis kernels (the ICPP workshop angle).

The authoring tool's costly batch steps — encoding scenario segments and
computing the shot-detection difference signal over an imported clip —
are embarrassingly parallel.  Two transport strategies are used,
selected by the platform's process start method:

* **fork + copy-on-write** (Linux default): the frames are packed into
  one contiguous ``uint8`` block that is stashed in a module global
  *before* the pool forks; workers inherit the page mappings and receive
  only ``(start, end)`` index spans.  Nothing is pickled but a tuple of
  ints — the mpi4py guide's "communicate buffers, not object graphs"
  taken to its zero-copy limit.
* **buffer shipping** (spawn platforms): each job carries its chunk as
  raw bytes + shape metadata, never per-frame Python objects.

Two degrees of parallelism:

* **per-segment** (:func:`parallel_encode_segments`): segments are
  independently decodable by design, so each worker encodes whole
  segments — zero cross-worker state;
* **per-chunk with halo** (:func:`parallel_difference_signal`): the
  difference signal needs each chunk's predecessor frame, so chunks
  carry a one-frame halo on the left, exactly like a stencil exchange.

``max_workers=0`` or ``1`` selects the serial path; the parallel path
falls back to serial if a process pool cannot be created (restricted
sandboxes) or its workers die mid-run (``BrokenProcessPool`` — e.g. a
seccomp'd container killing the fork), recording the fallback in the
returned stats.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs import tracing as _obstrace
from .codec import get_codec
from .frame import Frame
from .shots import DetectorConfig, ShotDetector

__all__ = [
    "ParallelStats",
    "chunk_spans",
    "parallel_difference_signal",
    "parallel_encode_segments",
]

#: Copy-on-write staging area: set in the parent immediately before the
#: pool forks; workers read it via inherited memory.  Keyed by job kind.
_COW_BLOCK: Dict[str, object] = {}

_M_RUNS = _obs.counter(
    "repro_parallel_runs_total",
    "Parallel kernel invocations, by kind and transport",
)
_M_CHUNKS = _obs.counter(
    "repro_parallel_chunks_total",
    "Work chunks dispatched across all parallel runs, by kind",
)
_M_FALLBACKS = _obs.counter(
    "repro_parallel_fallbacks_total",
    "Runs that fell back to the serial path, by kind",
)
_M_UTILIZATION = _obs.gauge(
    "repro_parallel_worker_utilization",
    "workers_used / workers_requested of the most recent run, by kind",
)
_M_ELAPSED = _obs.histogram(
    "repro_parallel_elapsed_seconds",
    "Wall time of parallel kernel invocations, by kind",
)

_LOG = _obslog.get_logger("video.parallel")


def _record_run(kind: str, stats: "ParallelStats", started: Optional[float]) -> None:
    """File one run's ParallelStats into the metrics registry."""
    if started is None:
        return
    elapsed = time.perf_counter() - started
    _M_ELAPSED.observe(elapsed, kind=kind)
    _M_RUNS.inc(kind=kind, transport=stats.transport)
    _M_CHUNKS.inc(stats.chunks, kind=kind)
    if stats.fell_back_to_serial:
        _M_FALLBACKS.inc(kind=kind)
        _LOG.warning(
            "parallel.fallback",
            kind=kind,
            workers_requested=stats.workers_requested,
        )
    _M_UTILIZATION.set(
        stats.workers_used / max(stats.workers_requested, 1), kind=kind
    )
    _LOG.info(
        "parallel.run",
        kind=kind,
        transport=stats.transport,
        chunks=stats.chunks,
        workers=stats.workers_used,
        elapsed_s=round(elapsed, 6),
    )


@dataclass(slots=True)
class ParallelStats:
    """Execution metadata returned alongside parallel results."""

    workers_requested: int
    workers_used: int
    chunks: int
    fell_back_to_serial: bool = False
    transport: str = "serial"  #: "serial" | "cow" | "pickle"


def chunk_spans(n: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into up to ``n_chunks`` balanced contiguous spans.

    The first ``n % n_chunks`` spans get one extra element, mirroring
    MPI's standard block distribution.  Empty spans are dropped.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    k = min(n_chunks, n) if n else 0
    if k == 0:
        return []
    base = n // k
    extra = n % k
    spans: List[Tuple[int, int]] = []
    start = 0
    for i in range(k):
        ln = base + (1 if i < extra else 0)
        spans.append((start, start + ln))
        start += ln
    return spans


def _can_fork() -> bool:
    try:
        return multiprocessing.get_start_method(allow_none=True) in (None, "fork")
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _frames_to_block(frames: Sequence[Frame]) -> np.ndarray:
    """Pack frames into one contiguous (n, h, w, 3) uint8 block."""
    n = len(frames)
    h, w = frames[0].height, frames[0].width
    block = np.empty((n, h, w, 3), dtype=np.uint8)
    for i, f in enumerate(frames):
        block[i] = f.data
    return block


# ----------------------------------------------------------------------
# Worker functions (top-level so they are picklable under spawn)
# ----------------------------------------------------------------------


def _diff_signal_cow_worker(job: Tuple[int, int, str, int]) -> List[float]:
    """Difference signal over block rows [s, e) read from COW memory."""
    s, e, metric, bins = job
    block: np.ndarray = _COW_BLOCK["frames"]  # type: ignore[assignment]
    frames = [Frame(block[i]) for i in range(s, e)]
    det = ShotDetector(DetectorConfig(metric=metric, bins_per_channel=bins))  # type: ignore[arg-type]
    return det.difference_signal(frames).tolist()


def _diff_signal_pickle_worker(
    payload: Tuple[bytes, Tuple[int, int, int], str, int]
) -> List[float]:
    raw, (n, h, w), metric, bins = payload
    block = np.frombuffer(raw, dtype=np.uint8).reshape(n, h, w, 3)
    frames = [Frame(block[i].copy()) for i in range(n)]
    det = ShotDetector(DetectorConfig(metric=metric, bins_per_channel=bins))  # type: ignore[arg-type]
    return det.difference_signal(frames).tolist()


def _encode_cow_worker(job: Tuple[int, str, str, str]) -> Tuple[str, List[int]]:
    """Encode segment ``sid`` read from COW memory.

    The encoded payloads can be tens of megabytes; on hosts with slow
    IPC pipes returning them directly dominates the run, so the worker
    spools the concatenated payloads to ``spool_dir`` and returns only
    the file path plus per-frame lengths.
    """
    sid, codec_name, codec_params_json, spool_dir = job
    import json

    segments: List[np.ndarray] = _COW_BLOCK["segments"]  # type: ignore[assignment]
    block = segments[sid]
    codec = get_codec(codec_name, **json.loads(codec_params_json))
    codec.reset()
    payloads = [codec.encode(Frame(block[i])) for i in range(block.shape[0])]
    path = os.path.join(spool_dir, f"seg-{sid}.bin")
    with open(path, "wb") as fh:
        for p in payloads:
            fh.write(p)
    return path, [len(p) for p in payloads]


def _encode_pickle_worker(
    payload: Tuple[bytes, Tuple[int, int, int], int, str, Dict]
) -> List[bytes]:
    raw, (n, h, w), _seg_id, codec_name, codec_params = payload
    block = np.frombuffer(raw, dtype=np.uint8).reshape(n, h, w, 3)
    codec = get_codec(codec_name, **codec_params)
    codec.reset()
    return [codec.encode(Frame(block[i].copy())) for i in range(n)]


def _resolve_workers(max_workers: Optional[int]) -> int:
    if max_workers is None:
        return max(1, (os.cpu_count() or 2) - 1)
    if max_workers < 0:
        raise ValueError("max_workers must be >= 0")
    return max(1, max_workers)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def parallel_encode_segments(
    segments: Sequence[Sequence[Frame]],
    codec_name: str = "rle",
    codec_params: Optional[Dict] = None,
    max_workers: Optional[int] = None,
) -> Tuple[List[List[bytes]], ParallelStats]:
    """Encode independent segments across a process pool.

    Returns ``(payloads_per_segment, stats)`` with payloads in the same
    order as the input segments regardless of completion order.
    """
    started = time.perf_counter() if _obs.enabled() else None
    with _obstrace.span("parallel.encode", segments=len(segments)):
        out, stats = _encode_segments_impl(
            segments, codec_name, codec_params, max_workers
        )
    _record_run("encode", stats, started)
    return out, stats


def _encode_segments_impl(
    segments: Sequence[Sequence[Frame]],
    codec_name: str,
    codec_params: Optional[Dict],
    max_workers: Optional[int],
) -> Tuple[List[List[bytes]], ParallelStats]:
    if not segments:
        raise ValueError("no segments to encode")
    params = dict(codec_params or {})
    workers = _resolve_workers(max_workers)

    if workers == 1 or len(segments) == 1:
        codec = get_codec(codec_name, **params)
        out = [codec.encode_all(list(seg)) for seg in segments]
        return out, ParallelStats(workers, 1, len(segments))

    try:
        if _can_fork():
            import json
            import tempfile

            _COW_BLOCK["segments"] = [
                _frames_to_block(list(seg)) for seg in segments
            ]
            with tempfile.TemporaryDirectory(prefix="repro-encode-") as spool:
                jobs = [
                    (sid, codec_name, json.dumps(params, sort_keys=True), spool)
                    for sid in range(len(segments))
                ]
                try:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        spooled = list(pool.map(_encode_cow_worker, jobs))
                finally:
                    _COW_BLOCK.pop("segments", None)
                results = []
                for path, lengths in spooled:
                    with open(path, "rb") as fh:
                        blob = fh.read()
                    out: List[bytes] = []
                    pos = 0
                    for ln in lengths:
                        out.append(blob[pos : pos + ln])
                        pos += ln
                    results.append(out)
            return results, ParallelStats(
                workers, min(workers, len(segments)), len(segments), transport="cow"
            )
        jobs_p = []
        for sid, seg in enumerate(segments):
            block = _frames_to_block(list(seg))
            jobs_p.append(
                (block.tobytes(), block.shape[:3], sid, codec_name, params)
            )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_encode_pickle_worker, jobs_p))
        return results, ParallelStats(
            workers, min(workers, len(segments)), len(segments), transport="pickle"
        )
    except (OSError, PermissionError, BrokenProcessPool):
        codec = get_codec(codec_name, **params)
        out = [codec.encode_all(list(seg)) for seg in segments]
        return out, ParallelStats(
            workers, 1, len(segments), fell_back_to_serial=True
        )


def parallel_difference_signal(
    frames: Sequence[Frame],
    config: Optional[DetectorConfig] = None,
    max_workers: Optional[int] = None,
    min_chunk: int = 16,
) -> Tuple[np.ndarray, ParallelStats]:
    """Compute the shot-detection difference signal with chunk+halo workers.

    The signal for frames ``[s, e)`` needs frame ``s-1``, so every chunk
    except the first is extended one frame left; chunk results then
    concatenate exactly to the serial signal (asserted by tests).
    """
    started = time.perf_counter() if _obs.enabled() else None
    with _obstrace.span("parallel.diff_signal", frames=len(frames)):
        signal, stats = _difference_signal_impl(
            frames, config, max_workers, min_chunk
        )
    _record_run("diff_signal", stats, started)
    return signal, stats


def _difference_signal_impl(
    frames: Sequence[Frame],
    config: Optional[DetectorConfig],
    max_workers: Optional[int],
    min_chunk: int,
) -> Tuple[np.ndarray, ParallelStats]:
    cfg = config or DetectorConfig()
    n = len(frames)
    workers = _resolve_workers(max_workers)
    serial_detector = ShotDetector(cfg)

    if workers == 1 or n - 1 <= min_chunk:
        return serial_detector.difference_signal(frames), ParallelStats(workers, 1, 1)

    # Chunk the n-1 transitions, not the frames; transition i needs
    # frames [i, i+1], so span (s, e) needs frames [s, e+1).
    spans = chunk_spans(n - 1, workers)
    try:
        if _can_fork():
            _COW_BLOCK["frames"] = _frames_to_block(frames)
            jobs = [
                (s, e + 1, cfg.metric, cfg.bins_per_channel) for (s, e) in spans
            ]
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    parts = list(pool.map(_diff_signal_cow_worker, jobs))
            finally:
                _COW_BLOCK.pop("frames", None)
            signal = np.concatenate(
                [np.asarray(p, dtype=np.float64) for p in parts]
            )
            return signal, ParallelStats(
                workers, min(workers, len(spans)), len(spans), transport="cow"
            )
        jobs_p = []
        for (s, e) in spans:
            block = _frames_to_block(list(frames[s : e + 1]))
            jobs_p.append(
                (block.tobytes(), block.shape[:3], cfg.metric, cfg.bins_per_channel)
            )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(_diff_signal_pickle_worker, jobs_p))
        signal = np.concatenate([np.asarray(p, dtype=np.float64) for p in parts])
        return signal, ParallelStats(
            workers, min(workers, len(spans)), len(spans), transport="pickle"
        )
    except (OSError, PermissionError, BrokenProcessPool):
        return (
            serial_detector.difference_signal(frames),
            ParallelStats(workers, 1, 1, fell_back_to_serial=True),
        )
