"""Clocked segment playback: the base layer of the gaming platform.

§4.3: "The gaming platform is an augmented video player with the
interaction functionalities."  This module is the *un*-augmented player:
a deterministic, simulated-clock playback engine over the segments of an
RVID container (or raw frame lists).  The runtime engine augments it with
hotspots, object overlays and scenario switching.

The clock is injected, not wall time: tests and benchmarks advance a
:class:`SimulatedClock` manually, so playback behaviour (frame due times,
pauses, seeks, segment switches) is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol

from .container import VideoReader
from .frame import Frame

__all__ = [
    "Clock",
    "PlaybackState",
    "PlayerError",
    "SegmentPlayer",
    "SimulatedClock",
]


class PlayerError(RuntimeError):
    """Raised on invalid playback operations."""


class Clock(Protocol):
    """Minimal clock interface: monotonically non-decreasing seconds."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class SimulatedClock:
    """A manually-advanced clock for deterministic playback."""

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)

    def now(self) -> float:
        return self._t

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds (must be >= 0)."""
        if dt < 0:
            raise ValueError("clock cannot move backwards")
        self._t += dt
        return self._t


class PlaybackState:
    """Playback lifecycle states."""

    IDLE = "idle"
    PLAYING = "playing"
    PAUSED = "paused"
    FINISHED = "finished"


@dataclass(slots=True)
class _SegmentSource:
    """Decoded frames of the active segment."""

    segment_id: int
    frames: List[Frame]
    fps: float


class SegmentPlayer:
    """Plays one segment at a time with pause/seek/switch.

    Parameters
    ----------
    reader:
        The RVID container to play from.
    clock:
        Time source; defaults to a fresh :class:`SimulatedClock`.
    on_frame:
        Optional callback invoked with ``(frame, frame_index)`` every time
        :meth:`tick` emits a new frame (the compositor hooks in here).
    loop_segment:
        If True, the active segment loops instead of finishing — the
        paper's scenarios idle on their video while the player explores,
        so the runtime engine enables this by default.

    Typical loop::

        player.play(segment_id=0)
        while ...:
            clock.advance(1 / fps)
            frame = player.tick()
    """

    def __init__(
        self,
        reader: VideoReader,
        clock: Optional[Clock] = None,
        on_frame: Optional[Callable[[Frame, int], None]] = None,
        loop_segment: bool = True,
    ) -> None:
        self.reader = reader
        self.clock: Clock = clock or SimulatedClock()
        self.on_frame = on_frame
        self.loop_segment = loop_segment
        self.state = PlaybackState.IDLE
        self._source: Optional[_SegmentSource] = None
        self._segment_start_time = 0.0
        self._paused_at: Optional[float] = None
        self._pause_accum = 0.0
        self._last_emitted_idx: Optional[int] = None
        #: cumulative count of segment switches (E4 latency accounting)
        self.switch_count = 0

    # ------------------------------------------------------------------
    @property
    def current_segment(self) -> Optional[int]:
        """Id of the active segment, or None when idle."""
        return self._source.segment_id if self._source else None

    @property
    def fps(self) -> float:
        return self.reader.fps

    def play(self, segment_id: int) -> None:
        """Start (or switch) playback at the first frame of ``segment_id``."""
        frames = self.reader.decode_segment(segment_id)
        if self._source is not None:
            self.switch_count += 1
        self._source = _SegmentSource(segment_id, frames, self.reader.fps)
        self._segment_start_time = self.clock.now()
        self._pause_accum = 0.0
        self._paused_at = None
        self._last_emitted_idx = None
        self.state = PlaybackState.PLAYING

    def pause(self) -> None:
        """Freeze playback; the current frame stays current."""
        if self.state != PlaybackState.PLAYING:
            raise PlayerError(f"cannot pause in state {self.state}")
        self._paused_at = self.clock.now()
        self.state = PlaybackState.PAUSED

    def resume(self) -> None:
        """Resume after :meth:`pause`; elapsed pause time is excluded."""
        if self.state != PlaybackState.PAUSED or self._paused_at is None:
            raise PlayerError(f"cannot resume in state {self.state}")
        self._pause_accum += self.clock.now() - self._paused_at
        self._paused_at = None
        self.state = PlaybackState.PLAYING

    def seek(self, frame_index: int) -> None:
        """Jump to ``frame_index`` within the active segment."""
        src = self._require_source()
        if not 0 <= frame_index < len(src.frames):
            raise PlayerError(
                f"seek target {frame_index} out of range "
                f"(segment has {len(src.frames)} frames)"
            )
        # Rebase the start time so the target frame is exactly due now.
        self._segment_start_time = self.clock.now() - frame_index / src.fps
        self._pause_accum = 0.0
        if self.state == PlaybackState.PAUSED:
            self._paused_at = self.clock.now()
        self._last_emitted_idx = None

    def position(self) -> int:
        """Frame index currently due (clamped / wrapped per loop mode)."""
        src = self._require_source()
        ref = self._paused_at if self._paused_at is not None else self.clock.now()
        elapsed = ref - self._segment_start_time - self._pause_accum
        idx = int(elapsed * src.fps + 1e-9)
        n = len(src.frames)
        if idx < 0:
            return 0
        if idx >= n:
            return idx % n if self.loop_segment else n - 1
        return idx

    def finished(self) -> bool:
        """True when a non-looping segment has played past its last frame."""
        if self._source is None or self.loop_segment:
            return False
        ref = self._paused_at if self._paused_at is not None else self.clock.now()
        elapsed = ref - self._segment_start_time - self._pause_accum
        return elapsed * self._source.fps >= len(self._source.frames)

    def tick(self) -> Optional[Frame]:
        """Emit the frame due at the current clock time.

        Returns the frame if it differs from the last emitted one, else
        ``None`` (the caller need not recomposite).  On a finished
        non-looping segment the state flips to ``FINISHED`` and the final
        frame is returned once.
        """
        if self.state not in (PlaybackState.PLAYING, PlaybackState.PAUSED):
            return None
        src = self._require_source()
        if self.finished():
            self.state = PlaybackState.FINISHED
        idx = self.position()
        if idx == self._last_emitted_idx:
            return None
        self._last_emitted_idx = idx
        frame = src.frames[idx]
        if self.on_frame is not None:
            self.on_frame(frame, idx)
        return frame

    def current_frame(self) -> Frame:
        """The frame due now, without advancing emission bookkeeping."""
        src = self._require_source()
        return src.frames[self.position()]

    def _require_source(self) -> _SegmentSource:
        if self._source is None:
            raise PlayerError("no segment loaded; call play() first")
        return self._source
