"""Editor-side video filters and adjustments.

The scenario editor's "Video" menu (Fig. 1): footage rarely arrives
ready to use — designers brighten a murky classroom shot, crop out a
boom microphone, letterbox a mismatched aspect ratio, stamp a title, or
add a fade-in before the first scenario.  Each filter is a pure function
``frame → frame`` (or a sequence transform), vectorised, composable via
:class:`FilterChain`, and cheap enough to preview live in the canvas.

All filters validate their parameters eagerly so the editor can reject
bad dialog input before touching frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from .frame import Frame, FrameSize

__all__ = [
    "FilterChain",
    "FilterError",
    "adjust_brightness_contrast",
    "crop",
    "fade_in",
    "fade_out",
    "grayscale",
    "letterbox",
    "scale_nearest",
    "stamp_caption",
    "tint",
]


class FilterError(ValueError):
    """Raised on invalid filter parameters."""


# ----------------------------------------------------------------------
# Per-frame filters
# ----------------------------------------------------------------------

def adjust_brightness_contrast(
    frame: Frame, brightness: float = 0.0, contrast: float = 1.0
) -> Frame:
    """Linear tone adjustment: ``out = (in - 128) * contrast + 128 + b``.

    ``brightness`` in [-255, 255], ``contrast`` in [0, 4].
    """
    if not -255.0 <= brightness <= 255.0:
        raise FilterError("brightness must be in [-255, 255]")
    if not 0.0 <= contrast <= 4.0:
        raise FilterError("contrast must be in [0, 4]")
    f = frame.data.astype(np.float32)
    out = (f - 128.0) * contrast + 128.0 + brightness
    np.clip(out, 0.0, 255.0, out=out)
    return Frame(out.astype(np.uint8))


def grayscale(frame: Frame) -> Frame:
    """Replace chroma with luma (the editor's 'flashback' look)."""
    luma = frame.to_gray().astype(np.uint8)
    return Frame(np.repeat(luma[:, :, None], 3, axis=2))


def tint(frame: Frame, color: Tuple[int, int, int], strength: float = 0.3) -> Frame:
    """Blend a solid colour over the frame (scene mood labelling)."""
    if not 0.0 <= strength <= 1.0:
        raise FilterError("tint strength must be in [0, 1]")
    f = frame.data.astype(np.float32)
    c = np.asarray(color, dtype=np.float32)
    out = f * (1.0 - strength) + c * strength
    return Frame(out.astype(np.uint8))


def crop(frame: Frame, x: int, y: int, w: int, h: int) -> Frame:
    """Cut a sub-rectangle; must lie fully inside the frame."""
    size = frame.size
    if w <= 0 or h <= 0:
        raise FilterError("crop size must be positive")
    if x < 0 or y < 0 or x + w > size.width or y + h > size.height:
        raise FilterError(
            f"crop ({x},{y},{w},{h}) exceeds frame {size}"
        )
    return Frame(frame.data[y : y + h, x : x + w].copy())


def scale_nearest(frame: Frame, size: FrameSize) -> Frame:
    """Nearest-neighbour resample to ``size`` (fast preview scaling)."""
    h, w = frame.height, frame.width
    ys = (np.arange(size.height) * h // size.height).clip(0, h - 1)
    xs = (np.arange(size.width) * w // size.width).clip(0, w - 1)
    return Frame(frame.data[np.ix_(ys, xs)].copy())


def letterbox(frame: Frame, size: FrameSize, bar_color: Tuple[int, int, int] = (0, 0, 0)) -> Frame:
    """Fit the frame into ``size`` preserving aspect, with bars."""
    sw, sh = size.width, size.height
    fw, fh = frame.width, frame.height
    scale = min(sw / fw, sh / fh)
    tw, th = max(1, int(fw * scale)), max(1, int(fh * scale))
    scaled = scale_nearest(frame, FrameSize(tw, th))
    out = Frame.blank(size, bar_color)
    out.blit(scaled.data, (sw - tw) // 2, (sh - th) // 2)
    return out


def stamp_caption(
    frame: Frame,
    height: int = 12,
    bg: Tuple[int, int, int] = (0, 0, 0),
    fg: Tuple[int, int, int] = (255, 255, 255),
    ticks: int = 0,
) -> Frame:
    """Burn a caption bar into the bottom of the frame.

    Text rendering is out of scope for the raster substrate; the bar
    carries ``ticks`` marker blocks (one per caption word), which is
    what the figure renders need to show "this frame is captioned".
    """
    if height < 3 or height > frame.height:
        raise FilterError("caption bar height out of range")
    out = frame.copy()
    y = frame.height - height
    out.fill_rect(0, y, frame.width, height, bg)
    for k in range(max(0, ticks)):
        out.fill_rect(3 + k * 8, y + 2, 6, height - 4, fg)
    return out


# ----------------------------------------------------------------------
# Sequence transforms
# ----------------------------------------------------------------------

def fade_in(frames: Sequence[Frame], n: int, color: Tuple[int, int, int] = (0, 0, 0)) -> List[Frame]:
    """Fade the first ``n`` frames up from a solid colour."""
    if n < 0 or n > len(frames):
        raise FilterError("fade length out of range")
    out = [f.copy() for f in frames]
    c = np.asarray(color, dtype=np.float32)
    for k in range(n):
        alpha = (k + 1) / (n + 1)
        f = out[k].data.astype(np.float32)
        out[k] = Frame((f * alpha + c * (1 - alpha)).astype(np.uint8))
    return out


def fade_out(frames: Sequence[Frame], n: int, color: Tuple[int, int, int] = (0, 0, 0)) -> List[Frame]:
    """Fade the last ``n`` frames down to a solid colour."""
    if n < 0 or n > len(frames):
        raise FilterError("fade length out of range")
    out = [f.copy() for f in frames]
    c = np.asarray(color, dtype=np.float32)
    total = len(frames)
    for k in range(n):
        idx = total - n + k          # fade deepens toward the last frame
        alpha = (k + 1) / (n + 1)
        f = out[idx].data.astype(np.float32)
        out[idx] = Frame((f * (1 - alpha) + c * alpha).astype(np.uint8))
    return out


@dataclass(frozen=True, slots=True)
class _Step:
    name: str
    fn: Callable[[Frame], Frame]


class FilterChain:
    """A named, ordered composition of per-frame filters.

    The editor builds a chain from dialog settings and applies it to a
    whole segment; chains are reusable across segments ("apply the same
    grade to all classroom shots").
    """

    def __init__(self) -> None:
        self._steps: List[_Step] = []

    def add(self, name: str, fn: Callable[[Frame], Frame]) -> "FilterChain":
        """Append a step; returns self for chaining."""
        if not name:
            raise FilterError("filter step needs a name")
        self._steps.append(_Step(name, fn))
        return self

    def brightness_contrast(self, brightness: float = 0.0, contrast: float = 1.0) -> "FilterChain":
        # Validate eagerly, not at apply time.
        adjust_brightness_contrast(Frame.blank(FrameSize(1, 1)), brightness, contrast)
        return self.add(
            f"bc({brightness},{contrast})",
            lambda f: adjust_brightness_contrast(f, brightness, contrast),
        )

    def grayscale(self) -> "FilterChain":
        return self.add("grayscale", grayscale)

    def tint(self, color: Tuple[int, int, int], strength: float = 0.3) -> "FilterChain":
        tint(Frame.blank(FrameSize(1, 1)), color, strength)
        return self.add(f"tint{color}@{strength}", lambda f: tint(f, color, strength))

    def caption(self, height: int = 12, ticks: int = 3) -> "FilterChain":
        return self.add(
            f"caption({ticks})", lambda f: stamp_caption(f, height=height, ticks=ticks)
        )

    @property
    def step_names(self) -> List[str]:
        return [s.name for s in self._steps]

    def __len__(self) -> int:
        return len(self._steps)

    def apply(self, frame: Frame) -> Frame:
        """Run the chain on one frame."""
        out = frame
        for step in self._steps:
            out = step.fn(out)
        return out

    def apply_all(self, frames: Sequence[Frame]) -> List[Frame]:
        """Run the chain on a whole segment."""
        return [self.apply(f) for f in frames]
