"""Baseline 3: the programmer-built game (E7's comparator).

§1: "Most of these systems require programmers and specified domain
experts to design games with adequate contents together."  This module
is that workflow, made concrete: the same classroom-repair game the
wizard builds in a dozen clicks, constructed directly against the data
model the way a developer integrating a game engine would — every model
construct charged as a *programmer* operation and every asset-producing
step (sprites, scene visuals, video handling) as a *specialist* one.

The output game is behaviourally equivalent (same scenarios, events,
dialogues; the E7 test asserts both are winnable with the same minimal
script length), so the effort comparison isolates the authoring surface.
"""

from __future__ import annotations

from typing import Tuple


from ..core.effort import AuthoringLedger
from ..core.project import CompiledGame, GameProject
from ..events import (
    AwardBonus,
    EndGame,
    EventBinding,
    SetProperty,
    ShowText,
    SwitchScenario,
    TakeItem,
    Trigger,
)
from ..graph import Scenario
from ..objects import ButtonObject, ImageObject, ItemObject, NPCObject, RectHotspot
from ..runtime import Dialogue
from ..video import FrameSize, VideoSegment
from ..core.templates import scene_footage

__all__ = ["build_scripted_classroom_game"]


def build_scripted_classroom_game(
    size: FrameSize = FrameSize(160, 120),
    seed: int = 1234,
) -> Tuple[CompiledGame, AuthoringLedger]:
    """Hand-code the classroom-repair game; returns (game, effort ledger).

    The op sequence mirrors what the equivalent engine-integration code
    would contain; compare with
    :func:`repro.core.templates.fetch_quest_game` (wizard path) and the
    raw-editor path in the E7 bench.
    """
    ledger = AuthoringLedger()
    r = ledger.record

    project = GameProject(title="Fix the Computer (scripted)", author="developer")
    r("project_boilerplate", "programmer", "create project, configure codec")

    # --- video handling: a specialist shoots/encodes, a programmer wires ---
    r("produce_scene_footage", "specialist", "film/encode classroom footage")
    hub_frames = scene_footage(size, seed)
    r("produce_scene_footage", "specialist", "film/encode market footage")
    market_frames = scene_footage(size, seed + 1)
    r("integrate_video_pipeline", "programmer", "decode/segment/seek wiring")
    project.import_footage("classroom-video", hub_frames)
    project.commit_segment(
        VideoSegment(name="classroom-video", frames=hub_frames)
    )
    project.import_footage("market-video", market_frames)
    project.commit_segment(VideoSegment(name="market-video", frames=market_frames))

    # --- scene graph, objects, sprites -------------------------------------
    r("code_scene_classes", "programmer", "Scenario construction code")
    classroom = Scenario("classroom", "Classroom", 0)
    market = Scenario("market", "Market", 1)

    r("draw_sprite", "specialist", "computer sprite")
    computer = ImageObject(
        object_id="computer",
        name="Computer",
        hotspot=RectHotspot(60, 40, 30, 30),
        description="The classroom computer. It will not boot.",
        properties={"state": "broken"},
    )
    r("code_object_wiring", "programmer", "mount computer + hotspot maths")
    classroom.add_object(computer)

    r("draw_sprite", "specialist", "RAM sprite")
    ram = ItemObject(
        object_id="ram",
        name="RAM module",
        hotspot=RectHotspot(70, 70, 10, 10),
        description="A compatible RAM module.",
    )
    r("code_object_wiring", "programmer", "mount RAM + pickup logic")
    market.add_object(ram)

    r("draw_sprite", "specialist", "teacher sprite")
    r("code_dialogue_system_use", "programmer", "conversation wiring")
    dlg = Dialogue.linear(
        "dlg-teacher",
        ["The computer is broken.", "Find a part at the market and fix it!"],
    )
    project.add_dialogue(dlg)
    teacher = NPCObject(
        object_id="teacher",
        name="Teacher",
        hotspot=RectHotspot(5, 20, 14, 30),
        dialogue_id="dlg-teacher",
    )
    classroom.add_object(teacher)

    r("code_navigation_ui", "programmer", "scene-switch buttons")
    classroom.add_object(
        ButtonObject(
            object_id="classroom-go-market",
            name="To market",
            label="To market",
            hotspot=RectHotspot(size.width - 70, 8, 62, 16),
        )
    )
    market.add_object(
        ButtonObject(
            object_id="market-go-classroom",
            name="Back to class",
            label="Back to class",
            hotspot=RectHotspot(size.width - 70, 8, 62, 16),
        )
    )

    project.add_scenario(classroom)
    project.add_scenario(market)
    project.set_start("classroom")

    # --- event logic ---------------------------------------------------------
    r("code_event_handlers", "programmer", "navigation click handlers")
    project.events.add(
        EventBinding(
            scenario_id="classroom",
            trigger=Trigger.CLICK,
            object_id="classroom-go-market",
            actions=[SwitchScenario(target="market")],
        )
    )
    project.events.add(
        EventBinding(
            scenario_id="market",
            trigger=Trigger.CLICK,
            object_id="market-go-classroom",
            actions=[SwitchScenario(target="classroom")],
        )
    )
    r("code_event_handlers", "programmer", "repair puzzle handler")
    project.events.add(
        EventBinding(
            scenario_id="classroom",
            trigger=Trigger.USE_ITEM,
            object_id="computer",
            item_id="ram",
            once=True,
            actions=[
                SetProperty(object_id="computer", key="state", value="fixed"),
                TakeItem(item_id="ram"),
                AwardBonus(points=20),
                ShowText(text="The computer boots!"),
                EndGame(outcome="won"),
            ],
        )
    )
    r("debug_and_test", "programmer", "manual playtest + fixes")
    r("debug_and_test", "programmer", "edge cases: wrong item, re-entry")

    game = project.compile()
    return game, ledger
