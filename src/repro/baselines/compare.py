"""The E6 experiment harness: VGBL vs linear video vs slideshow.

Builds three *content-equivalent* lessons from the same knowledge map —
the same items, taught by the medium's native delivery mechanism — runs
matched cohorts (same seeds, so the same student profiles face every
platform), and returns per-platform summaries.  Content equivalence plus
matched cohorts isolates the platform effect, which is what the paper's
§2.2 comparison asserts and never measures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.project import CompiledGame
from ..learning.analytics import CohortSummary, OutcomeRecord, summarize
from ..learning.knowledge import DeliveryPoint, KnowledgeMap
from ..students.cohort import ExposureReport, _measure_gain
from ..students.model import sample_profile
from .linear_video import LinearVideoLesson, simulate_watch
from .slideshow import SlideshowLesson, simulate_slideshow

__all__ = [
    "build_time_map",
    "run_comparison",
    "run_linear_cohort",
    "run_slideshow_cohort",
]


def build_time_map(
    kmap: KnowledgeMap, duration: float
) -> KnowledgeMap:
    """Re-deliver a game knowledge map as evenly-spaced time windows.

    The content-equivalence transform: every item keeps its id/text/
    weight but is delivered passively in its own slice of the runtime.
    """
    items = kmap.items
    if not items:
        raise ValueError("knowledge map is empty")
    out = KnowledgeMap()
    slice_len = duration / len(items)
    for i, item in enumerate(items):
        out.add(
            item,
            [DeliveryPoint(kind="time", t0=i * slice_len, t1=(i + 1) * slice_len)],
        )
    return out


def run_linear_cohort(
    kmap: KnowledgeMap,
    duration: float,
    n_students: int,
    seed: int,
) -> Tuple[CohortSummary, List[OutcomeRecord]]:
    """Cohort on the linear-video lesson (time-window deliveries)."""
    tmap = build_time_map(kmap, duration)
    # One shot change per knowledge slice: filmed lesson segments.
    changes = tuple(
        (i + 1) * duration / max(1, len(kmap.items))
        for i in range(max(0, len(kmap.items) - 1))
    )
    lesson = LinearVideoLesson(duration=duration, shot_changes=changes)
    rng = np.random.default_rng(seed)
    records: List[OutcomeRecord] = []
    for k in range(n_students):
        profile = sample_profile(f"lin-{k}", rng)
        res = simulate_watch(lesson, profile, rng)
        exposures = tmap.exposures_from_session(
            entered_scenarios=set(),
            fired_bindings=set(),
            examined_objects=set(),
            dialogue_nodes=set(),
            watched_seconds=res.time_on_task,
        )
        report = ExposureReport(exposures=exposures, mean_attention=res.mean_attention)
        gain = _measure_gain(profile, tmap, report, rng)
        records.append(
            OutcomeRecord(
                player_id=profile.player_id,
                platform="linear_video",
                time_on_task=res.time_on_task,
                completed=res.completed,
                dropped_out=res.dropped_out,
                interactions=res.interactions,
                knowledge_gain=gain,
                final_engagement=res.final_attention,
            )
        )
    return summarize(records), records


def run_slideshow_cohort(
    kmap: KnowledgeMap,
    duration: float,
    n_students: int,
    seed: int,
    seconds_per_page: float = 45.0,
) -> Tuple[CohortSummary, List[OutcomeRecord]]:
    """Cohort on the slideshow deck (one knowledge slice per page set)."""
    n_pages = max(1, int(round(duration / seconds_per_page)))
    lesson = SlideshowLesson(n_pages=n_pages, seconds_per_page=seconds_per_page)
    tmap = build_time_map(kmap, lesson.duration)
    rng = np.random.default_rng(seed)
    records: List[OutcomeRecord] = []
    for k in range(n_students):
        profile = sample_profile(f"sli-{k}", rng)
        res, exposed_time = simulate_slideshow(lesson, profile, rng)
        exposures = tmap.exposures_from_session(
            entered_scenarios=set(),
            fired_bindings=set(),
            examined_objects=set(),
            dialogue_nodes=set(),
            watched_seconds=exposed_time,
        )
        report = ExposureReport(exposures=exposures, mean_attention=res.mean_attention)
        gain = _measure_gain(profile, tmap, report, rng)
        records.append(
            OutcomeRecord(
                player_id=profile.player_id,
                platform="slideshow",
                time_on_task=res.time_on_task,
                completed=res.completed,
                dropped_out=res.dropped_out,
                interactions=res.interactions,
                knowledge_gain=gain,
                final_engagement=res.final_attention,
            )
        )
    return summarize(records), records


def run_comparison(
    game: CompiledGame,
    kmap: KnowledgeMap,
    n_students: int = 60,
    seed: int = 2007,
    lesson_duration: float = 600.0,
) -> Dict[str, CohortSummary]:
    """The full E6 comparison; returns platform → summary."""
    from ..students.cohort import run_vgbl_cohort

    vgbl, _ = run_vgbl_cohort(game, kmap, n_students, seed)
    linear, _ = run_linear_cohort(kmap, lesson_duration, n_students, seed)
    slides, _ = run_slideshow_cohort(kmap, lesson_duration, n_students, seed)
    return {"vgbl": vgbl, "linear_video": linear, "slideshow": slides}
