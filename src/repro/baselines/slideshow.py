"""Baseline 2: page-based slideshow e-learning.

The "traditional e-learning systems" of §2.2: content on pages the
student clicks through.  Structurally between the two extremes — every
page turn is a (tiny) interaction, so attention gets micro-boosts the
linear video lacks, but there is still no *responsive* feedback or
reward, which keeps it below the game platform.

Knowledge delivery is per page: finishing page ``k`` exposes that page's
items passively (time-window deliveries laid out one window per page).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..students.model import AttentionModel, StudentProfile
from ..students.player import PlayResult

__all__ = ["SlideshowLesson", "page_windows", "simulate_slideshow"]


@dataclass(frozen=True, slots=True)
class SlideshowLesson:
    """A deck: page count and nominal reading seconds per page."""

    n_pages: int
    seconds_per_page: float = 45.0

    def __post_init__(self) -> None:
        if self.n_pages < 1:
            raise ValueError("deck needs at least one page")
        if self.seconds_per_page <= 0:
            raise ValueError("seconds_per_page must be positive")

    @property
    def duration(self) -> float:
        return self.n_pages * self.seconds_per_page


def page_windows(lesson: SlideshowLesson) -> List[Tuple[float, float]]:
    """The (t0, t1) knowledge-delivery window of each page."""
    s = lesson.seconds_per_page
    return [(k * s, (k + 1) * s) for k in range(lesson.n_pages)]


def simulate_slideshow(
    lesson: SlideshowLesson,
    profile: StudentProfile,
    rng: np.random.Generator,
) -> PlayResult:
    """One student clicking through the deck.

    Reading a page takes the nominal time scaled by the student's pace
    (slower readers take longer, attention decays more per page); each
    completed page turn is an interaction with a micro-boost.
    """
    attention = AttentionModel(profile)
    # Reading pace varies with the student's tempo, but sub-linearly —
    # slow *clickers* are not proportionally slow *readers*.
    pace = (profile.action_seconds / 4.0) ** 0.5
    t = 0.0
    pages_done = 0
    trace: List[Tuple[float, float]] = []

    for _page in range(lesson.n_pages):
        read_time = float(
            rng.gamma(shape=6.0, scale=lesson.seconds_per_page * pace / 6.0)
        )
        attention.decay(read_time)
        t += read_time
        if attention.dropped_out:
            break
        pages_done += 1
        attention.event("page_turn")
        trace.append((t, attention.level))

    completed = pages_done == lesson.n_pages
    # time_on_task is capped at the nominal duration for exposure purposes:
    # watching window k requires having *finished* page k.
    exposed_time = pages_done * lesson.seconds_per_page
    return PlayResult(
        completed=completed,
        dropped_out=attention.dropped_out,
        time_on_task=t,
        interactions=pages_done,
        final_attention=attention.level,
        mean_attention=attention.mean_level,
        score=0,
        scenarios_visited=pages_done,
        entered_scenarios=set(),
        fired_bindings=set(),
        examined_objects=set(),
        dialogue_nodes=set(),
        attention_trace=trace,
    ), exposed_time
