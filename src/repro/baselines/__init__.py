"""Comparison baselines: linear video lesson, slideshow e-learning, and
the programmer-built game workflow."""

from .compare import (
    build_time_map,
    run_comparison,
    run_linear_cohort,
    run_slideshow_cohort,
)
from .linear_video import LinearVideoLesson, simulate_watch
from .scripted_game import build_scripted_classroom_game
from .slideshow import SlideshowLesson, page_windows, simulate_slideshow

__all__ = [
    "LinearVideoLesson",
    "SlideshowLesson",
    "build_scripted_classroom_game",
    "build_time_map",
    "page_windows",
    "run_comparison",
    "run_linear_cohort",
    "run_slideshow_cohort",
    "simulate_slideshow",
    "simulate_watch",
]
