"""Baseline 1: the traditional linear video lesson.

§2.1: "Playing order of traditional video is linear; users can only make
simple decisions to control the flow of video playing."  This baseline
models exactly that: the student presses play and watches; the only
interactions are an optional pause/resume pair.  Knowledge is delivered
by *time windows* (passive exposure); attention follows pure decay with
a small novelty bump at shot changes (a cut is mildly re-engaging) —
crucially there is **no responsive feedback**, which is the structural
difference the paper attributes the engagement gap to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..students.model import AttentionModel, StudentProfile
from ..students.player import PlayResult

__all__ = ["LinearVideoLesson", "simulate_watch"]


@dataclass(frozen=True, slots=True)
class LinearVideoLesson:
    """A lesson video: total duration and its shot-change times."""

    duration: float
    shot_changes: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("lesson duration must be positive")
        for t in self.shot_changes:
            if not 0 <= t <= self.duration:
                raise ValueError(f"shot change at {t} outside the video")


def simulate_watch(
    lesson: LinearVideoLesson,
    profile: StudentProfile,
    rng: np.random.Generator,
    tick: float = 5.0,
) -> PlayResult:
    """One student watching the lesson; returns the common PlayResult.

    The student may pause once (probability grows with diligence) which
    resets a little attention; dropping below the dropout threshold
    means they stop watching (``time_on_task`` < duration).
    """
    attention = AttentionModel(profile)
    t = 0.0
    interactions = 0
    changes = sorted(lesson.shot_changes)
    next_change = 0
    paused_once = False
    trace: List[Tuple[float, float]] = []

    while t < lesson.duration:
        dt = min(tick, lesson.duration - t)
        attention.decay(dt)
        t += dt
        while next_change < len(changes) and changes[next_change] <= t:
            attention.event("cut")
            next_change += 1
        if (
            not paused_once
            and attention.level < 0.45
            and rng.random() < 0.3 * profile.diligence
        ):
            # A diligent student pauses, stretches, resumes.
            paused_once = True
            interactions += 2  # pause + resume
            attention.event("feedback")
        trace.append((t, attention.level))
        if attention.dropped_out:
            break

    watched = t
    completed = watched >= lesson.duration and not attention.dropped_out
    return PlayResult(
        completed=completed,
        dropped_out=attention.dropped_out,
        time_on_task=watched,
        interactions=interactions,
        final_attention=attention.level,
        mean_attention=attention.mean_level,
        score=0,
        scenarios_visited=1,
        entered_scenarios=set(),
        fired_bindings=set(),
        examined_objects=set(),
        dialogue_nodes=set(),
        attention_trace=trace,
    )
