"""Serve-layer benchmark harness: shard-count sweeps with obs readouts.

Shared by ``repro serve-bench`` and ``benchmarks/bench_serve.py`` so the
CLI, the CI smoke job and a laptop all measure the same thing: offer a
fixed load of cohort-scripted sessions to managers of increasing shard
count and report completed sessions/second plus per-shard p95 tick
latency, read back from the obs histogram.

Because the metrics registry is process-global and cumulative, each
sweep point snapshots the ``repro_serve_tick_seconds`` histogram before
and after its run and quantiles the *difference* — so a 4-shard run's
p95 is never polluted by the 1-shard run that preceded it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.project import CompiledGame
from ..obs import metrics as _obs
from ..obs.slo import histogram_quantile
from ..persist import PersistenceConfig
from ..students.scripts import PlayerScript, cohort_scripts
from .loadgen import LoadGenerator, LoadReport
from .manager import ServeConfig, SessionManager

__all__ = ["ShardSweepResult", "run_serve_benchmark"]

_TICK_METRIC = "repro_serve_tick_seconds"


@dataclass(slots=True)
class ShardSweepResult:
    """One sweep point: a full load run at a fixed shard count."""

    shards: int
    report: LoadReport
    #: p95 busy-tick seconds merged over all shards (None: obs off)
    tick_p95_s: Optional[float] = None
    #: shard label -> p95 busy-tick seconds for that shard alone
    tick_p95_by_shard: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {"shards": self.shards}
        row.update(self.report.as_row())
        row["tick_p95_ms"] = (
            "-" if self.tick_p95_s is None else f"{self.tick_p95_s * 1e3:.2f}"
        )
        return row


def _tick_series(
    snapshot: Dict[str, Any]
) -> Tuple[Dict[str, Dict[str, Any]], List[float]]:
    """(shard-label -> histogram series, bucket bounds) for the tick metric."""
    for metric in snapshot.get("metrics", []):
        if metric.get("name") == _TICK_METRIC:
            return {
                s["labels"].get("shard", ""): s for s in metric["series"]
            }, metric.get("buckets", [])
    return {}, []


def _diff_entry(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Synthetic histogram entry holding only this run's observations."""
    after_series, buckets = _tick_series(after)
    before_series, _ = _tick_series(before)
    series = []
    for label, s in after_series.items():
        prev = before_series.get(label)
        counts = list(s["counts"])
        total = s["sum"]
        count = s["count"]
        if prev is not None:
            counts = [c - p for c, p in zip(counts, prev["counts"])]
            total -= prev["sum"]
            count -= prev["count"]
        if count > 0:
            series.append(
                {"labels": dict(s["labels"]), "counts": counts,
                 "sum": total, "count": count}
            )
    if not series:
        return None
    return {"name": _TICK_METRIC, "kind": "histogram",
            "buckets": buckets, "series": series}


def run_serve_benchmark(
    game: CompiledGame,
    shard_counts: Sequence[int],
    sessions: int = 200,
    scripts: Optional[Sequence[PlayerScript]] = None,
    n_scripts: int = 16,
    seed: int = 2007,
    arrival_rate: float = 0.0,
    tick_interval_s: float = 0.01,
    max_steps_per_tick: int = 20,
    max_sessions: int = 100_000,
    drain_timeout: float = 120.0,
    persistence: Optional[PersistenceConfig] = None,
) -> List[ShardSweepResult]:
    """Run the fixed load once per shard count; see module docstring.

    The offered load (``sessions`` scripted runs) and the per-shard
    capacity (``max_steps_per_tick / tick_interval_s`` steps/s) are held
    constant across the sweep, so sessions/second differences isolate
    the effect of shard count alone.
    """
    if not shard_counts:
        raise ValueError("need at least one shard count")
    if scripts is None:
        scripts = cohort_scripts(game, n_scripts, seed=seed)
    results: List[ShardSweepResult] = []
    for n_shards in shard_counts:
        sweep_persist = persistence
        if persistence is not None and len(shard_counts) > 1:
            # One journal tree per sweep point: a 4-shard run must not
            # append to (or recover from) the 1-shard run's segments.
            from dataclasses import replace as _replace
            from pathlib import Path as _Path

            sweep_persist = _replace(
                persistence,
                directory=_Path(persistence.directory) / f"shards-{n_shards}",
            )
        config = ServeConfig(
            n_shards=n_shards,
            max_sessions=max_sessions,
            tick_interval_s=tick_interval_s,
            max_steps_per_tick=max_steps_per_tick,
            persistence=sweep_persist,
        )
        before = _obs.snapshot()
        with SessionManager(config) as manager:
            gen = LoadGenerator(
                manager, game, scripts, arrival_rate=arrival_rate
            )
            report = gen.run(sessions, drain_timeout=drain_timeout)
        after = _obs.snapshot()
        result = ShardSweepResult(shards=n_shards, report=report)
        entry = _diff_entry(before, after)
        if entry is not None:
            result.tick_p95_s = histogram_quantile(entry, 0.95)
            for series in entry["series"]:
                label = series["labels"].get("shard", "")
                one = {**entry, "series": [series]}
                q = histogram_quantile(one, 0.95, labels={"shard": label})
                if q is not None:
                    result.tick_p95_by_shard[label] = q
        results.append(result)
    return results
