"""Sharded multi-session game server: thousands of engines, N threads.

The paper's runtime plays one student at a time; a deployment serves a
school district.  The :class:`SessionManager` turns the single-player
engine into a multi-tenant server with a classic game-server shape:

* **Sharding.**  Sessions are hash-partitioned by player id across N
  worker shards (stable CRC32, *not* Python's salted ``hash()``, so a
  player lands on the same shard across processes and restarts).  Each
  shard owns its sessions exclusively — engines are never shared across
  threads, so session stepping takes no locks.
* **Batched tick scheduling.**  Each shard runs a paced tick loop: per
  tick it admits up to ``max_admissions_per_tick`` queued sessions and
  advances up to ``max_steps_per_tick`` session steps round-robin, then
  sleeps out the remainder of ``tick_interval_s``.  Capacity is
  therefore *per shard by construction* — adding shards adds throughput
  — and per-session progress stays fair under overload.
* **Admission control.**  A global in-flight cap (``max_sessions``)
  rejects new work instead of queueing unboundedly; rejected admissions
  are counted, queue depth and active sessions are exported as gauges,
  and per-shard tick latency is a labelled histogram — the numbers the
  load benchmark's SLO rules assert on.
* **Graceful drain.**  ``drain()`` stops admissions and waits for every
  in-flight session to finish; ``shutdown()`` stops the shard threads
  (after an optional drain) and zeroes the gauges.  With persistence
  on, every shard journal is flushed, fsynced and closed before
  ``shutdown()`` returns — draining or discarding.
* **Durability (opt-in).**  ``ServeConfig(persistence=...)`` gives each
  shard its own write-ahead journal (:mod:`repro.persist`) — no
  cross-shard locking, by construction.  Admissions log a start
  record, steps log input records (group-committed: one fsync covers a
  batch across sessions), finishes log an end record; sessions are
  snapshotted every N inputs and fully-covered WAL segments are
  compacted away.  After a crash, :meth:`SessionManager.recover`
  rebuilds every committed session bit-identically and ``start()``
  resumes stepping them.

The manager is a context manager::

    with SessionManager(ServeConfig(n_shards=4)) as mgr:
        mgr.submit("alice", factory)
        ...
        mgr.drain()
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from time import monotonic, perf_counter, sleep
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .. import faultline as _fl
from ..obs import logging as _obslog
from ..obs import metrics as _obs
from ..obs.attribution import get_store as _trace_store
from ..persist import (
    Journal,
    PersistenceConfig,
    PersistError,
    ShardRecovery,
    SnapshotStore,
    WalLayoutError,
    compact_segments,
    compaction_watermark,
    end_record,
    input_record,
    recover_shard,
    snapshot_dir_for,
    start_record,
)
from .session import ServedSession, SessionFactory

__all__ = ["ServeConfig", "SessionManager", "shard_for"]

_M_TICK = _obs.histogram(
    "repro_serve_tick_seconds",
    "Busy time of one shard tick (admissions + session steps), by shard",
)
_M_ACTIVE = _obs.gauge(
    "repro_serve_active_sessions",
    "Sessions currently being stepped, by shard",
)
_M_QUEUE = _obs.gauge(
    "repro_serve_queue_depth",
    "Admitted sessions waiting for their shard to pick them up, by shard",
)
_M_ADMITTED = _obs.counter(
    "repro_serve_admitted_total",
    "Sessions accepted by admission control",
)
_M_REJECTED = _obs.counter(
    "repro_serve_rejected_total",
    "Sessions rejected by admission control (backpressure)",
)
_M_COMPLETED = _obs.counter(
    "repro_serve_completed_total",
    "Sessions run to completion, by shard",
)
_M_FAILURES = _obs.counter(
    "repro_serve_session_failures_total",
    "Sessions whose factory or step raised, by shard",
)
_M_STEPS = _obs.counter(
    "repro_serve_steps_total",
    "Session steps executed across all shards, by shard",
)
_M_DURABILITY_TIMEOUT = _obs.counter(
    "repro_persist_durability_timeout_total",
    "Traced ENDs whose end record missed the durability wait "
    "(group-commit timeout or journal failure), by shard",
)

_LOG = _obslog.get_logger("serve")


def shard_for(player_id: str, n_shards: int) -> int:
    """Stable hash partition: the same player always lands on the same
    shard, across processes and Python hash-seed randomisation."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return zlib.crc32(player_id.encode("utf-8")) % n_shards


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Knobs of the serving layer (all per-shard unless noted)."""

    n_shards: int = 2
    #: global cap on in-flight (queued + active) sessions; admissions
    #: beyond it are rejected, not queued (backpressure, not buffering)
    max_sessions: int = 10_000
    #: shard tick pacing — each shard wakes this often
    tick_interval_s: float = 0.01
    #: session-step budget per shard per tick (the batch size)
    max_steps_per_tick: int = 20
    #: new sessions started per shard per tick (engine construction is
    #: paid here; bounding it keeps tick latency flat under a burst)
    max_admissions_per_tick: int = 32
    #: retained for compatibility: drain() used to poll at this
    #: interval; it now waits on a condition variable and wakes the
    #: moment the last in-flight session closes
    drain_poll_s: float = 0.005
    #: how long a traced session's END may ride out its end record's
    #: group commit before the END is reported non-durable (counted in
    #: repro_persist_durability_timeout_total)
    durable_wait_s: float = 5.0
    #: durability: when set, every shard owns a write-ahead journal
    #: under ``persistence.shard_dir(i)`` and the manager becomes
    #: crash-recoverable via :meth:`SessionManager.recover`
    persistence: Optional[PersistenceConfig] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if self.max_steps_per_tick < 1:
            raise ValueError("max_steps_per_tick must be >= 1")
        if self.max_admissions_per_tick < 1:
            raise ValueError("max_admissions_per_tick must be >= 1")
        if self.drain_poll_s <= 0:
            raise ValueError("drain_poll_s must be positive")
        if self.durable_wait_s <= 0:
            raise ValueError("durable_wait_s must be positive")

    @property
    def steps_per_second_per_shard(self) -> float:
        """Nominal stepping capacity one shard offers."""
        return self.max_steps_per_tick / self.tick_interval_s


class _Shard:
    """One worker: an inbox of admitted sessions and a paced tick loop."""

    def __init__(self, index: int, config: ServeConfig, manager: "SessionManager") -> None:
        self.index = index
        self.label = str(index)
        self.config = config
        self._manager = manager
        self._inbox: Deque[Tuple[str, SessionFactory]] = deque()
        self._inbox_lock = threading.Lock()
        self._active: Deque[ServedSession] = deque()
        self._stop = threading.Event()
        self._discard = threading.Event()
        self.completed = 0
        self.failed = 0
        self.ticks = 0
        self.steps = 0
        #: durability (None when persistence is off or the journal died)
        self._journal: Optional[Journal] = None
        self._snapshots: Optional[SnapshotStore] = None
        #: player id -> newest LSN a snapshot covers (start_lsn - 1
        #: before the first snapshot); drives the compaction watermark
        self._covered: Dict[str, int] = {}
        #: player id -> input records logged since the last snapshot
        self._since_snapshot: Dict[str, int] = {}
        #: sessions recovered from the WAL whose start record must not
        #: be re-logged (seeded by SessionManager.recover)
        self._recovered_ids: set = set()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-serve-shard-{index}", daemon=True
        )

    # -- called from the manager (any thread) --------------------------
    def start(self) -> None:
        self._thread.start()

    def enqueue(self, player_id: str, factory: SessionFactory) -> None:
        with self._inbox_lock:
            self._inbox.append((player_id, factory))

    def request_stop(self, discard: bool = False) -> None:
        if discard:
            self._discard.set()
        self._stop.set()

    def seed_recovered(self, session: ServedSession, covered_lsn: int) -> None:
        """Queue a WAL-recovered session for resumption (pre-start only).

        The session's history is already durable: its start record (or
        a snapshot at ``covered_lsn``) is on disk, so admission must
        not journal it again.
        """
        sid = session.player_id
        self._recovered_ids.add(sid)
        self._covered[sid] = covered_lsn
        self._since_snapshot[sid] = 0
        with self._inbox_lock:
            self._inbox.append((sid, lambda _pid, s=session: s))

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread.is_alive():
            self._thread.join(timeout)

    @property
    def queue_depth(self) -> int:
        return len(self._inbox)

    @property
    def active_count(self) -> int:
        return len(self._active)

    # -- shard thread: durability hooks --------------------------------
    def _open_journal(self) -> None:
        persistence = self.config.persistence
        if persistence is None:
            return
        directory = persistence.shard_dir(self.index)
        try:
            self._journal = Journal(directory, persistence, label=self.label)
            self._snapshots = SnapshotStore(snapshot_dir_for(directory))
            barrier = self._manager._quorum_barrier
            if persistence.quorum_standbys > 0 and barrier is not None:
                require = persistence.quorum_standbys
                shard = self.index
                self._journal.set_quorum(
                    require,
                    lambda lsn, timeout: barrier(shard, lsn, require, timeout),
                )
        except Exception:
            self._journal = None
            self._snapshots = None
            _LOG.error("persist.journal_open_failed", shard=self.index,
                       dir=str(directory))

    def _close_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def _journal_append(self, record: Dict) -> Optional[int]:
        """Append one record; a dead journal disables persistence for
        this shard (serving keeps going — durability is best-effort
        once the disk has failed, and the failure is counted)."""
        if self._journal is None:
            return None
        try:
            lsn = self._journal.append(record)
        except PersistError:
            self._journal = None
            _LOG.error("persist.journal_lost", shard=self.index)
            return None
        hook = self._manager._repl_hook
        if hook is not None:
            # replication wakeup: tell the shipping source new log
            # exists.  Best-effort by design — the hook only nudges a
            # tailer that would find the records on its next pass
            # anyway, so a broken hook must not take the shard down.
            try:
                hook(self.index, lsn)
            except Exception:
                _LOG.warning("repl.hook_failed", shard=self.index)
        return lsn

    def _maybe_snapshot(self, session: ServedSession, lsn: int) -> None:
        """Snapshot a session every ``snapshot_every`` logged inputs and
        compact away WAL segments the snapshots now fully cover."""
        persistence = self.config.persistence
        if (
            self._snapshots is None
            or persistence is None
            or persistence.snapshot_every <= 0
        ):
            return
        sid = session.player_id
        count = self._since_snapshot.get(sid, 0) + 1
        if count < persistence.snapshot_every:
            self._since_snapshot[sid] = count
            return
        self._since_snapshot[sid] = 0
        try:
            self._snapshots.write(
                sid, session.dt, session.ops, session.cursor,
                session.engine.state.to_dict(), lsn=lsn,
            )
        except OSError:  # pragma: no cover - disk death
            return
        self._covered[sid] = lsn
        if persistence.compact and self._journal is not None:
            watermark = compaction_watermark(
                self._covered.values(), self._journal.durable_lsn
            )
            compact_segments(self._journal.directory, watermark)

    def _retire_persisted(self, session: ServedSession) -> Optional[int]:
        """End-of-life bookkeeping for a finished session.

        Returns the end record's LSN (None when the journal is gone) so
        a traced session can wait out its own fsync.
        """
        sid = session.player_id
        lsn = self._journal_append(end_record(sid, session.engine.state.outcome))
        self._covered.pop(sid, None)
        self._since_snapshot.pop(sid, None)
        self._recovered_ids.discard(sid)
        if self._snapshots is not None:
            self._snapshots.remove(sid)
        return lsn

    # -- shard thread --------------------------------------------------
    def _admit(self) -> None:
        if _fl.ACTIVE:
            action = _fl.fire("serve.admit", shard=self.label)
            if action is not None and action.kind == "skip":
                # queue-pressure spike: arrivals keep queueing, nothing
                # starts this tick
                return
        for _ in range(self.config.max_admissions_per_tick):
            with self._inbox_lock:
                if not self._inbox:
                    return
                player_id, factory = self._inbox.popleft()
            try:
                session = factory(player_id)
                session.start()
                if session.trace_id is not None:
                    # inbox residency ends here: admission -> first run
                    _trace_store().mark(session.trace_id, "queue_wait")
            except Exception:
                self.failed += 1
                _M_FAILURES.inc(shard=self.label)
                _LOG.warning("serve.session_failed", shard=self.index,
                             player=player_id, at="admit")
                self._manager._session_closed()
                continue
            if self._journal is not None and player_id not in self._recovered_ids:
                lsn = self._journal_append(
                    start_record(player_id, session.dt, session.ops)
                )
                if lsn is not None:
                    # nothing snapshotted yet: the start record itself
                    # must survive compaction
                    self._covered[player_id] = lsn - 1
                    self._since_snapshot[player_id] = 0
            self._active.append(session)

    def _step_batch(self) -> None:
        budget = self.config.max_steps_per_tick
        done_count = 0
        journal = self._journal
        while self._active and budget > 0:
            session = self._active.popleft()
            op = session.peek() if journal is not None else None
            try:
                done = session.step()
            except Exception:
                session.failed = True
                done = True
                self.failed += 1
                _M_FAILURES.inc(shard=self.label)
                _LOG.warning("serve.session_failed", shard=self.index,
                             player=session.player_id, at="step")
            if journal is not None and op is not None and not session.failed:
                lsn = self._journal_append(input_record(session.player_id, op))
                journal = self._journal  # may have died on append
                if lsn is not None and not done:
                    self._maybe_snapshot(session, lsn)
            budget -= 1
            self.steps += 1
            if done:
                trace_id = session.trace_id
                if trace_id is not None:
                    # wall residency on this shard, pacing included:
                    # that is what the client actually waited for
                    _trace_store().mark(trace_id, "shard_step")
                if not session.failed:
                    self.completed += 1
                    _M_COMPLETED.inc(shard=self.label)
                if journal is not None or self._snapshots is not None:
                    end_lsn = self._retire_persisted(session)
                    if trace_id is not None:
                        if end_lsn is not None and self._journal is not None:
                            # Traced sessions ride out their own group
                            # commit (bounded by the window), so the
                            # fsync_wait phase is measured, not modelled
                            # — and their END implies a durable end
                            # record.  A wait that comes back False
                            # (flusher timeout or journal failure)
                            # means that implication is broken: say so
                            # instead of reporting a silently
                            # non-durable END.
                            durable = self._journal.wait_durable(
                                end_lsn, timeout=self.config.durable_wait_s
                            )
                            if not durable:
                                _M_DURABILITY_TIMEOUT.inc(shard=self.label)
                                _LOG.warning(
                                    "persist.durability_timeout",
                                    shard=self.index,
                                    player=session.player_id,
                                    lsn=end_lsn,
                                    waited_s=self.config.durable_wait_s,
                                )
                                _trace_store().annotate(
                                    trace_id, durable=False
                                )
                        _trace_store().mark(trace_id, "fsync_wait")
                elif trace_id is not None:
                    # no journal: a zero-width mark keeps the phase
                    # partition exact (fsync_wait ~ 0)
                    _trace_store().mark(trace_id, "fsync_wait")
                done_count += 1
                self._manager._session_closed()
                callback = session.on_done
                if callback is not None:
                    # Fires after the final step *and* the durability
                    # bookkeeping: the session is fully settled, so a
                    # completion bridge (e.g. the network gateway) can
                    # read the engine state without racing this shard.
                    try:
                        callback(session)
                    except Exception:
                        _LOG.warning("serve.on_done_failed", shard=self.index,
                                     player=session.player_id)
            else:
                self._active.append(session)
        stepped = self.config.max_steps_per_tick - budget
        if stepped and _obs.enabled():
            _M_STEPS.inc(stepped, shard=self.label)
            if done_count:
                _LOG.debug("serve.tick", sample=0.05, shard=self.index,
                           stepped=stepped, finished=done_count)

    def _discard_backlog(self) -> None:
        """Abandon queued and active sessions (non-draining shutdown)."""
        with self._inbox_lock:
            dropped = len(self._inbox) + len(self._active)
            self._inbox.clear()
        self._active.clear()
        for _ in range(dropped):
            self._manager._session_closed()

    def _run(self) -> None:
        interval = self.config.tick_interval_s
        self._open_journal()
        try:
            while True:
                if self._discard.is_set():
                    self._discard_backlog()
                    break
                t0 = perf_counter()
                if _fl.ACTIVE:
                    action = _fl.fire("serve.tick", shard=self.label)
                    if action is not None and action.seconds > 0:
                        # a stalled shard thread: the stall lands inside
                        # the tick's busy time, so it shows up in the
                        # repro_serve_tick_seconds histogram
                        sleep(action.seconds)
                self._admit()
                self._step_batch()
                busy = perf_counter() - t0
                self.ticks += 1
                if _obs.enabled():
                    _M_TICK.observe(busy, shard=self.label)
                    _M_ACTIVE.set(len(self._active), shard=self.label)
                    _M_QUEUE.set(len(self._inbox), shard=self.label)
                if self._stop.is_set() and not self._active and not self._inbox:
                    break
                remaining = interval - busy
                if remaining > 0:
                    if self._stop.is_set():
                        # Already stopping: keep the paced sleep so the
                        # remaining backlog drains at tick rate instead
                        # of a busy spin.
                        sleep(remaining)
                    else:
                        # Idle pacing doubles as the stop wakeup: a
                        # stop (or discard) request interrupts the wait
                        # instead of riding out the rest of the tick.
                        self._stop.wait(remaining)
        finally:
            # Flush-on-exit: close() drains the group-commit queue and
            # fsyncs, so shutdown(drain=True) — which joins this thread
            # — returns only once every shard journal is durable.  The
            # discard path closes the journal just as cleanly: the
            # backlog is dropped, the log is not torn.
            self._close_journal()
        if _obs.enabled():
            _M_ACTIVE.set(0, shard=self.label)
            _M_QUEUE.set(0, shard=self.label)


class SessionManager:
    """Owns the shards; the only public door into the serving layer."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self._shards: List[_Shard] = [
            _Shard(i, self.config, self) for i in range(self.config.n_shards)
        ]
        self._lock = threading.Lock()
        #: signalled when _inflight drops to zero; drain() waits on it
        #: instead of polling
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._rejected = 0
        self._accepting = False
        self._started = False
        self._stopped = False
        #: optional ``(shard_index, lsn)`` callback fired after every
        #: successful journal append (see :meth:`set_replication_hook`)
        self._repl_hook: Optional[Callable[[int, int], None]] = None
        #: optional quorum-commit barrier (see :meth:`set_quorum_barrier`)
        self._quorum_barrier: Optional[
            Callable[[int, int, int, Optional[float]], bool]
        ] = None

    def set_replication_hook(
        self, hook: Optional[Callable[[int, int], None]]
    ) -> None:
        """Install a ``(shard_index, lsn)`` callback fired on the shard
        thread after every successful journal append.

        The replication source uses it to wake its per-shard tailers the
        moment new log exists instead of polling.  The callback must be
        cheap and non-blocking (it runs inside the shard tick); pass
        ``None`` to uninstall.  Zero cost when unset.
        """
        self._repl_hook = hook

    def set_quorum_barrier(
        self,
        barrier: Optional[Callable[[int, int, int, Optional[float]], bool]],
    ) -> None:
        """Install the quorum-commit barrier,
        ``(shard, lsn, require, timeout) -> bool``.

        With ``PersistenceConfig.quorum_standbys > 0`` each shard
        journal consults it from ``wait_durable`` once a record is
        locally durable: True means ``require`` standbys have mirrored
        ``lsn``.  The replication source installs its ack ledger here
        (:meth:`ReplicationSource.attach`).  Must be set before
        :meth:`start` — shard journals arm themselves when they open.
        """
        self._quorum_barrier = barrier

    # ------------------------------------------------------------------
    def start(self) -> "SessionManager":
        """Spawn the shard threads and open admissions."""
        if self._started:
            raise RuntimeError("manager already started")
        self._started = True
        self._accepting = True
        for shard in self._shards:
            shard.start()
        if _obs.enabled():
            _LOG.info("serve.start", shards=self.config.n_shards,
                      max_sessions=self.config.max_sessions)
        return self

    def __enter__(self) -> "SessionManager":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown(drain=not any(exc))

    # ------------------------------------------------------------------
    def recover(
        self,
        game,
        with_video: bool = False,
        session_hook: Optional[Callable[[ServedSession], None]] = None,
    ) -> List[ShardRecovery]:
        """Rebuild the previous process's committed sessions from disk.

        Call between construction and :meth:`start` on a manager whose
        config carries the same ``persistence`` directory the crashed
        process used.  Each shard's journal is scanned (torn tails
        truncated and counted), every committed-but-unfinished session
        is rebuilt bit-identically from its latest snapshot plus input
        replay, and the rebuilt sessions are queued on their owning
        shards — ``start()`` then resumes stepping them exactly where
        the crash cut them off.  Returns the per-shard recovery
        reports.

        ``session_hook`` (when given) sees every rebuilt
        :class:`ServedSession` before it is queued — the network
        gateway uses it to re-arm completion callbacks so reconnecting
        clients still receive their END frames.
        """
        if self.config.persistence is None:
            raise RuntimeError("recover() needs ServeConfig.persistence")
        if self._started:
            raise RuntimeError("recover() must run before start()")
        root = Path(self.config.persistence.directory)
        if root.is_dir():
            entries = list(root.iterdir())
            has_shards = any(
                e.is_dir() and e.name.startswith("shard-") for e in entries
            )
            if entries and not has_shards:
                # A populated directory with no shard-* journals is not
                # a persistence root the serving layer ever wrote —
                # refuse loudly rather than "recovering" zero sessions
                # from somebody else's files.
                names = sorted(e.name for e in entries)
                raise WalLayoutError(
                    f"{root} is not a persistence root: no shard-* "
                    f"journal directories, found {names[:5]}"
                )
        reports: List[ShardRecovery] = []
        for shard in self._shards:
            directory = self.config.persistence.shard_dir(shard.index)
            if not directory.is_dir():
                reports.append(ShardRecovery(directory=directory))
                continue
            report = recover_shard(directory, game, with_video=with_video)
            for recovered in report.sessions:
                session = ServedSession.resume(
                    recovered.player_id,
                    recovered.engine,
                    recovered.ops,
                    recovered.dt,
                    recovered.cursor,
                )
                if session_hook is not None:
                    session_hook(session)
                shard.seed_recovered(session, covered_lsn=report.tip_lsn)
                with self._lock:
                    self._inflight += 1
            reports.append(report)
        if _obs.enabled():
            _LOG.info(
                "serve.recovered",
                sessions=sum(len(r.sessions) for r in reports),
                ended=sum(r.ended_sessions for r in reports),
                torn=sum(r.torn_records for r in reports),
            )
        return reports

    # ------------------------------------------------------------------
    def shard_for(self, player_id: str) -> int:
        """Which shard owns ``player_id`` (stable across restarts)."""
        return shard_for(player_id, self.config.n_shards)

    def submit(self, player_id: str, factory: SessionFactory) -> bool:
        """Admit one session; returns False when backpressure rejects it.

        The factory runs later, on the owning shard's thread — submit
        itself is cheap enough to call from a tight arrival loop.
        """
        with self._lock:
            if not self._accepting or self._inflight >= self.config.max_sessions:
                self._rejected += 1
                _M_REJECTED.inc()
                return False
            self._inflight += 1
        _M_ADMITTED.inc()
        self._shards[self.shard_for(player_id)].enqueue(player_id, factory)
        return True

    def _session_closed(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Sessions admitted but not yet finished (queued + active)."""
        return self._inflight

    @property
    def completed_sessions(self) -> int:
        return sum(s.completed for s in self._shards)

    @property
    def failed_sessions(self) -> int:
        return sum(s.failed for s in self._shards)

    @property
    def rejected_sessions(self) -> int:
        return self._rejected

    @property
    def active_by_shard(self) -> Dict[int, int]:
        return {s.index: s.active_count for s in self._shards}

    @property
    def completed_by_shard(self) -> Dict[int, int]:
        return {s.index: s.completed for s in self._shards}

    def shard_stats(self) -> List[Dict[str, float]]:
        """Per-shard plain-data rows (CLI table / bench report)."""
        return [
            {
                "shard": s.index,
                "completed": s.completed,
                "failed": s.failed,
                "steps": s.steps,
                "ticks": s.ticks,
                "active": s.active_count,
                "queued": s.queue_depth,
            }
            for s in self._shards
        ]

    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admissions; wait for in-flight work. True when empty.

        Event-driven: the wait wakes the instant the last in-flight
        session closes (each close notifies the condition once the
        count hits zero), not on the next tick of a poll loop.
        """
        deadline = None if timeout is None else monotonic() + timeout
        with self._idle:
            self._accepting = False
            while self._inflight > 0:
                if deadline is None:
                    self._idle.wait()
                else:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        return False
                    self._idle.wait(remaining)
            return True

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0) -> bool:
        """Stop the shards (optionally draining first); idempotent.

        ``drain=False`` means *discard* the backlog — queued and active
        sessions are dropped, not ground down during the join.
        """
        if self._stopped:
            return True
        if not self._started:
            drained = True  # nothing ever ran, nothing to discard
        elif drain:
            drained = self.drain(timeout=timeout)
        else:
            drained = False
        with self._lock:
            self._accepting = False
        for shard in self._shards:
            # A failed (timed-out) drain still discards, so the shard
            # threads exit instead of grinding through a dead backlog.
            shard.request_stop(discard=not drained)
        for shard in self._shards:
            shard.join(timeout=timeout)
        self._stopped = True
        if _obs.enabled():
            _LOG.info("serve.shutdown", drained=drained,
                      completed=self.completed_sessions,
                      failed=self.failed_sessions,
                      rejected=self._rejected)
        return drained
