"""Load generation: replay cohort scripts against a SessionManager.

The generator is the client side of a load test: given a pool of
pre-planned :class:`~repro.students.scripts.PlayerScript` sessions, it
submits them to a manager at a target arrival rate (sessions/second;
``0`` = an open-loop burst), waits for the server to drain, and reports
what the paper's deployment story actually needs measured — completed
sessions per wall-clock second, rejection counts, and per-shard
completion spread.

Arrival pacing uses an absolute schedule (``t0 + k/rate``), not
``sleep(1/rate)``, so generator-side jitter does not silently lower the
offered load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import Dict, List, Optional, Sequence

from ..core.project import CompiledGame
from ..students.scripts import PlayerScript
from .manager import SessionManager
from .session import session_factory_for_script

__all__ = ["LoadGenerator", "LoadReport"]


@dataclass(slots=True)
class LoadReport:
    """What one load run did and how fast the server chewed through it."""

    offered: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    elapsed_s: float
    drained: bool
    #: shard index -> sessions completed there
    completed_by_shard: Dict[int, int] = field(default_factory=dict)

    @property
    def sessions_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    def as_row(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "elapsed_s": f"{self.elapsed_s:.3f}",
            "sessions_per_s": f"{self.sessions_per_second:.1f}",
            "drained": self.drained,
        }


class LoadGenerator:
    """Submits scripted sessions to a manager at a target arrival rate."""

    def __init__(
        self,
        manager: SessionManager,
        game: CompiledGame,
        scripts: Sequence[PlayerScript],
        arrival_rate: float = 0.0,
        with_video: bool = False,
    ) -> None:
        """``arrival_rate`` is offered sessions/second; ``0`` submits the
        whole run as one burst (open-loop saturation test)."""
        if not scripts:
            raise ValueError("need at least one player script")
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")
        self.manager = manager
        self.game = game
        self.arrival_rate = arrival_rate
        # One factory per distinct script, reused round-robin: binding
        # is cheap but allocation-per-submit adds generator-side noise.
        self._factories = [
            session_factory_for_script(game, s, with_video=with_video)
            for s in scripts
        ]
        self._scripts = list(scripts)

    def run(
        self,
        n_sessions: int,
        drain_timeout: Optional[float] = 60.0,
    ) -> LoadReport:
        """Offer ``n_sessions``, wait for drain, report throughput.

        Elapsed time runs from the first submission to the end of the
        drain — i.e. it charges the server for its backlog, which is
        what makes sessions/second comparable across shard counts at a
        fixed offered load.
        """
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        admitted = 0
        rejected = 0
        t0 = monotonic()
        for k in range(n_sessions):
            if self.arrival_rate > 0:
                due = t0 + k / self.arrival_rate
                delay = due - monotonic()
                if delay > 0:
                    sleep(delay)
            script = self._scripts[k % len(self._scripts)]
            factory = self._factories[k % len(self._factories)]
            player_id = f"{script.player_id}#{k}"
            if self.manager.submit(player_id, factory):
                admitted += 1
            else:
                rejected += 1
        drained = self.manager.drain(timeout=drain_timeout)
        elapsed = monotonic() - t0
        return LoadReport(
            offered=n_sessions,
            admitted=admitted,
            rejected=rejected,
            completed=self.manager.completed_sessions,
            failed=self.manager.failed_sessions,
            elapsed_s=elapsed,
            drained=drained,
            completed_by_shard=dict(self.manager.completed_by_shard),
        )
