"""Load generation: replay cohort scripts against a SessionManager.

The generator is the client side of a load test: given a pool of
pre-planned :class:`~repro.students.scripts.PlayerScript` sessions, it
submits them to a manager at a target arrival rate (sessions/second;
``0`` = an open-loop burst), waits for the server to drain, and reports
what the paper's deployment story actually needs measured — completed
sessions per wall-clock second, rejection counts, and per-shard
completion spread.

Arrival pacing uses an absolute schedule (``t0 + k/rate``), not
``sleep(1/rate)``, so generator-side jitter does not silently lower the
offered load.

Two generators share that design: :class:`LoadGenerator` drives a
:class:`~repro.serve.manager.SessionManager` in-process (isolates the
serving layer), while :class:`SocketLoadGenerator` drives a running
network gateway over real TCP connections (measures the whole edge:
framing, admission acks, END push latency, PING round trips).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import Dict, List, Optional, Sequence

from ..core.project import CompiledGame
from ..students.scripts import PlayerScript
from .manager import SessionManager
from .session import session_factory_for_script

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "SocketLoadGenerator",
    "SocketLoadReport",
]


@dataclass(slots=True)
class LoadReport:
    """What one load run did and how fast the server chewed through it."""

    offered: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    elapsed_s: float
    drained: bool
    #: shard index -> sessions completed there
    completed_by_shard: Dict[int, int] = field(default_factory=dict)

    @property
    def sessions_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    def as_row(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "elapsed_s": f"{self.elapsed_s:.3f}",
            "sessions_per_s": f"{self.sessions_per_second:.1f}",
            "drained": self.drained,
        }


class LoadGenerator:
    """Submits scripted sessions to a manager at a target arrival rate."""

    def __init__(
        self,
        manager: SessionManager,
        game: CompiledGame,
        scripts: Sequence[PlayerScript],
        arrival_rate: float = 0.0,
        with_video: bool = False,
    ) -> None:
        """``arrival_rate`` is offered sessions/second; ``0`` submits the
        whole run as one burst (open-loop saturation test)."""
        if not scripts:
            raise ValueError("need at least one player script")
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")
        self.manager = manager
        self.game = game
        self.arrival_rate = arrival_rate
        # One factory per distinct script, reused round-robin: binding
        # is cheap but allocation-per-submit adds generator-side noise.
        self._factories = [
            session_factory_for_script(game, s, with_video=with_video)
            for s in scripts
        ]
        self._scripts = list(scripts)

    def run(
        self,
        n_sessions: int,
        drain_timeout: Optional[float] = 60.0,
    ) -> LoadReport:
        """Offer ``n_sessions``, wait for drain, report throughput.

        Elapsed time runs from the first submission to the end of the
        drain — i.e. it charges the server for its backlog, which is
        what makes sessions/second comparable across shard counts at a
        fixed offered load.
        """
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        admitted = 0
        rejected = 0
        t0 = monotonic()
        for k in range(n_sessions):
            if self.arrival_rate > 0:
                due = t0 + k / self.arrival_rate
                delay = due - monotonic()
                if delay > 0:
                    sleep(delay)
            script = self._scripts[k % len(self._scripts)]
            factory = self._factories[k % len(self._factories)]
            player_id = f"{script.player_id}#{k}"
            if self.manager.submit(player_id, factory):
                admitted += 1
            else:
                rejected += 1
        drained = self.manager.drain(timeout=drain_timeout)
        elapsed = monotonic() - t0
        return LoadReport(
            offered=n_sessions,
            admitted=admitted,
            rejected=rejected,
            completed=self.manager.completed_sessions,
            failed=self.manager.failed_sessions,
            elapsed_s=elapsed,
            drained=drained,
            completed_by_shard=dict(self.manager.completed_by_shard),
        )


# ----------------------------------------------------------------------
# Socket mode: the same offered load, but through the network gateway
# ----------------------------------------------------------------------

@dataclass(slots=True)
class SocketLoadReport:
    """One gateway load run, as observed from the client side of TCP."""

    offered: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    elapsed_s: float
    drained: bool
    #: PING round-trip samples interleaved with the load (seconds)
    rtt_samples: List[float] = field(default_factory=list)
    clients: int = 1
    #: request-trace ids echoed on END frames (sampled sessions only) —
    #: each resolves to a phase timeline at the gateway's ``/trace/<id>``
    trace_ids: List[str] = field(default_factory=list)

    @property
    def sessions_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def rtt_p95_s(self) -> Optional[float]:
        """p95 of the interleaved PING round trips (None: no samples)."""
        if not self.rtt_samples:
            return None
        ordered = sorted(self.rtt_samples)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    def as_row(self) -> Dict[str, object]:
        rtt = self.rtt_p95_s
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "clients": self.clients,
            "elapsed_s": f"{self.elapsed_s:.3f}",
            "sessions_per_s": f"{self.sessions_per_second:.1f}",
            "rtt_p95_ms": "-" if rtt is None else f"{rtt * 1e3:.2f}",
            "traced": len(self.trace_ids),
            "drained": self.drained,
        }


class SocketLoadGenerator:
    """Offers scripted sessions to a gateway over ``clients`` sockets.

    Sessions are spread round-robin across persistent client
    connections (a school lab, not one socket per student); each client
    pipelines its submissions, interleaves a PING every ``ping_every``
    sessions so the report carries real frame-RTT percentiles, and then
    waits for every END push.  Like the in-process generator, elapsed
    time runs from the first submission to the last completion, which
    charges the server for its backlog.
    """

    def __init__(
        self,
        host: str,
        port: int,
        scripts: Sequence[PlayerScript],
        clients: int = 4,
        arrival_rate: float = 0.0,
        ping_every: int = 8,
        trace_sample: float = 0.0,
    ) -> None:
        if not scripts:
            raise ValueError("need at least one player script")
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")
        if ping_every < 1:
            raise ValueError("ping_every must be >= 1")
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError("trace_sample must be within [0, 1]")
        self.host = host
        self.port = port
        self.scripts = list(scripts)
        self.clients = clients
        self.arrival_rate = arrival_rate
        self.ping_every = ping_every
        #: fraction of submissions stamped with a request-trace id
        self.trace_sample = trace_sample

    def run(self, n_sessions: int, timeout: float = 120.0) -> SocketLoadReport:
        """Synchronous entry point: one ``asyncio.run`` per load run."""
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        return asyncio.run(self.run_async(n_sessions, timeout=timeout))

    async def run_async(
        self, n_sessions: int, timeout: float = 120.0
    ) -> SocketLoadReport:
        from ..gateway.client import GatewayClient, GatewayRejected

        pool = [
            GatewayClient(
                self.host, self.port,
                client_name=f"loadgen-{i}",
                request_timeout_s=timeout,
                trace_sample=self.trace_sample,
            )
            for i in range(min(self.clients, n_sessions))
        ]
        for client in pool:
            await client.connect()
        admitted = 0
        rejected = 0
        completed = 0
        failed = 0
        rtts: List[float] = []
        pending: List[tuple] = []  # (client, player_id)
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            for k in range(n_sessions):
                if self.arrival_rate > 0:
                    due = t0 + k / self.arrival_rate
                    delay = due - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                script = self.scripts[k % len(self.scripts)]
                client = pool[k % len(pool)]
                player_id = f"{script.player_id}#{k}"
                try:
                    await client.submit(player_id, script.ops, dt=script.dt)
                except GatewayRejected:
                    rejected += 1
                    continue
                admitted += 1
                pending.append((client, player_id))
                if k % self.ping_every == 0:
                    rtts.append(await client.ping())
            ends = await asyncio.gather(
                *(
                    client.wait_end(pid, timeout=timeout)
                    for client, pid in pending
                ),
                return_exceptions=True,
            )
            drained = True
            trace_ids: List[str] = []
            for end in ends:
                if isinstance(end, BaseException):
                    drained = False
                    continue
                tid = end.get("trace")
                if isinstance(tid, str) and tid:
                    trace_ids.append(tid)
                if end.get("failed"):
                    failed += 1
                else:
                    completed += 1
            elapsed = loop.time() - t0
        finally:
            for client in pool:
                await client.close()
        return SocketLoadReport(
            offered=n_sessions,
            admitted=admitted,
            rejected=rejected,
            completed=completed,
            failed=failed,
            elapsed_s=elapsed,
            drained=drained and admitted == completed + failed,
            rtt_samples=rtts,
            clients=len(pool),
            trace_ids=trace_ids,
        )
