"""One served game session: an engine plus the script that drives it.

The serve layer's unit of work is a *session step* — one scripted
operation applied to one engine, followed by a simulated-clock tick.
Sessions are deliberately thread-naive: a session is owned by exactly
one shard and only its shard thread ever touches the engine, so no
locking happens on the hot path.  Everything a shard needs is behind
two calls (``start`` / ``step``) plus the ``done`` flag.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core.project import CompiledGame
from ..core.solver import Move
from ..persist.records import apply_scripted_op
from ..runtime.inputs import KeyPress, MouseClick, MouseDrag
from ..students.scripts import PlayerScript, ScriptOp

#: concrete raw-input types (runtime's InputEvent is a typing alias)
_INPUT_EVENT_TYPES = (MouseClick, MouseDrag, KeyPress)

__all__ = [
    "ServedSession",
    "SessionFactory",
    "play_to_completion",
    "session_factory_for_script",
]


class ServedSession:
    """A scripted engine run advanced one op per ``step()`` call."""

    __slots__ = (
        "player_id", "engine", "ops", "dt", "steps", "failed", "_cursor",
        "_started", "on_done", "trace_id",
    )

    def __init__(
        self,
        player_id: str,
        engine,
        ops: Sequence[ScriptOp],
        dt: float = 0.25,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.player_id = player_id
        self.engine = engine
        self.ops = list(ops)
        for op in self.ops:
            if not isinstance(op, (Move,) + _INPUT_EVENT_TYPES):
                raise TypeError(f"unplayable script op {type(op).__name__}")
        self.dt = dt
        self.steps = 0
        self.failed = False
        self._cursor = 0
        self._started = False
        #: optional completion hook, invoked by the owning shard after
        #: the session's final step and retirement bookkeeping — the
        #: engine is settled and no thread will touch it again, so the
        #: callback may read state freely (the gateway bridges it onto
        #: its event loop from here)
        self.on_done: Optional[Callable[["ServedSession"], None]] = None
        #: request-trace correlation id (:mod:`repro.obs.attribution`);
        #: None for unsampled sessions, which must stay the common case
        #: — every trace hook in the shard loop is gated on it
        self.trace_id: Optional[str] = None

    @classmethod
    def resume(
        cls,
        player_id: str,
        engine,
        ops: Sequence[ScriptOp],
        dt: float,
        cursor: int,
    ) -> "ServedSession":
        """Rebuild a session recovered from the WAL: the engine is
        already started and ``cursor`` ops have already been applied."""
        session = cls(player_id, engine, ops, dt=dt)
        session._cursor = max(0, min(int(cursor), len(session.ops)))
        session._started = True
        return session

    def start(self) -> None:
        """Begin the underlying engine session (idempotent)."""
        if self._started:
            return
        self._started = True
        self.engine.start()

    @property
    def cursor(self) -> int:
        """Ops applied so far (the WAL/snapshot resume position)."""
        return self._cursor

    @property
    def done(self) -> bool:
        """Finished: script exhausted, game over, or the session failed."""
        return (
            self.failed
            or self._cursor >= len(self.ops)
            or not self.engine.running
        )

    def peek(self) -> Optional[ScriptOp]:
        """The op the next ``step()`` will apply (None when done) — what
        the serving layer writes to the WAL alongside the step."""
        if self.done:
            return None
        return self.ops[self._cursor]

    def step(self) -> bool:
        """Apply the next scripted op and tick; returns ``done``.

        Ops the real UI would have prevented (e.g. using an item the
        student never picked up) cost the step but change nothing — the
        same forgiving semantics the cohort player uses.  The actual
        op+tick semantics live in
        :func:`repro.persist.records.apply_scripted_op`, shared with
        crash-recovery replay so the two cannot drift.
        """
        if self.done:
            return True
        op = self.ops[self._cursor]
        self._cursor += 1
        apply_scripted_op(self.engine, op, self.dt)
        self.steps += 1
        return self.done


#: player_id -> ready-to-start session; the manager calls it on the
#: owning shard's thread, so engine construction cost is itself sharded.
SessionFactory = Callable[[str], ServedSession]


def session_factory_for_script(
    game: CompiledGame,
    script: PlayerScript,
    with_video: bool = False,
) -> SessionFactory:
    """Bind a game + script into a factory the manager can own.

    ``with_video=False`` (default) runs logic-only engines — the right
    trade for a server whose clients decode video themselves.
    """

    def build(player_id: str) -> ServedSession:
        engine = game.new_engine(with_video=with_video)
        return ServedSession(player_id, engine, script.ops, dt=script.dt)

    return build


def play_to_completion(session: ServedSession, max_steps: Optional[int] = None) -> int:
    """Drive one session serially to the end (tests, shard-less runs)."""
    session.start()
    budget = max_steps if max_steps is not None else len(session.ops) + 1
    while not session.done and session.steps < budget:
        session.step()
    return session.steps
