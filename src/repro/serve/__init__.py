"""The serving layer: many concurrent engine sessions, one process.

``repro.serve`` scales the single-player VGBL runtime into a sharded
multi-session game server — the deployment gap between the paper's
one-student prototype and a platform serving a school district:

* :class:`~repro.serve.manager.SessionManager` — N thread-per-shard
  workers, sessions hash-partitioned by player id, batched paced tick
  scheduling, admission control with backpressure, graceful drain;
* :class:`~repro.serve.session.ServedSession` — one scripted engine run,
  owned by exactly one shard (lock-free stepping);
* :class:`~repro.serve.loadgen.LoadGenerator` — replays
  :mod:`repro.students` cohort scripts at a target arrival rate;
* :func:`~repro.serve.bench.run_serve_benchmark` — the shard-count sweep
  behind ``repro serve-bench`` and ``benchmarks/bench_serve.py``.

With ``ServeConfig(persistence=PersistenceConfig(directory=...))`` the
server becomes crash-recoverable: each shard owns a write-ahead journal
(:mod:`repro.persist`) and ``SessionManager.recover()`` rebuilds every
committed session after a restart.

Everything is instrumented through :mod:`repro.obs` (per-shard tick
histograms, active/queue gauges, admission counters) and asserted by the
serve rules in ``examples/slo.toml``.
"""

from ..persist import PersistenceConfig
from .bench import ShardSweepResult, run_serve_benchmark
from .loadgen import (
    LoadGenerator,
    LoadReport,
    SocketLoadGenerator,
    SocketLoadReport,
)
from .manager import ServeConfig, SessionManager, shard_for
from .session import (
    ServedSession,
    play_to_completion,
    session_factory_for_script,
)

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "PersistenceConfig",
    "ServeConfig",
    "ServedSession",
    "SessionManager",
    "ShardSweepResult",
    "SocketLoadGenerator",
    "SocketLoadReport",
    "play_to_completion",
    "run_serve_benchmark",
    "session_factory_for_script",
    "shard_for",
]
