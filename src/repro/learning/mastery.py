"""Mastery tracking across sessions: Bayesian Knowledge Tracing.

A single play session exposes items once; a *course* revisits them.  The
standard model for estimating a student's evolving mastery from repeated
observations is Bayesian Knowledge Tracing (Corbett & Anderson 1995):
per knowledge item, a two-state HMM with

* ``p_init``  — prior probability the skill is already known,
* ``p_learn`` — probability of transitioning to known after a practice
  opportunity,
* ``p_slip``  — probability a knowing student answers incorrectly,
* ``p_guess`` — probability an unknowing student answers correctly.

:class:`MasteryTracker` maintains the posterior P(known) per item, folds
in assessment observations and (un-assessed) practice opportunities, and
exposes the mastery vector the teacher report renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .knowledge import KnowledgeMap

__all__ = ["BktParams", "MasteryTracker"]


@dataclass(frozen=True, slots=True)
class BktParams:
    """Per-item BKT parameters (shared defaults are fine for E6-scale)."""

    p_init: float = 0.1
    p_learn: float = 0.25
    p_slip: float = 0.1
    p_guess: float = 0.25

    def __post_init__(self) -> None:
        for name in ("p_init", "p_learn", "p_slip", "p_guess"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        # Identifiability guard: slip+guess >= 1 makes observations
        # uninformative-or-inverted (the classic BKT degeneracy).
        if self.p_slip + self.p_guess >= 1.0:
            raise ValueError("p_slip + p_guess must be < 1 (model degeneracy)")


class MasteryTracker:
    """Posterior mastery per knowledge item for one student."""

    def __init__(
        self,
        kmap: KnowledgeMap,
        params: Optional[BktParams] = None,
        per_item_params: Optional[Dict[str, BktParams]] = None,
    ) -> None:
        self.params = params or BktParams()
        self._per_item = dict(per_item_params or {})
        self._p_known: Dict[str, float] = {}
        for item in kmap.items:
            p = self._params_for(item.item_id)
            self._p_known[item.item_id] = p.p_init

    def _params_for(self, item_id: str) -> BktParams:
        return self._per_item.get(item_id, self.params)

    # ------------------------------------------------------------------
    def p_known(self, item_id: str) -> float:
        """Current posterior P(known) for an item."""
        try:
            return self._p_known[item_id]
        except KeyError:
            raise KeyError(f"unknown knowledge item {item_id!r}") from None

    @property
    def mastery(self) -> Dict[str, float]:
        """The full mastery vector (copy)."""
        return dict(self._p_known)

    def mastered(self, threshold: float = 0.95) -> List[str]:
        """Items whose posterior exceeds the mastery threshold."""
        return sorted(i for i, p in self._p_known.items() if p >= threshold)

    def mean_mastery(self) -> float:
        if not self._p_known:
            return 0.0
        return sum(self._p_known.values()) / len(self._p_known)

    # ------------------------------------------------------------------
    def observe(self, item_id: str, correct: bool) -> float:
        """Fold in one assessment observation; returns the new posterior.

        Standard BKT update: Bayes step on the evidence, then the
        learning transition (the observation itself is a practice
        opportunity).
        """
        p = self._params_for(item_id)
        prior = self.p_known(item_id)
        if correct:
            num = prior * (1.0 - p.p_slip)
            den = num + (1.0 - prior) * p.p_guess
        else:
            num = prior * p.p_slip
            den = num + (1.0 - prior) * (1.0 - p.p_guess)
        posterior = num / den if den > 0 else prior
        updated = posterior + (1.0 - posterior) * p.p_learn
        self._p_known[item_id] = updated
        return updated

    def practice(self, item_id: str) -> float:
        """Fold in an un-assessed practice opportunity (an exposure in a
        play session without a test question): transition only."""
        p = self._params_for(item_id)
        prior = self.p_known(item_id)
        updated = prior + (1.0 - prior) * p.p_learn
        self._p_known[item_id] = updated
        return updated

    def observe_session(
        self,
        exposures: Dict[str, bool],
        answers: Optional[Dict[str, bool]] = None,
    ) -> None:
        """Fold in one session: exposures are practice; answered test
        questions are observations.  Active exposures count as *two*
        practice opportunities (decision + feedback), matching the
        active-retention asymmetry of the session model."""
        answers = answers or {}
        for item_id, active in exposures.items():
            if item_id not in self._p_known:
                continue
            self.practice(item_id)
            if active:
                self.practice(item_id)
        for item_id, correct in answers.items():
            if item_id in self._p_known:
                self.observe(item_id, correct)

    def expected_correct(self, item_id: str) -> float:
        """P(next answer correct) under the current posterior."""
        p = self._params_for(item_id)
        known = self.p_known(item_id)
        return known * (1.0 - p.p_slip) + (1.0 - known) * p.p_guess
