"""Assessment: pre/post tests over a knowledge map.

The paper never measures learning; E6 does, with the standard pre-test →
play → post-test design.  A :class:`Test` samples questions one-to-one
from knowledge items; a simulated student answers a question correctly
with probability depending on whether they hold the item (plus a guess
floor).  Normalised learning gain uses Hake's formula
``(post - pre) / (1 - pre)``, the common metric in education studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

import numpy as np

from .knowledge import KnowledgeMap

__all__ = ["Question", "Test", "TestResult", "hake_gain"]


@dataclass(frozen=True, slots=True)
class Question:
    """One test question probing one knowledge item."""

    item_id: str
    prompt: str
    n_options: int = 4

    def __post_init__(self) -> None:
        if self.n_options < 2:
            raise ValueError("questions need at least two options")

    @property
    def guess_probability(self) -> float:
        return 1.0 / self.n_options


@dataclass(slots=True)
class TestResult:
    """Score of one administration."""

    __test__ = False  # not a pytest class, despite the name

    correct: int
    total: int

    @property
    def fraction(self) -> float:
        return self.correct / self.total if self.total else 0.0


class Test:
    """A test with one question per knowledge item.

    ``p_known`` is the probability a student holding the item answers
    correctly (slips allowed); a student without the item guesses.
    """

    __test__ = False  # not a pytest class, despite the name

    def __init__(
        self,
        kmap: KnowledgeMap,
        n_options: int = 4,
        p_known: float = 0.92,
        repeats: int = 1,
    ) -> None:
        """``repeats`` asks each item ``repeats`` times (parallel forms),
        cutting guessing noise — use >= 3 when comparing small cohorts."""
        if not 0.0 < p_known <= 1.0:
            raise ValueError("p_known must be in (0, 1]")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.questions: List[Question] = [
            Question(item_id=i.item_id, prompt=f"About: {i.text} (form {k})",
                     n_options=n_options)
            for i in kmap.items
            for k in range(repeats)
        ]
        if not self.questions:
            raise ValueError("knowledge map is empty; nothing to test")
        self.p_known = p_known

    def administer(
        self, held_items: Set[str], rng: np.random.Generator
    ) -> TestResult:
        """Simulate a student sitting the test."""
        correct = 0
        for q in self.questions:
            p = self.p_known if q.item_id in held_items else q.guess_probability
            if rng.random() < p:
                correct += 1
        return TestResult(correct=correct, total=len(self.questions))


def hake_gain(pre: TestResult, post: TestResult) -> float:
    """Normalised learning gain ``(post - pre) / (1 - pre)``.

    Clamped to [-1, 1]; a pre-test ceiling (pre == 1) yields 0 gain.
    """
    pre_f, post_f = pre.fraction, post.fraction
    if pre_f >= 1.0:
        return 0.0
    g = (post_f - pre_f) / (1.0 - pre_f)
    return max(-1.0, min(1.0, g))
