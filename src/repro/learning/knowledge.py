"""Knowledge model: what a game teaches, bound to where it teaches it.

§3.2: "The ultimate goal of game-based learning systems is to deliver
knowledge to students … Students can obtain knowledge from the process
of making decision and interaction."

A :class:`KnowledgeItem` is one teachable unit (a fact, a concept, a
procedure step).  A :class:`KnowledgeMap` binds items to *delivery
points* — observable session events: entering a scenario, firing a
specific binding, examining an object, hearing a dialogue node, or (for
the linear-video baseline) simply having watched a time window.  The
student simulation consults the map to decide which items a session
*exposed*, and the acquisition model (:mod:`repro.students.model`)
decides which exposures stick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

__all__ = ["DeliveryPoint", "KnowledgeError", "KnowledgeItem", "KnowledgeMap"]


class KnowledgeError(ValueError):
    """Raised on invalid knowledge definitions."""


@dataclass(frozen=True, slots=True)
class KnowledgeItem:
    """One teachable unit."""

    item_id: str
    text: str
    objective: str = ""  #: the curriculum objective this item serves
    weight: float = 1.0  #: relative importance in the gain score

    def __post_init__(self) -> None:
        if not self.item_id:
            raise KnowledgeError("knowledge item id must be non-empty")
        if not self.text:
            raise KnowledgeError(f"item {self.item_id!r} has no text")
        if self.weight <= 0:
            raise KnowledgeError(f"item {self.item_id!r} weight must be positive")


@dataclass(frozen=True, slots=True)
class DeliveryPoint:
    """Where an item is delivered.

    ``kind`` ∈ {"enter", "binding", "examine", "dialogue", "time"}:

    * ``enter`` — entering scenario ``ref``;
    * ``binding`` — event binding ``ref`` fires (the decision-making
      delivery of §3.2);
    * ``examine`` — examining object ``ref`` (investigation delivery);
    * ``dialogue`` — seeing dialogue node ``ref`` ("dialogue_id:node_id");
    * ``time`` — passive exposure during seconds ``[t0, t1)`` of a linear
      lesson (baseline only).
    """

    kind: str
    ref: str = ""
    t0: float = 0.0
    t1: float = 0.0

    _KINDS = ("enter", "binding", "examine", "dialogue", "time")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise KnowledgeError(f"unknown delivery kind {self.kind!r}")
        if self.kind == "time":
            if self.t1 <= self.t0:
                raise KnowledgeError("time delivery needs t1 > t0")
        elif not self.ref:
            raise KnowledgeError(f"{self.kind!r} delivery needs a ref")

    @property
    def active(self) -> bool:
        """True for deliveries requiring a student decision/interaction
        (they get the active-learning retention multiplier)."""
        return self.kind in ("binding", "examine", "dialogue")


class KnowledgeMap:
    """Items plus their delivery points; the course's knowledge design."""

    def __init__(self) -> None:
        self._items: Dict[str, KnowledgeItem] = {}
        self._deliveries: Dict[str, List[DeliveryPoint]] = {}

    def add(self, item: KnowledgeItem, deliveries: Sequence[DeliveryPoint]) -> None:
        """Register an item with at least one delivery point."""
        if item.item_id in self._items:
            raise KnowledgeError(f"duplicate knowledge item {item.item_id!r}")
        if not deliveries:
            raise KnowledgeError(
                f"item {item.item_id!r} has no delivery points: it can "
                "never be taught"
            )
        self._items[item.item_id] = item
        self._deliveries[item.item_id] = list(deliveries)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._items

    @property
    def items(self) -> List[KnowledgeItem]:
        return list(self._items.values())

    def deliveries(self, item_id: str) -> List[DeliveryPoint]:
        try:
            return list(self._deliveries[item_id])
        except KeyError:
            raise KnowledgeError(f"unknown knowledge item {item_id!r}") from None

    @property
    def total_weight(self) -> float:
        return sum(i.weight for i in self._items.values())

    # ------------------------------------------------------------------
    # Exposure resolution
    # ------------------------------------------------------------------
    def exposures_from_session(
        self,
        entered_scenarios: Set[str],
        fired_bindings: Set[str],
        examined_objects: Set[str],
        dialogue_nodes: Set[str],
        watched_seconds: float = 0.0,
    ) -> Dict[str, bool]:
        """Which items the session exposed, and whether *actively*.

        Returns ``item_id → active`` for every exposed item; an item
        delivered both passively and actively counts as active.
        """
        out: Dict[str, bool] = {}
        for item_id, points in self._deliveries.items():
            for p in points:
                hit = (
                    (p.kind == "enter" and p.ref in entered_scenarios)
                    or (p.kind == "binding" and p.ref in fired_bindings)
                    or (p.kind == "examine" and p.ref in examined_objects)
                    or (p.kind == "dialogue" and p.ref in dialogue_nodes)
                    or (p.kind == "time" and watched_seconds >= p.t1)
                )
                if hit:
                    out[item_id] = out.get(item_id, False) or p.active
        return out

    def gain_score(self, acquired: Set[str]) -> float:
        """Weighted fraction of the curriculum acquired, in [0, 1]."""
        total = self.total_weight
        if total == 0:
            return 0.0
        got = sum(
            self._items[i].weight for i in acquired if i in self._items
        )
        return got / total
