"""Learning analytics: engagement and outcome metrics over sessions.

Experiment E6 tests the paper's central qualitative claims — "the
students will be attracted in such learning platform" (§abstract) and
"game-based learning systems provide more attraction to the students"
(§2.2) — by comparing cohorts across platforms.  This module defines the
metrics and their aggregation; it is platform-agnostic (the VGBL engine,
the linear-video baseline and the slideshow baseline all produce the same
:class:`OutcomeRecord` shape).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CohortSummary",
    "FunnelRow",
    "OutcomeRecord",
    "mean_ci",
    "scenario_funnel",
    "summarize",
]


@dataclass(frozen=True, slots=True)
class OutcomeRecord:
    """One student's run on one platform."""

    player_id: str
    platform: str            #: "vgbl" | "linear_video" | "slideshow" | ...
    time_on_task: float      #: seconds until finish or dropout
    completed: bool          #: finished the material / won the game
    dropped_out: bool        #: quit from disengagement
    interactions: int        #: deliberate inputs made
    knowledge_gain: float    #: Hake gain from pre/post tests, [-1, 1]
    final_engagement: float  #: attention level at exit, [0, 1]
    score: int = 0           #: in-game score (0 for baselines)

    def __post_init__(self) -> None:
        if self.time_on_task < 0:
            raise ValueError("time_on_task must be non-negative")
        if self.completed and self.dropped_out:
            raise ValueError("a run cannot both complete and drop out")


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Mean and half-width of a normal-approximation CI.

    Returns ``(mean, half_width)``; half-width is 0 for n < 2.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0, 0.0
    m = float(arr.mean())
    if arr.size < 2:
        return m, 0.0
    # z for the two-sided confidence level (0.95 -> 1.96).
    from scipy.stats import norm  # scipy is an allowed dependency

    z = float(norm.ppf(0.5 + confidence / 2.0))
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return m, half


@dataclass(slots=True)
class CohortSummary:
    """Aggregates of one platform's cohort."""

    platform: str
    n: int
    mean_time_on_task: float
    ci_time_on_task: float
    completion_rate: float
    dropout_rate: float
    mean_interactions: float
    mean_knowledge_gain: float
    ci_knowledge_gain: float
    mean_final_engagement: float
    mean_score: float

    def as_row(self) -> Dict[str, object]:
        """Row form for the reporting table formatter."""
        return {
            "platform": self.platform,
            "n": self.n,
            "time_on_task_s": round(self.mean_time_on_task, 1),
            "completion": round(self.completion_rate, 3),
            "dropout": round(self.dropout_rate, 3),
            "interactions": round(self.mean_interactions, 1),
            "knowledge_gain": round(self.mean_knowledge_gain, 3),
            "gain_ci": round(self.ci_knowledge_gain, 3),
            "engagement": round(self.mean_final_engagement, 3),
            "score": round(self.mean_score, 1),
        }


def summarize(records: Sequence[OutcomeRecord]) -> CohortSummary:
    """Aggregate one platform's records (all must share the platform)."""
    if not records:
        raise ValueError("no records to summarise")
    platforms = {r.platform for r in records}
    if len(platforms) != 1:
        raise ValueError(f"mixed platforms in one cohort: {sorted(platforms)}")
    times = [r.time_on_task for r in records]
    gains = [r.knowledge_gain for r in records]
    t_mean, t_ci = mean_ci(times)
    g_mean, g_ci = mean_ci(gains)
    n = len(records)
    return CohortSummary(
        platform=records[0].platform,
        n=n,
        mean_time_on_task=t_mean,
        ci_time_on_task=t_ci,
        completion_rate=sum(r.completed for r in records) / n,
        dropout_rate=sum(r.dropped_out for r in records) / n,
        mean_interactions=float(np.mean([r.interactions for r in records])),
        mean_knowledge_gain=g_mean,
        ci_knowledge_gain=g_ci,
        mean_final_engagement=float(
            np.mean([r.final_engagement for r in records])
        ),
        mean_score=float(np.mean([r.score for r in records])),
    )


# ----------------------------------------------------------------------
# Scenario funnel: where do sessions stall or stop?
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class FunnelRow:
    """One scenario's reach/engagement across a set of session logs."""

    scenario_id: str
    sessions_reached: int     #: sessions that entered at least once
    reach_fraction: float     #: sessions_reached / total sessions
    total_visits: int         #: entries summed over all sessions
    mean_interactions: float  #: interactions made while in this scenario


def scenario_funnel(logs: Sequence["SessionLog"]) -> List[FunnelRow]:
    """Per-scenario reach funnel from raw session logs.

    Authoring feedback in one table: a scenario most sessions never reach
    is either optional content or a broken path; a reached scenario with
    near-zero interactions is scenery the designer thought was a puzzle.
    Requires logs recorded with ``keep_notices=True``.

    Rows are sorted by descending reach, then scenario id.
    """
    if not logs:
        raise ValueError("no session logs")
    reached: Dict[str, int] = {}
    visits: Dict[str, int] = {}
    interactions: Dict[str, int] = {}
    for log in logs:
        current: Optional[str] = None
        seen_this_session = set()
        for notice in log.notices:
            if notice.topic == "scenario":
                current = notice.payload.get("scenario_id")
                if current is not None:
                    visits[current] = visits.get(current, 0) + 1
                    if current not in seen_this_session:
                        seen_this_session.add(current)
                        reached[current] = reached.get(current, 0) + 1
            elif notice.topic == "interaction" and current is not None:
                interactions[current] = interactions.get(current, 0) + 1
    n = len(logs)
    rows = [
        FunnelRow(
            scenario_id=sid,
            sessions_reached=reached[sid],
            reach_fraction=reached[sid] / n,
            total_visits=visits.get(sid, 0),
            mean_interactions=interactions.get(sid, 0) / max(1, reached[sid]),
        )
        for sid in reached
    ]
    rows.sort(key=lambda r: (-r.sessions_reached, r.scenario_id))
    return rows
