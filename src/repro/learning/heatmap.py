"""Interaction heatmaps: where students actually click.

Authoring feedback the editors cannot compute statically: which parts of
a scenario's frame attract interaction.  The recorder logs gesture
coordinates; this module aggregates them into per-scenario 2D histograms
and renders overlay frames (heat blended over the scenario's keyframe)
for the teacher/designer to inspect.

A cold hotspot the designer considers essential means the object is not
discoverable (wrong position, bad sprite, occluded); a hot empty region
means students expect something interactive there — both are §4.2-level
authoring actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..runtime.session import SessionLog
from ..video.frame import Frame, FrameSize

__all__ = ["ClickHeatmap", "collect_heatmaps", "render_heatmap_overlay"]


@dataclass(slots=True)
class ClickHeatmap:
    """Aggregated click positions for one scenario."""

    scenario_id: str
    counts: np.ndarray  #: (grid_h, grid_w) float64 click counts
    cell: int           #: pixels per grid cell
    total_clicks: int

    def hottest_cell(self) -> Tuple[int, int]:
        """(x, y) pixel centre of the most-clicked cell."""
        gy, gx = np.unravel_index(int(self.counts.argmax()), self.counts.shape)
        return (int(gx) * self.cell + self.cell // 2,
                int(gy) * self.cell + self.cell // 2)

    def density(self) -> np.ndarray:
        """Counts normalised to [0, 1] (zeros if no clicks)."""
        peak = self.counts.max()
        if peak <= 0:
            return np.zeros_like(self.counts)
        return self.counts / peak


def collect_heatmaps(
    logs: Sequence[SessionLog],
    frame_size: FrameSize,
    cell: int = 8,
) -> Dict[str, ClickHeatmap]:
    """Aggregate click/drag-origin coordinates per scenario.

    Requires logs recorded with ``keep_notices=True``; interaction
    notices must carry ``x``/``y`` (the engine includes them for click
    and drag gestures).
    """
    if cell < 1:
        raise ValueError("cell must be >= 1")
    grid_w = (frame_size.width + cell - 1) // cell
    grid_h = (frame_size.height + cell - 1) // cell
    counts: Dict[str, np.ndarray] = {}
    totals: Dict[str, int] = {}
    for log in logs:
        current: Optional[str] = None
        for notice in log.notices:
            if notice.topic == "scenario":
                current = notice.payload.get("scenario_id")
            elif notice.topic == "interaction" and current is not None:
                x = notice.payload.get("x")
                y = notice.payload.get("y")
                if x is None or y is None:
                    continue
                gx = int(min(max(x, 0), frame_size.width - 1)) // cell
                gy = int(min(max(y, 0), frame_size.height - 1)) // cell
                if current not in counts:
                    counts[current] = np.zeros((grid_h, grid_w), dtype=np.float64)
                    totals[current] = 0
                counts[current][gy, gx] += 1
                totals[current] += 1
    return {
        sid: ClickHeatmap(scenario_id=sid, counts=c, cell=cell,
                          total_clicks=totals[sid])
        for sid, c in counts.items()
    }


def render_heatmap_overlay(
    base: Frame,
    heatmap: ClickHeatmap,
    max_opacity: float = 0.6,
) -> Frame:
    """Blend the heat (red) over a scenario frame, vectorised.

    Cell density maps linearly to opacity up to ``max_opacity``; cold
    cells leave the frame untouched.
    """
    if not 0.0 < max_opacity <= 1.0:
        raise ValueError("max_opacity must be in (0, 1]")
    density = heatmap.density()  # (gh, gw)
    # Upsample the density grid to pixel resolution by repetition.
    per_cell = heatmap.cell
    dense = np.repeat(np.repeat(density, per_cell, axis=0), per_cell, axis=1)
    dense = dense[: base.height, : base.width]
    alpha = (dense * max_opacity).astype(np.float32)[..., None]
    heat = np.zeros((base.height, base.width, 3), dtype=np.float32)
    heat[..., 0] = 255.0  # pure red
    out = base.data.astype(np.float32) * (1.0 - alpha) + heat * alpha
    return Frame(out.astype(np.uint8))
