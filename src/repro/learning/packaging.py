"""Course packaging: ship a compiled game as a distributable unit.

The related-work systems the paper cites are "web-based; students can
easily access these resources via network" (§2).  A package is the unit
of that delivery: the compiled game container plus a manifest with
integrity checksums, the knowledge map, and launch metadata — a
lightweight analogue of the IMS/SCORM content packages contemporary
e-learning servers exchanged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.project import CompiledGame
from ..events import EventTable
from ..graph import Scenario
from ..runtime import Dialogue

__all__ = ["CoursePackage", "PackageError", "load_package", "save_package"]

MANIFEST_FILE = "manifest.json"
GAME_FILE = "game.rvid"
STRUCTURE_FILE = "structure.json"


class PackageError(ValueError):
    """Raised on malformed packages."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(slots=True)
class CoursePackage:
    """A compiled game plus its manifest."""

    game: CompiledGame
    manifest: Dict[str, Any]

    @property
    def title(self) -> str:
        return self.manifest["title"]


def save_package(
    game: CompiledGame,
    directory: Union[str, Path],
    description: str = "",
    knowledge_items: Optional[Dict[str, str]] = None,
) -> Path:
    """Write a course package: manifest + media + structure.

    ``knowledge_items`` (id → text) is embedded so the learning platform
    can build assessments without the authoring project.
    """
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    structure = {
        "start": game.start,
        "scenarios": [sc.to_dict() for sc in game.scenarios.values()],
        "events": game.events.to_list(),
        "dialogues": [dlg.to_dict() for dlg in game.dialogues.values()],
    }
    structure_bytes = json.dumps(structure, sort_keys=True).encode("utf-8")
    manifest = {
        "format": "vgbl-package",
        "version": 1,
        "title": game.title,
        "description": description,
        "start_scenario": game.start,
        "scenario_count": len(game.scenarios),
        "media_sha256": _sha256(game.container),
        "structure_sha256": _sha256(structure_bytes),
        "media_bytes": len(game.container),
        "knowledge_items": dict(knowledge_items or {}),
    }
    (d / GAME_FILE).write_bytes(game.container)
    (d / STRUCTURE_FILE).write_bytes(structure_bytes)
    (d / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return d


def load_package(directory: Union[str, Path]) -> CoursePackage:
    """Load and integrity-check a package (checksums must match)."""
    d = Path(directory)
    try:
        manifest = json.loads((d / MANIFEST_FILE).read_text())
    except FileNotFoundError:
        raise PackageError(f"no {MANIFEST_FILE} in {d}") from None
    if manifest.get("format") != "vgbl-package":
        raise PackageError("not a vgbl package")
    media = (d / GAME_FILE).read_bytes()
    structure_bytes = (d / STRUCTURE_FILE).read_bytes()
    if _sha256(media) != manifest["media_sha256"]:
        raise PackageError("media checksum mismatch: package corrupted")
    if _sha256(structure_bytes) != manifest["structure_sha256"]:
        raise PackageError("structure checksum mismatch: package corrupted")
    structure = json.loads(structure_bytes.decode("utf-8"))
    scenarios = {
        s["scenario_id"]: Scenario.from_dict(s) for s in structure["scenarios"]
    }
    game = CompiledGame(
        title=manifest["title"],
        scenarios=scenarios,
        events=EventTable.from_list(structure["events"]),
        dialogues={
            dd["dialogue_id"]: Dialogue.from_dict(dd)
            for dd in structure["dialogues"]
        },
        start=structure["start"],
        container=media,
    )
    return CoursePackage(game=game, manifest=manifest)
