"""Teacher-facing reports: turning analytics into decisions.

§3.3 leaves real rewarding to "the lecturers … themselves"; what the
lecturer needs from the platform is a readable account of what the class
did and learned.  This module renders:

* a **class report** — per-student outcome rows plus cohort aggregates
  and flags (students who dropped out, students below a mastery bar);
* a **curriculum report** — per-knowledge-item mastery across the class,
  highlighting items the game failed to teach (authoring feedback: the
  delivery point may be too missable).

Reports are plain text built on the table formatter, so they drop into
email or an LMS page unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..reporting.tables import format_table
from .analytics import OutcomeRecord, summarize
from .knowledge import KnowledgeMap
from .mastery import MasteryTracker

__all__ = ["class_report", "curriculum_report"]


def class_report(
    records: Sequence[OutcomeRecord],
    mastery_by_student: Optional[Dict[str, MasteryTracker]] = None,
    mastery_bar: float = 0.6,
) -> str:
    """The lecturer's class overview.

    ``mastery_by_student`` (optional) adds a mean-mastery column and the
    below-bar flag list.
    """
    if not records:
        raise ValueError("no records to report")
    rows = []
    flagged_dropout: List[str] = []
    flagged_mastery: List[str] = []
    for r in sorted(records, key=lambda r: r.player_id):
        row = {
            "student": r.player_id,
            "time_min": round(r.time_on_task / 60.0, 1),
            "completed": "yes" if r.completed else "no",
            "interactions": r.interactions,
            "score": r.score,
            "gain": round(r.knowledge_gain, 2),
        }
        if mastery_by_student is not None:
            tracker = mastery_by_student.get(r.player_id)
            mean = tracker.mean_mastery() if tracker else 0.0
            row["mastery"] = round(mean, 2)
            if mean < mastery_bar:
                flagged_mastery.append(r.player_id)
        rows.append(row)
        if r.dropped_out:
            flagged_dropout.append(r.player_id)

    summary = summarize(list(records))
    lines = [
        f"CLASS REPORT - {summary.platform} - {summary.n} students",
        "",
        format_table(rows),
        "",
        f"completion rate : {summary.completion_rate:.0%}",
        f"dropout rate    : {summary.dropout_rate:.0%}",
        f"mean gain       : {summary.mean_knowledge_gain:.2f} "
        f"(±{summary.ci_knowledge_gain:.2f})",
        f"mean engagement : {summary.mean_final_engagement:.2f}",
    ]
    if flagged_dropout:
        lines.append(f"NEEDS ATTENTION (dropped out): {', '.join(sorted(flagged_dropout))}")
    if flagged_mastery:
        lines.append(
            f"NEEDS ATTENTION (mastery < {mastery_bar:.0%}): "
            f"{', '.join(sorted(flagged_mastery))}"
        )
    return "\n".join(lines)


def curriculum_report(
    kmap: KnowledgeMap,
    trackers: Sequence[MasteryTracker],
    weak_bar: float = 0.5,
) -> str:
    """Per-item class mastery; flags items the course fails to teach."""
    if not trackers:
        raise ValueError("no trackers to report")
    rows = []
    weak: List[str] = []
    for item in kmap.items:
        values = [t.p_known(item.item_id) for t in trackers]
        mean = sum(values) / len(values)
        mastered = sum(1 for v in values if v >= 0.95)
        rows.append({
            "item": item.item_id,
            "objective": item.objective or "-",
            "class_mean": round(mean, 2),
            "mastered": f"{mastered}/{len(values)}",
        })
        if mean < weak_bar:
            weak.append(item.item_id)
    lines = [
        f"CURRICULUM REPORT - {len(kmap)} items, {len(trackers)} students",
        "",
        format_table(rows),
    ]
    if weak:
        lines += [
            "",
            "WEAKLY TAUGHT (check the delivery points in the authoring tool):",
            *(f"  - {i}" for i in sorted(weak)),
        ]
    return "\n".join(lines)
