"""Learning layer: knowledge maps, assessment, analytics, packaging and
production-cost models."""

from .analytics import (
    CohortSummary,
    FunnelRow,
    OutcomeRecord,
    mean_ci,
    scenario_funnel,
    summarize,
)
from .assessment import Question, Test, TestResult, hake_gain
from .heatmap import ClickHeatmap, collect_heatmaps, render_heatmap_overlay
from .knowledge import DeliveryPoint, KnowledgeError, KnowledgeItem, KnowledgeMap
from .mastery import BktParams, MasteryTracker
from .packaging import CoursePackage, PackageError, load_package, save_package
from .reports import class_report, curriculum_report
from .production import PIPELINES, Pipeline, PipelineCost, compare_pipelines, estimate_cost

__all__ = [
    "BktParams",
    "ClickHeatmap",
    "CohortSummary",
    "collect_heatmaps",
    "render_heatmap_overlay",
    "MasteryTracker",
    "class_report",
    "curriculum_report",
    "CoursePackage",
    "DeliveryPoint",
    "FunnelRow",
    "KnowledgeError",
    "scenario_funnel",
    "KnowledgeItem",
    "KnowledgeMap",
    "OutcomeRecord",
    "PIPELINES",
    "PackageError",
    "Pipeline",
    "PipelineCost",
    "Question",
    "Test",
    "TestResult",
    "compare_pipelines",
    "estimate_cost",
    "hake_gain",
    "load_package",
    "mean_ci",
    "save_package",
    "summarize",
]
